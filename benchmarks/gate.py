"""Perf-trajectory regression gate over ``benchmarks/output/history.jsonl``.

Every benchmark appends one ``{"benchmark", "at", "git_sha", "data"}`` line
per run (see ``history_appender`` in :mod:`benchmarks.conftest`).  This
script reads that append-only log and flags any key metric whose latest
value regressed more than a threshold (default 20%) against the median of
its previous runs (up to the last 5) — a trend check, so one noisy run
neither hides nor fakes a regression.

Metric direction is inferred from the name: throughput-flavored metrics
(``*speedup*``, ``*_pps``, ``*_rps``, ``*_qps``, ...) regress by going
*down*; cost-flavored metrics (``*_ms*``, ``*_us*``, ``*_seconds*``,
``*_peak_mb``, ...) regress by going *up*.  Metrics whose direction cannot
be inferred are reported as skipped rather than guessed.

Usage::

    python benchmarks/gate.py                # report; exit 1 on regression
    python benchmarks/gate.py --report-only  # always exit 0 (non-blocking)
    python benchmarks/gate.py --threshold 0.1

The CI job runs this with ``continue-on-error`` so a regression annotates
the build without blocking merges; the exit code still makes the failure
visible in the job list.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

HISTORY_FILE = Path(__file__).parent / "output" / "history.jsonl"

#: Name fragments marking a metric where *bigger* is better.
_HIGHER_IS_BETTER = (
    "speedup",
    "_pps",
    "_rps",
    "_qps",
    "throughput",
    "saved",
    "hits",
    "ratio",
)
#: Metrics measuring the *reference* implementation (the "before" side of a
#: before/after benchmark).  They move when the workload is rescaled, not
#: when the shipped path regresses, so the gate ignores them.
_BASELINE_MARKERS = (
    "baseline",
    "buffered_",
    "per_point",
    "budget",
)
#: Name fragments marking a metric where *smaller* is better.
_LOWER_IS_BETTER = (
    "_us",
    "_ms",
    "_s_",
    "seconds",
    "latency",
    "delay",
    "_mb",
    "ttfb",
    "per_tick",
    "fallbacks",
    "misses",
)


def metric_direction(name: str) -> int:
    """+1 if higher is better, -1 if lower is better, 0 if unknown.

    Higher-is-better fragments win ties: ``incremental_ms_per_tick``
    contains both ``_ms`` and ``per_tick`` (lower), while a name like
    ``speedup`` never carries a cost suffix.
    """
    lowered = name.lower()
    if any(fragment in lowered for fragment in _HIGHER_IS_BETTER):
        return 1
    if any(fragment in lowered for fragment in _LOWER_IS_BETTER):
        return -1
    return 0


def _flatten(data: dict, prefix: str = "") -> dict[str, float]:
    """Dotted-key scalar view of a possibly nested ``data`` payload."""
    flat: dict[str, float] = {}
    for key, value in data.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten(value, f"{path}."))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            flat[path] = float(value)
    return flat


def load_history(path: Path) -> dict[str, list[dict[str, float]]]:
    """Per-benchmark chronological list of flattened metric snapshots."""
    series: dict[str, list[dict[str, float]]] = {}
    if not path.exists():
        return series
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue  # a torn write must not break the gate
        benchmark = entry.get("benchmark")
        data = entry.get("data")
        if not isinstance(benchmark, str) or not isinstance(data, dict):
            continue
        series.setdefault(benchmark, []).append(_flatten(data))
    return series


def check_history(
    series: dict[str, list[dict[str, float]]],
    threshold: float = 0.20,
    baseline_runs: int = 5,
) -> tuple[list[str], list[str]]:
    """Returns ``(regressions, skipped)`` report lines.

    The latest run of each benchmark is compared metric-by-metric against
    the median of up to *baseline_runs* prior runs.  Metrics with fewer
    than 2 prior data points have no trend and are skipped, as are metrics
    with unknown direction or a zero baseline.
    """
    regressions: list[str] = []
    skipped: list[str] = []
    for benchmark, runs in sorted(series.items()):
        if len(runs) < 2:
            skipped.append(f"{benchmark}: only {len(runs)} run(s), no trend yet")
            continue
        latest = runs[-1]
        history = runs[:-1][-baseline_runs:]
        for metric in sorted(latest):
            lowered = metric.lower()
            if any(marker in lowered for marker in _BASELINE_MARKERS):
                skipped.append(f"{benchmark}.{metric}: baseline reference")
                continue
            points = [run[metric] for run in history if metric in run]
            if len(points) < 1:
                skipped.append(f"{benchmark}.{metric}: no prior data")
                continue
            direction = metric_direction(metric)
            if direction == 0:
                skipped.append(f"{benchmark}.{metric}: unknown direction")
                continue
            baseline = statistics.median(points)
            if baseline == 0:
                skipped.append(f"{benchmark}.{metric}: zero baseline")
                continue
            value = latest[metric]
            # Signed relative change in the *good* direction.
            change = direction * (value - baseline) / abs(baseline)
            if change < -threshold:
                arrow = "fell" if direction > 0 else "rose"
                regressions.append(
                    f"{benchmark}.{metric}: {arrow} {abs(change):.0%} "
                    f"(latest {value:g} vs median-of-{len(points)} {baseline:g})"
                )
    return regressions, skipped


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--history", type=Path, default=HISTORY_FILE, help="history.jsonl path"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="relative regression tolerance (default 0.20 = 20%%)",
    )
    parser.add_argument(
        "--baseline-runs",
        type=int,
        default=5,
        help="how many prior runs feed the median baseline (default 5)",
    )
    parser.add_argument(
        "--report-only",
        action="store_true",
        help="always exit 0, even when regressions are found",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="also list skipped metrics"
    )
    args = parser.parse_args(argv)

    series = load_history(args.history)
    if not series:
        print(f"perf gate: no history at {args.history}; nothing to check")
        return 0
    regressions, skipped = check_history(
        series, threshold=args.threshold, baseline_runs=args.baseline_runs
    )
    runs = sum(len(entries) for entries in series.values())
    print(
        f"perf gate: {len(series)} benchmark(s), {runs} run(s), "
        f"threshold {args.threshold:.0%}"
    )
    if args.verbose:
        for line in skipped:
            print(f"  skip: {line}")
    if regressions:
        print(f"REGRESSIONS ({len(regressions)}):")
        for line in regressions:
            print(f"  {line}")
        return 0 if args.report_only else 1
    print("no regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
