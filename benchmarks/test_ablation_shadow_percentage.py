"""Ablation A2: dark-launch duplication factor vs response time.

The paper attributes the dark launch's +18 ms to traffic duplication
("three requests need to be shadowed").  This ablation varies the shadow
percentage (0 / 50 / 100 / 2x100) and measures the primary request's
latency through the proxy — showing that shadowing costs scale with the
duplication factor even though shadow responses are discarded.

Expected shape: latency grows with the shadow percentage; two full
shadow targets (the paper's product A *and* B) cost more than one.
"""

import asyncio
import time

import pytest

from repro.core import RoutingConfig, ShadowRoute, TrafficSplit
from repro.httpcore import HttpClient, HttpServer, Response
from repro.loadgen import SummaryStats
from repro.proxy import BifrostProxy

REQUESTS = 300

_CACHE: dict = {}


async def _measure(shadow_targets: int, percentage: float) -> SummaryStats:
    async def handler(request):
        await asyncio.sleep(0.001)  # every upstream does ~1 ms of work
        return Response.from_json({"ok": True})

    upstream = HttpServer(name="primary")
    upstream.router.set_fallback(handler)
    await upstream.start()
    shadows = []
    for index in range(shadow_targets):
        server = HttpServer(name=f"shadow{index}")
        server.router.set_fallback(handler)
        await server.start()
        shadows.append(server)
    proxy = BifrostProxy("svc", default_upstream=upstream.address)
    await proxy.start()
    try:
        endpoints = {"stable": upstream.address}
        shadow_routes = []
        for index, server in enumerate(shadows):
            name = f"shadow{index}"
            endpoints[name] = server.address
            shadow_routes.append(ShadowRoute("stable", name, percentage))
        proxy.apply_config(
            RoutingConfig(
                splits=[TrafficSplit("stable", 100.0)], shadows=shadow_routes
            ),
            endpoints,
        )
        async with HttpClient() as client:
            for _ in range(30):
                await client.get(f"http://{proxy.address}/x")
            latencies = []
            for _ in range(REQUESTS):
                started = time.monotonic()
                await client.get(f"http://{proxy.address}/x")
                latencies.append(time.monotonic() - started)
            await proxy.shadower.drain()
        return SummaryStats.of(latencies).scaled(1000.0)
    finally:
        await proxy.stop()
        await upstream.stop()
        for server in shadows:
            await server.stop()


def shadow_stats():
    if "stats" not in _CACHE:

        async def run_all():
            return {
                "no shadow": await _measure(0, 0.0),
                "1 target @ 50%": await _measure(1, 50.0),
                "1 target @ 100%": await _measure(1, 100.0),
                "2 targets @ 100%": await _measure(2, 100.0),
            }

        _CACHE["stats"] = asyncio.run(run_all())
    return _CACHE["stats"]


@pytest.mark.benchmark(group="ablation-shadow")
def test_ablation_shadow_percentage(benchmark, artifact_writer):
    stats = benchmark.pedantic(shadow_stats, rounds=1, iterations=1)
    lines = [f"{'configuration':>18s}  {'mean ms':>8s}  {'median':>8s}  {'sd':>8s}"]
    for name, s in stats.items():
        lines.append(f"{name:>18s}  {s.mean:8.3f}  {s.median:8.3f}  {s.sd:8.3f}")
    artifact_writer("ablation_shadow_percentage.txt", "\n".join(lines))

    # Full duplication costs more than none (the paper's dark-launch tax).
    assert stats["2 targets @ 100%"].mean > stats["no shadow"].mean
