"""Scale-out benchmark: sharded metric stores + proxy worker pools.

Two architectural effects, both measurable deterministically on a single
core (the container has one CPU, so neither number depends on true
parallel execution):

**Proxy pool capacity.**  Upstream round-trips are modelled by a stub
client with latency L and a bounded connection pool of C concurrent
requests — the shape of a real ``HttpClient`` against a real upstream.
One worker can therefore sustain at most ``C/L`` requests per second no
matter how fast its event loop is.  A shared-nothing pool of W workers
owns W independent connection pools, so the same I/O-bound workload
drains through ``W*C`` concurrent slots.  Dispatch overhead is the only
thing the pool adds; the benchmark shows throughput scaling with W.

**Sharded store invalidation scoping.**  Under the paper's scalability
workload (many strategies re-evaluating per-tick instant queries while
scrapes keep landing), the monolithic store's single generation counter
invalidates the per-(tick, generation) query memo on *every* ingest —
one hot metric poisons the memo for all queries.  A sharded store bumps
only the owning shard's counter, and the provider stamps each query with
the generations of only the shards it reads, so ingest into shard k
leaves memoized results for the other shards' metrics live within the
tick.  The benchmark interleaves ingest and a fixed query set and shows
evaluated-expression count (and wall time) dropping as shards increase,
with results staying bit-identical to the monolithic store.

Artifacts: ``benchmarks/output/scaleout.json``, a run record in
``benchmarks/output/history.jsonl``, plus the tracked repo-root
``BENCH_scaleout.json``.

Environment knobs: ``BIFROST_BENCH_SCALEOUT_REQUESTS`` (proxy requests
per run), ``BIFROST_BENCH_SCALEOUT_ROUNDS`` (store workload ticks) — CI
smoke reduces both.
"""

import asyncio
import json
import os
import time
from pathlib import Path

from repro.clock import VirtualClock
from repro.core import canary_split
from repro.httpcore import Headers, Request, Response
from repro.metrics import MetricStore, ShardedMetricStore, evaluate_scalar
from repro.metrics.provider import LocalPrometheusProvider
from repro.proxy import CLIENT_COOKIE, ProxyWorkerPool, worker_index

REPO_ROOT = Path(__file__).resolve().parent.parent

# -- proxy pool workload -------------------------------------------------------

REQUESTS = int(os.environ.get("BIFROST_BENCH_SCALEOUT_REQUESTS", "320"))
WORKER_COUNTS = (1, 2, 4)
UPSTREAM_CAPACITY = 8  # concurrent requests one worker's client sustains
UPSTREAM_LATENCY = 0.025  # seconds per upstream round-trip
ENDPOINTS = {"stable": "upstream-a:8001", "canary": "upstream-b:8002"}
RESPONSE_BODY = b'{"version": "stable", "ok": true}'


def _balanced_clients(per_class: int = 16) -> list[str]:
    """Client ids spread evenly over worker classes mod 4 (hence mod 2/1).

    ``n mod 2 == (n mod 4) mod 2``, so ids balanced across the four
    4-worker classes are also balanced for 2 workers and (trivially) 1 —
    the sweep compares capacity, not hash luck.
    """
    buckets: dict[int, list[str]] = {0: [], 1: [], 2: [], 3: []}
    index = 0
    while any(len(bucket) < per_class for bucket in buckets.values()):
        client = f"22222222-3333-4444-5555-{index:012d}"
        bucket = buckets[worker_index(client, 4)]
        if len(bucket) < per_class:
            bucket.append(client)
        index += 1
    interleaved = []
    for position in range(per_class):
        for cls in range(4):
            interleaved.append(buckets[cls][position])
    return interleaved


CLIENTS = _balanced_clients()


class CapacityStubClient:
    """Upstream stub: latency ``UPSTREAM_LATENCY``, at most
    ``UPSTREAM_CAPACITY`` requests in flight — a connection pool in
    miniature.  One instance per worker, like the real owned client."""

    def __init__(self):
        self._slots = asyncio.Semaphore(UPSTREAM_CAPACITY)
        self.sent = 0

    async def send(self, request, host, port, timeout=None, stream=False):
        async with self._slots:
            await asyncio.sleep(UPSTREAM_LATENCY)
        self.sent += 1
        return Response(
            status=200,
            headers=Headers.from_raw([("Content-Type", "application/json")]),
            body=RESPONSE_BODY,
        )

    async def close(self):
        pass


def _incoming(index: int) -> Request:
    client = CLIENTS[index % len(CLIENTS)]
    return Request(
        "GET",
        "/items?page=1",
        Headers.from_raw(
            [
                ("Host", "shop.example"),
                ("Accept", "application/json"),
                ("Cookie", f"session=abc123; {CLIENT_COOKIE}={client}"),
                ("X-Request-Id", f"req-{index}"),
            ]
        ),
        body=b"",
    )


async def _drive_pool(workers: int) -> dict:
    pool = ProxyWorkerPool("bench", "upstream-default:8000", workers=workers)
    stubs = []
    for member in pool.workers:
        stub = CapacityStubClient()
        member._client = stub
        member._owns_client = False
        stubs.append(stub)
    pool.apply_config(canary_split("stable", "canary", 20.0), ENDPOINTS)

    requests = [_incoming(i) for i in range(REQUESTS)]
    start = time.perf_counter()
    responses = await asyncio.gather(
        *(pool._handle_proxy(request) for request in requests)
    )
    wall = time.perf_counter() - start

    assert sum(stub.sent for stub in stubs) == REQUESTS
    workers_seen = {
        response.headers.get("X-Bifrost-Worker") for response in responses
    }
    assert len(workers_seen) == workers
    for response in responses:
        assert response.headers.get("X-Bifrost-Version") in ("stable", "canary")
    await pool.stop()
    return {
        "workers": workers,
        "requests": REQUESTS,
        "wall_s": round(wall, 4),
        "rps": round(REQUESTS / wall),
    }


# -- sharded store workload ----------------------------------------------------

ROUNDS = int(os.environ.get("BIFROST_BENCH_SCALEOUT_ROUNDS", "24"))
SHARD_COUNTS = (1, 2, 4)
METRIC_NAMES = [f"service_requests_total_{index}" for index in range(64)]
INSTANCES = [f"inst-{index}" for index in range(8)]
PRELOAD_SAMPLES = 60
INGESTS_PER_TICK = 8

# The range window spans the whole preload for every round, so each cache
# miss re-reads a full-size window — the workload stays evaluation-bound
# across the sweep instead of thinning out as the clock advances.
QUERIES = [
    f'sum(rate({name}{{instance=~"inst-.*"}}[120s]))' for name in METRIC_NAMES
]


def _make_store(shards: int) -> MetricStore | ShardedMetricStore:
    if shards > 1:
        return ShardedMetricStore(shard_count=shards)
    return MetricStore()


def _preload(store) -> None:
    for name in METRIC_NAMES:
        for instance in INSTANCES:
            labels = {"instance": instance}
            for t in range(PRELOAD_SAMPLES):
                store.record(name, float(t * 3), float(t), labels)


async def _drive_store(store) -> dict:
    clock = VirtualClock()
    # Jump past the preload window so range queries see the same data on
    # every shard count.
    await clock.advance(float(PRELOAD_SAMPLES))
    provider = LocalPrometheusProvider(store, clock=clock)
    queries_issued = 0
    start = time.perf_counter()
    for round_index in range(ROUNDS):
        await clock.advance(1.0)
        now = clock.now()
        for rep in range(INGESTS_PER_TICK):
            hot = METRIC_NAMES[
                (round_index * INGESTS_PER_TICK + rep) % len(METRIC_NAMES)
            ]
            store.record(hot, float(queries_issued), now, {"instance": "inst-0"})
            for query in QUERIES:
                await provider.query(query)
                queries_issued += 1
    wall = time.perf_counter() - start
    return {
        "queries_issued": queries_issued,
        "wall_s": round(wall, 4),
        "qps": round(queries_issued / wall),
        "evaluations": provider.cache_misses,
        "memo_hits": provider.cache_hits,
    }


def test_scaleout(artifact_writer, history_appender):
    # -- proxy pool sweep --------------------------------------------------
    pool_points = {}
    for workers in WORKER_COUNTS:
        asyncio.run(_drive_pool(workers))  # warm-up
        pool_points[workers] = asyncio.run(_drive_pool(workers))
    pool_speedup = {
        workers: round(
            pool_points[1]["wall_s"] / pool_points[workers]["wall_s"], 2
        )
        for workers in WORKER_COUNTS
    }

    # -- sharded store sweep ----------------------------------------------
    stores = {shards: _make_store(shards) for shards in SHARD_COUNTS}
    for store in stores.values():
        _preload(store)

    store_points = {}
    for shards, store in stores.items():
        store_points[shards] = asyncio.run(_drive_store(store))
    store_speedup = {
        shards: round(
            store_points[1]["wall_s"] / store_points[shards]["wall_s"], 2
        )
        for shards in SHARD_COUNTS
    }

    # Equivalence: after identical preload + identical ingest interleaving,
    # every query answers bit-identically on every shard count.
    at = float(PRELOAD_SAMPLES + ROUNDS)
    for query in QUERIES[:16]:
        reference = evaluate_scalar(stores[1], query, at)
        for shards in SHARD_COUNTS[1:]:
            assert evaluate_scalar(stores[shards], query, at) == reference

    results = {
        "benchmark": "scaleout",
        "proxy_pool": {
            "workload": {
                "requests_per_run": REQUESTS,
                "distinct_clients": len(CLIENTS),
                "upstream_capacity_per_worker": UPSTREAM_CAPACITY,
                "upstream_latency_s": UPSTREAM_LATENCY,
            },
            "points": {str(w): p for w, p in pool_points.items()},
            "speedup": {str(w): s for w, s in pool_speedup.items()},
        },
        "sharded_store": {
            "workload": {
                "metric_names": len(METRIC_NAMES),
                "instances_per_name": len(INSTANCES),
                "preload_samples": PRELOAD_SAMPLES,
                "rounds": ROUNDS,
                "ingests_per_tick": INGESTS_PER_TICK,
                "queries_per_ingest": len(QUERIES),
            },
            "points": {str(s): p for s, p in store_points.items()},
            "speedup": {str(s): s2 for s, s2 in store_speedup.items()},
        },
        "measured_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    rendered = json.dumps(results, indent=2)
    artifact_writer("scaleout.json", rendered)
    (REPO_ROOT / "BENCH_scaleout.json").write_text(rendered + "\n", encoding="utf-8")
    history_appender(
        "scaleout",
        {
            "proxy_rps": {str(w): p["rps"] for w, p in pool_points.items()},
            "proxy_speedup": {str(w): s for w, s in pool_speedup.items()},
            "store_qps": {str(s): p["qps"] for s, p in store_points.items()},
            "store_speedup": {str(s): v for s, v in store_speedup.items()},
        },
    )

    # Shard scoping shows up structurally, not just in wall time: the
    # monolith re-evaluates every query after every ingest, while four
    # shards keep most per-tick memo entries live.
    assert store_points[4]["evaluations"] < store_points[1]["evaluations"] / 2

    assert pool_speedup[4] >= 2.5, (
        f"4-worker pool only {pool_speedup[4]:.2f}x over one worker "
        f"(need >= 2.5x): {pool_points}"
    )
    assert pool_speedup[2] >= 1.5, pool_points
    assert store_speedup[4] >= 2.0, (
        f"4-shard store only {store_speedup[4]:.2f}x over the monolith "
        f"(need >= 2x): {store_points}"
    )
    assert store_speedup[2] >= 1.2, store_points
