"""E3 + E4: engine scalability over parallel strategies (Figures 7 and 8).

Enacts an increasing number of simultaneous release strategies — all with
identical configuration and start time, the paper's worst case — against
one Bifrost proxy, and reports engine CPU utilization (Figure 7 boxplots)
and enactment delay, i.e. measured minus specified duration (Figure 8
error bars).

Expected shape: CPU grows with the strategy count without saturating at
moderate counts; delay grows slowly at first, then rises (with growing
variance) once the single core becomes the bottleneck.
"""

import asyncio

import pytest

from repro.analysis import (
    format_cpu_figure,
    format_delay_figure,
    run_parallel_strategies_sweep,
)

from .conftest import bench_scale, full_sweeps

_CACHE: dict = {}

#: Compressed sweep (default) vs the paper's full x axis.
COUNTS = [1, 5, 10, 20, 40]
FULL_COUNTS = [1, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120, 130]


def strategy_points():
    if "points" not in _CACHE:
        counts = FULL_COUNTS if full_sweeps() else COUNTS
        _CACHE["points"] = asyncio.run(
            run_parallel_strategies_sweep(counts, scale=bench_scale(0.01))
        )
    return _CACHE["points"]


@pytest.mark.benchmark(group="figure7")
def test_figure7_engine_cpu_vs_parallel_strategies(benchmark, artifact_writer):
    points = benchmark.pedantic(strategy_points, rounds=1, iterations=1)
    artifact_writer(
        "figure7_parallel_strategies_cpu.txt",
        format_cpu_figure(points, xlabel="strategies"),
    )
    assert all(point.failed == 0 for point in points)
    # CPU demand grows with the number of parallel strategies.
    assert points[-1].cpu.median > points[0].cpu.median


@pytest.mark.benchmark(group="figure8")
def test_figure8_enactment_delay_vs_parallel_strategies(benchmark, artifact_writer):
    points = benchmark.pedantic(strategy_points, rounds=1, iterations=1)
    artifact_writer(
        "figure8_parallel_strategies_delay.txt",
        format_delay_figure(points, xlabel="strategies"),
    )
    # Delays are non-negative (an enactment can't finish early) and grow
    # with contention.
    assert all(point.delay.mean > -0.05 for point in points)
    assert points[-1].delay.mean >= points[0].delay.mean
