"""Micro-benchmark of the metrics query fast path (before vs after).

Reconstructs the seed code path — fresh ``parse()`` per evaluation, linear
scan over *all* series with a per-call ``re.compile`` for regex matchers —
and races it against the shipped fast path (compiled-query cache, name
index, selector cache, zero-copy range reads) on the same populated store.

The workload mirrors the paper's scalability experiments: many parallel
strategies each re-evaluating a fixed set of instant queries against a
store holding 1,000+ series across many metric names.

Artifacts: ``benchmarks/output/query_fastpath.json`` plus the tracked
repo-root ``BENCH_query_fastpath.json`` so the perf trajectory is visible
in version control from this change onward.
"""

import json
import re
import time
from pathlib import Path

from repro.metrics import MetricStore, evaluate_scalar, parse
from repro.metrics.compile import compile_query

REPO_ROOT = Path(__file__).resolve().parent.parent

NAME_COUNT = 200
INSTANCES_PER_NAME = 12
SAMPLES_PER_SERIES = 30


def _legacy_matches(matcher, labels) -> bool:
    """Seed ``LabelMatcher.matches``: recompiles the regex on every call."""
    actual = labels.get(matcher.label, "")
    if matcher.op == "=":
        return actual == matcher.value
    if matcher.op == "!=":
        return actual != matcher.value
    anchored = re.compile(f"^(?:{matcher.value})$")
    if matcher.op == "=~":
        return bool(anchored.match(actual))
    return not anchored.match(actual)


class LegacySelectStore:
    """Duck-typed store facade replaying the seed's O(total series) select."""

    def __init__(self, store: MetricStore):
        self._store = store

    def select(self, name, matchers=None):
        matchers = matchers or []
        found = []
        for key, series in self._store._series.items():
            if key.name != name:
                continue
            labels = key.label_dict()
            if all(_legacy_matches(matcher, labels) for matcher in matchers):
                found.append(series)
        return found


def _populate() -> tuple[MetricStore, float]:
    store = MetricStore()
    at = float(SAMPLES_PER_SERIES - 1)
    for name_index in range(NAME_COUNT):
        name = f"requests_total_{name_index}"
        for instance_index in range(INSTANCES_PER_NAME):
            labels = {
                "instance": f"inst-{instance_index}",
                "zone": f"z{instance_index % 3}",
            }
            for t in range(SAMPLES_PER_SERIES):
                store.record(name, float(t * 2), float(t), labels)
    # One histogram: 5 cumulative buckets on 4 instances.
    for instance_index in range(4):
        for le, count in (("0.1", 5.0), ("0.25", 30.0), ("0.5", 60.0), ("1", 90.0), ("+Inf", 100.0)):
            store.record(
                "latency_bucket",
                count,
                at,
                {"instance": f"inst-{instance_index}", "le": le},
            )
    return store, at


QUERIES = [
    'requests_total_17{instance=~"inst-[0-4]", zone="z1"}',
    'requests_total_42{instance=~"inst-.*"}',
    'sum(rate(requests_total_7{instance=~"inst-1.*"}[60s]))',
    'avg(avg_over_time(requests_total_63{zone=~"z[01]"}[30s]))',
    'histogram_quantile(0.95, latency_bucket{instance=~"inst-.*"})',
    'requests_total_99{zone!~"z2"} * 100',
]


def _time_per_eval(evaluate_once, repetitions: int) -> float:
    start = time.perf_counter()
    for _ in range(repetitions):
        evaluate_once()
    return (time.perf_counter() - start) / (repetitions * len(QUERIES)) * 1e6


def test_query_fastpath_speedup(artifact_writer, history_appender):
    store, at = _populate()
    legacy = LegacySelectStore(store)
    assert len(store) >= 1000

    def run_fast():
        for query in QUERIES:
            evaluate_scalar(store, query, at)

    def run_legacy():
        for query in QUERIES:
            evaluate_scalar(legacy, parse(query), at)

    # Equivalence first: the fast path must compute the same answers.
    for query in QUERIES:
        assert evaluate_scalar(store, query, at) == evaluate_scalar(legacy, parse(query), at)

    run_fast()  # warm the compile + selector caches
    fast_us = _time_per_eval(run_fast, repetitions=200)
    legacy_us = _time_per_eval(run_legacy, repetitions=20)
    speedup = legacy_us / fast_us

    # Component micro-timings: parse vs cached compile, scan vs indexed select.
    query = QUERIES[0]
    reps = 2000
    start = time.perf_counter()
    for _ in range(reps):
        parse(query)
    parse_us = (time.perf_counter() - start) / reps * 1e6
    start = time.perf_counter()
    for _ in range(reps):
        compile_query(query)
    compile_us = (time.perf_counter() - start) / reps * 1e6

    selector = compile_query(query)
    start = time.perf_counter()
    for _ in range(reps):
        store.select(selector.name, selector.matchers)
    indexed_select_us = (time.perf_counter() - start) / reps * 1e6
    scan_reps = 200
    start = time.perf_counter()
    for _ in range(scan_reps):
        legacy.select(selector.name, list(selector.matchers))
    legacy_select_us = (time.perf_counter() - start) / scan_reps * 1e6

    results = {
        "benchmark": "query_fastpath",
        "workload": {
            "series": len(store),
            "metric_names": len(store.names()),
            "samples_per_series": SAMPLES_PER_SERIES,
            "queries": QUERIES,
        },
        "per_evaluation_us": {
            "legacy_fresh_parse_linear_scan": round(legacy_us, 3),
            "fastpath_cached_indexed": round(fast_us, 3),
        },
        "speedup": round(speedup, 1),
        "components_us": {
            "parse": round(parse_us, 3),
            "compile_query_cached": round(compile_us, 3),
            "legacy_select_scan": round(legacy_select_us, 3),
            "indexed_select_cached": round(indexed_select_us, 3),
        },
        "measured_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    rendered = json.dumps(results, indent=2)
    artifact_writer("query_fastpath.json", rendered)
    (REPO_ROOT / "BENCH_query_fastpath.json").write_text(rendered + "\n", encoding="utf-8")
    history_appender(
        "query_fastpath",
        {
            "speedup": results["speedup"],
            "per_evaluation_us": results["per_evaluation_us"],
        },
    )

    assert speedup >= 5.0, f"fast path only {speedup:.1f}x faster (need >= 5x)"
