"""Incremental query engine vs the rescanning baseline (before vs after).

The workload models the paper's check-sweep under sustained ingest: 512
checks (64 metric names x 8 query shapes, several sharing a ``rate``
subexpression) evaluated every tick over 60 s windows, while every tick a
scrape lands one new sample per series.  The baseline replays the seed
engine: streaming aggregates off, every check evaluated independently
(full window rescan per range function), samples recorded one at a time.
The incremental engine uses the shared evaluation plan
(:class:`repro.metrics.plan.EvaluationPlan`), streaming window aggregates,
and ``record_batch`` ingest.

A second microbench isolates ingest throughput: points/sec for per-point
``record`` vs grouped ``record_batch``.

Artifacts: ``benchmarks/output/incremental_eval.json`` plus the tracked
repo-root ``BENCH_incremental.json``.
"""

import json
import math
import os
import time
from pathlib import Path

from repro.metrics import EvaluationPlan, MetricStore, evaluate_scalar
from repro.metrics import aggregate

REPO_ROOT = Path(__file__).resolve().parent.parent

# Smoke-scale knobs for CI; defaults reproduce the tracked artifact.
NAME_COUNT = int(os.environ.get("BIFROST_BENCH_INCR_NAMES", "64"))
INSTANCES_PER_NAME = 4
WINDOW_S = 60.0
SCRAPE_SPACING_S = 0.1  # 600 samples inside every 60s window
TICKS = int(os.environ.get("BIFROST_BENCH_INCR_TICKS", "12"))
SPEEDUP_FLOOR = float(os.environ.get("BIFROST_BENCH_INCR_SPEEDUP_FLOOR", "5.0"))

SHAPES = [
    "rate({name}[60s])",
    "rate({name}[60s]) * 100",
    "sum(rate({name}[60s]))",
    "avg_over_time({name}[60s])",
    "max_over_time({name}[60s])",
    "sum_over_time({name}[60s]) / 60",
    "min_over_time({name}[60s]) + 1",
    "count_over_time({name}[60s])",
]


def _names():
    return [f"svc_{index}_requests_total" for index in range(NAME_COUNT)]


def _queries():
    return [
        shape.format(name=name) for name in _names() for shape in SHAPES
    ]


def _seed(store, batched: bool) -> float:
    """Fill every series with one window's worth of history; returns now."""
    steps = int(WINDOW_S / SCRAPE_SPACING_S)
    for step in range(steps):
        at = step * SCRAPE_SPACING_S
        batch = [
            (
                name,
                float(step + name_index),
                at,
                {"instance": f"inst-{instance}"},
            )
            for name_index, name in enumerate(_names())
            for instance in range(INSTANCES_PER_NAME)
        ]
        if batched:
            store.record_batch(batch)
        else:
            for name, value, timestamp, labels in batch:
                store.record(name, value, timestamp, labels)
    return (steps - 1) * SCRAPE_SPACING_S


def _tick_batch(step: int, at: float):
    return [
        (
            name,
            float(step + name_index),
            at,
            {"instance": f"inst-{instance}"},
        )
        for name_index, name in enumerate(_names())
        for instance in range(INSTANCES_PER_NAME)
    ]


def _run_baseline(queries) -> tuple[float, dict[str, float | None]]:
    """Seed path: per-point ingest, independent full-rescan evaluation."""
    with aggregate.disabled():
        store = MetricStore(retention=3600.0)
        now = _seed(store, batched=False)
        # Mirror the incremental run's warm tick so both engines see the
        # exact same samples when their answers are compared.
        now += SCRAPE_SPACING_S
        for name, value, timestamp, labels in _tick_batch(999, now):
            store.record(name, value, timestamp, labels)
        results: dict[str, float | None] = {}
        start = time.perf_counter()
        for tick in range(TICKS):
            now += SCRAPE_SPACING_S
            for name, value, timestamp, labels in _tick_batch(1000 + tick, now):
                store.record(name, value, timestamp, labels)
            for query in queries:
                results[query] = evaluate_scalar(store, query, now)
        elapsed = time.perf_counter() - start
    return elapsed / TICKS, results


def _run_incremental(queries) -> tuple[float, dict[str, float | None], dict]:
    """Shipped path: batched ingest + shared plan + streaming aggregates."""
    assert aggregate.enabled()
    store = MetricStore(retention=3600.0)
    now = _seed(store, batched=True)
    plan = EvaluationPlan(store, {query: query for query in queries})
    # Warm tick: creates the window states (the one-time seed scans).
    now += SCRAPE_SPACING_S
    store.record_batch(_tick_batch(999, now))
    plan.evaluate_all(now)
    results: dict[str, float | None] = {}
    start = time.perf_counter()
    for tick in range(TICKS):
        now += SCRAPE_SPACING_S
        store.record_batch(_tick_batch(1000 + tick, now))
        results = plan.evaluate_all(now)
    elapsed = time.perf_counter() - start
    stats = {
        "plan_shared_nodes": plan.shared_nodes,
        "plan_evaluations_saved": plan.evaluations_saved,
        "aggregate": aggregate.cache_info(),
    }
    return elapsed / TICKS, results, stats


def _run_ingest_bench() -> dict:
    """Points/sec: per-point record vs grouped record_batch."""
    group = 16  # consecutive samples per series per batch
    series_count = 128
    batches = 30
    per_point = MetricStore(retention=3600.0)
    batched = MetricStore(retention=3600.0)
    total = batches * series_count * group

    start = time.perf_counter()
    at = 0.0
    for batch_index in range(batches):
        for offset in range(group):
            timestamp = at + offset * 0.1
            for series_index in range(series_count):
                per_point.record(
                    f"metric_{series_index}_total",
                    1.0,
                    timestamp,
                    {"instance": "a"},
                )
        at += group * 0.1
    per_point_s = time.perf_counter() - start

    start = time.perf_counter()
    at = 0.0
    for batch_index in range(batches):
        batch = [
            (
                f"metric_{series_index}_total",
                1.0,
                at + offset * 0.1,
                {"instance": "a"},
            )
            for series_index in range(series_count)
            for offset in range(group)
        ]
        batched.record_batch(batch)
        at += group * 0.1
    batched_s = time.perf_counter() - start

    assert len(per_point) == len(batched) == series_count
    return {
        "points": total,
        "per_point_pps": round(total / per_point_s),
        "batched_pps": round(total / batched_s),
        "batch_speedup": round(per_point_s / batched_s, 2),
    }


def test_incremental_engine_speedup(artifact_writer, history_appender):
    queries = _queries()
    assert len(queries) == NAME_COUNT * len(SHAPES)

    incremental_s, incremental_results, stats = _run_incremental(queries)
    baseline_s, baseline_results, = _run_baseline(queries)

    # Equivalence first: the incremental engine must compute the same
    # answers (within float re-summation noise) as the rescan reference.
    for query in queries:
        expected = baseline_results[query]
        got = incremental_results[query]
        if expected is None or got is None:
            assert got == expected, query
        else:
            assert math.isclose(got, expected, rel_tol=1e-9, abs_tol=1e-6), (
                query,
                got,
                expected,
            )

    speedup = baseline_s / incremental_s
    ingest = _run_ingest_bench()

    results = {
        "benchmark": "incremental_eval",
        "workload": {
            "checks": len(queries),
            "metric_names": NAME_COUNT,
            "instances_per_name": INSTANCES_PER_NAME,
            "window_s": WINDOW_S,
            "samples_in_window": int(WINDOW_S / SCRAPE_SPACING_S),
            "ticks": TICKS,
        },
        "check_sweep": {
            "baseline_ms_per_tick": round(baseline_s * 1e3, 2),
            "incremental_ms_per_tick": round(incremental_s * 1e3, 2),
            "speedup": round(speedup, 1),
        },
        "plan": {
            "shared_nodes": stats["plan_shared_nodes"],
            "evaluations_saved": stats["plan_evaluations_saved"],
        },
        "aggregates": stats["aggregate"],
        "ingest": ingest,
        "measured_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    rendered = json.dumps(results, indent=2)
    artifact_writer("incremental_eval.json", rendered)
    (REPO_ROOT / "BENCH_incremental.json").write_text(
        rendered + "\n", encoding="utf-8"
    )
    history_appender(
        "incremental_eval",
        {
            "speedup": results["check_sweep"]["speedup"],
            "incremental_ms_per_tick": results["check_sweep"][
                "incremental_ms_per_tick"
            ],
            "batched_pps": ingest["batched_pps"],
            "per_point_pps": ingest["per_point_pps"],
        },
    )

    assert stats["plan_shared_nodes"] >= NAME_COUNT  # the shared rate nodes
    assert ingest["batched_pps"] >= 1.2 * ingest["per_point_pps"], ingest
    assert speedup >= SPEEDUP_FLOOR, (
        f"incremental engine only {speedup:.1f}x faster "
        f"(need >= {SPEEDUP_FLOOR}x)"
    )
