"""Micro-benchmarks of the middleware's hot paths.

Not a paper artifact — these quantify the per-request and per-check costs
that the macro experiments aggregate: query parsing/evaluation, routing
decisions, HTTP message round trips, and outcome mapping.  Useful for
catching performance regressions in the substrate.
"""

import pytest

from repro.core import OutputMapping, ThresholdRanges, canary_split, weighted_outcome
from repro.httpcore import Headers, Request, Response
from repro.metrics import MetricStore, evaluate_scalar, parse
from repro.proxy import FilterChain


@pytest.mark.benchmark(group="micro")
def test_query_parse(benchmark):
    benchmark(parse, 'sum(rate(request_errors{instance="search:80", code=~"5.."}[30s]))')


@pytest.mark.benchmark(group="micro")
def test_query_evaluate(benchmark):
    store = MetricStore()
    for instance in ("a", "b", "c", "d"):
        for t in range(120):
            store.record("requests", float(t * 2), float(t), {"instance": instance})
    expression = parse("sum(rate(requests[60s]))")
    result = benchmark(evaluate_scalar, store, expression, 119.0)
    assert result == pytest.approx(8.0)


@pytest.mark.benchmark(group="micro")
def test_store_ingest(benchmark):
    store = MetricStore(retention=600.0)
    counter = iter(range(10**9))

    def ingest():
        t = float(next(counter))
        store.record("m", t, t, {"instance": "svc"})

    benchmark(ingest)


@pytest.mark.benchmark(group="micro")
def test_routing_decision_cookie(benchmark):
    chain = FilterChain(canary_split("stable", "canary", 5.0))
    request = Request(
        "GET", "/products", Headers([("Cookie", "bifrost_client=u-123")])
    )
    decision = benchmark(chain.decide, request)
    assert decision.version in ("stable", "canary")


@pytest.mark.benchmark(group="micro")
def test_http_request_serialize_roundtrip(benchmark):
    request = Request(
        "POST",
        "/products/SKU-0001/buy",
        Headers([("Host", "shop"), ("Authorization", "Bearer token")]),
        body=b'{"qty": 1}',
    )

    def round_trip():
        return len(request.serialize())

    assert benchmark(round_trip) > 0


@pytest.mark.benchmark(group="micro")
def test_response_serialize(benchmark):
    response = Response.from_json({"products": [{"sku": f"SKU-{i}"} for i in range(50)]})
    benchmark(response.serialize)


@pytest.mark.benchmark(group="micro")
def test_outcome_mapping(benchmark):
    mapping = OutputMapping(ThresholdRanges((75.0, 95.0)), (-5, 4, 5))

    def map_outcomes():
        return [mapping.map(value) for value in (10, 80, 99)]

    assert benchmark(map_outcomes) == [-5, 4, 5]


@pytest.mark.benchmark(group="micro")
def test_weighted_outcome(benchmark):
    outcomes = [1, 0, 1, 1, 5, -5]
    weights = [1.0, 2.0, 1.0, 0.5, 1.0, 1.0]
    benchmark(weighted_outcome, outcomes, weights)


@pytest.mark.benchmark(group="micro")
def test_series_append_trim_cycle(benchmark):
    """Retention-style workload: the ring's O(1) amortized trim hot loop."""
    from repro.metrics.series import SeriesKey, TimeSeries

    def cycle():
        series = TimeSeries(SeriesKey.make("m"))
        for t in range(2000):
            series.append(float(t), 1.0)
            if t >= 100:
                series.drop_before(float(t - 100))
        return len(series)

    assert benchmark(cycle) == 101


@pytest.mark.benchmark(group="micro")
def test_series_window_read(benchmark):
    """Range-selector reads over a wrapped ring (the rate() hot path)."""
    from repro.metrics.series import SeriesKey, TimeSeries

    series = TimeSeries(SeriesKey.make("m"))
    for t in range(20_000):
        series.append(float(t), float(t))
    series.drop_before(4_000.0)  # start pointer advances: windows wrap
    for t in range(20_000, 24_000):
        series.append(float(t), float(t))

    def read():
        timestamps, values = series.window_arrays(10_000.0, 22_000.0)
        return len(timestamps) + len(values)

    assert benchmark(read) == 24_000


@pytest.mark.benchmark(group="micro")
def test_histogram_quantile_cached_layout(benchmark):
    """Per-tick quantile over 20 histograms with the layout cache warm."""
    store = MetricStore()
    at = 60.0
    for instance in range(20):
        for le, count in (
            ("0.1", 10.0), ("0.25", 40.0), ("0.5", 70.0),
            ("1", 90.0), ("2.5", 98.0), ("+Inf", 100.0),
        ):
            store.record(
                "latency_bucket", count, at,
                {"instance": f"inst-{instance}", "le": le},
            )
    expression = parse("histogram_quantile(0.95, latency_bucket)")
    result = benchmark(evaluate_scalar, store, expression, at)
    assert result is not None and result > 0
