"""Tests for the perf-trajectory regression gate (benchmarks/gate.py)."""

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

spec = importlib.util.spec_from_file_location(
    "bench_gate", REPO_ROOT / "benchmarks" / "gate.py"
)
gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(gate)


def _write_history(tmp_path, entries):
    path = tmp_path / "history.jsonl"
    path.write_text(
        "".join(json.dumps(entry) + "\n" for entry in entries),
        encoding="utf-8",
    )
    return path


def _entry(benchmark, data):
    return {"benchmark": benchmark, "at": "t", "git_sha": "sha", "data": data}


def test_metric_direction_heuristics():
    assert gate.metric_direction("speedup") == 1
    assert gate.metric_direction("batched_pps") == 1
    assert gate.metric_direction("proxy_rps.4") == 1
    assert gate.metric_direction("streamed_ttfb_ms") == -1
    assert gate.metric_direction("incremental_ms_per_tick") == -1
    assert gate.metric_direction("lint_seconds") == -1
    assert gate.metric_direction("phases") == 0


def test_flatten_nested_data_uses_dotted_keys():
    flat = gate._flatten({"proxy_rps": {"1": 315, "4": 1228}, "speedup": 3.9})
    assert flat == {"proxy_rps.1": 315.0, "proxy_rps.4": 1228.0, "speedup": 3.9}


def test_throughput_drop_beyond_threshold_is_flagged(tmp_path):
    path = _write_history(
        tmp_path,
        [_entry("bench", {"speedup": s}) for s in (5.0, 5.2, 4.9, 3.0)],
    )
    regressions, _ = gate.check_history(gate.load_history(path))
    assert len(regressions) == 1
    assert "bench.speedup" in regressions[0] and "fell" in regressions[0]
    assert gate.main(["--history", str(path)]) == 1
    assert gate.main(["--history", str(path), "--report-only"]) == 0


def test_latency_rise_beyond_threshold_is_flagged(tmp_path):
    path = _write_history(
        tmp_path,
        [_entry("bench", {"tick_ms": v}) for v in (6.0, 6.1, 5.9, 9.0)],
    )
    regressions, _ = gate.check_history(gate.load_history(path))
    assert len(regressions) == 1
    assert "rose" in regressions[0]


def test_within_threshold_and_improvements_pass(tmp_path):
    path = _write_history(
        tmp_path,
        [
            _entry("bench", {"speedup": 5.0, "tick_ms": 6.0}),
            _entry("bench", {"speedup": 5.1, "tick_ms": 6.2}),
            # 10% slower speedup (within 20%) and faster ticks: both fine.
            _entry("bench", {"speedup": 4.6, "tick_ms": 4.0}),
        ],
    )
    regressions, _ = gate.check_history(gate.load_history(path))
    assert regressions == []
    assert gate.main(["--history", str(path)]) == 0


def test_median_baseline_absorbs_one_noisy_run(tmp_path):
    # One outlier run among the baselines must not fake a regression.
    path = _write_history(
        tmp_path,
        [
            _entry("bench", {"speedup": v})
            for v in (5.0, 5.1, 25.0, 4.9, 5.2, 5.0)
        ],
    )
    regressions, _ = gate.check_history(gate.load_history(path))
    assert regressions == []


def test_baseline_reference_metrics_are_skipped(tmp_path):
    path = _write_history(
        tmp_path,
        [
            _entry("bench", {"baseline_ms": 10.0, "per_point_pps": 400000.0}),
            _entry("bench", {"baseline_ms": 99.0, "per_point_pps": 1000.0}),
        ],
    )
    regressions, skipped = gate.check_history(gate.load_history(path))
    assert regressions == []
    assert any("baseline reference" in line for line in skipped)


def test_single_run_and_unknown_direction_are_skipped(tmp_path):
    path = _write_history(
        tmp_path,
        [
            _entry("new_bench", {"speedup": 5.0}),
            _entry("other", {"phases": 10.0}),
            _entry("other", {"phases": 1.0}),
        ],
    )
    regressions, skipped = gate.check_history(gate.load_history(path))
    assert regressions == []
    assert any("no trend yet" in line for line in skipped)
    assert any("unknown direction" in line for line in skipped)


def test_torn_or_malformed_lines_are_ignored(tmp_path):
    path = tmp_path / "history.jsonl"
    path.write_text(
        json.dumps(_entry("bench", {"speedup": 5.0}))
        + "\n{torn json...\n"
        + json.dumps({"benchmark": 3, "data": {"x": 1}})
        + "\n"
        + json.dumps(_entry("bench", {"speedup": 5.1}))
        + "\n",
        encoding="utf-8",
    )
    series = gate.load_history(path)
    assert len(series) == 1 and len(series["bench"]) == 2


def test_missing_history_file_is_a_clean_pass(tmp_path):
    assert gate.main(["--history", str(tmp_path / "absent.jsonl")]) == 0


def test_gate_passes_on_repo_history():
    # The tracked history must always satisfy the gate at HEAD.
    assert gate.main([]) == 0
