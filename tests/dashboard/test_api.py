"""Tests for the engine HTTP API."""

import asyncio

from repro.clock import VirtualClock
from repro.core import Engine, RecordingController, StrategyBuilder, single_version
from repro.dashboard import EngineApiServer
from repro.httpcore import HttpClient
from repro.proxy import BifrostProxy, HttpProxyController

DOC = """
strategy:
  name: api-test
  phases:
    - phase:
        name: wait
        duration: 0.05
        routes:
          - route:
              from: svc
              to: v2
              filters:
                - traffic:
                    percentage: 50
        next: done
    - final:
        name: done
deployment:
  services:
    svc:
      proxy: {proxy}
      stable: v1
      versions:
        v1: 127.0.0.1:9001
        v2: 127.0.0.1:9002
"""


async def api_setup():
    proxy = BifrostProxy("svc", default_upstream="127.0.0.1:9001")
    await proxy.start()
    controller = HttpProxyController({})
    engine = Engine(controller=controller)
    api = EngineApiServer(engine)
    await api.start()
    client = HttpClient()
    return proxy, engine, api, client


async def api_teardown(proxy, engine, api, client):
    await client.close()
    await api.stop()
    await engine.shutdown()
    if isinstance(engine.controller, HttpProxyController):
        await engine.controller.close()
    await proxy.stop()


async def test_submit_and_track_execution():
    proxy, engine, api, client = await api_setup()
    try:
        document = DOC.format(proxy=proxy.address)
        response = await client.post(
            f"http://{api.address}/api/strategies", body=document.encode()
        )
        assert response.status == 201
        execution_id = response.json()["execution"]

        response = await client.get(f"http://{api.address}/api/executions")
        listing = response.json()["executions"]
        assert len(listing) == 1
        assert listing[0]["execution"] == execution_id

        await asyncio.sleep(0.3)
        response = await client.get(
            f"http://{api.address}/api/executions/{execution_id.replace('#', '%23')}"
        )
        detail = response.json()
        assert detail["status"] == "completed"
        assert detail["path"] == ["wait", "done"]
        # The proxy really was configured over HTTP.
        assert proxy.active_config is not None
    finally:
        await api_teardown(proxy, engine, api, client)


async def test_submit_invalid_document_is_400():
    proxy, engine, api, client = await api_setup()
    try:
        response = await client.post(
            f"http://{api.address}/api/strategies", body=b"not: a strategy"
        )
        assert response.status == 400
        assert "error" in response.json()
    finally:
        await api_teardown(proxy, engine, api, client)


async def test_unknown_execution_404():
    proxy, engine, api, client = await api_setup()
    try:
        response = await client.get(f"http://{api.address}/api/executions/nope%231")
        assert response.status == 404
        response = await client.delete(f"http://{api.address}/api/executions/nope%231")
        assert response.status == 404
    finally:
        await api_teardown(proxy, engine, api, client)


async def test_cancel_running_execution():
    proxy, engine, api, client = await api_setup()
    try:
        document = DOC.format(proxy=proxy.address).replace(
            "duration: 0.05", "duration: 60"
        )
        response = await client.post(
            f"http://{api.address}/api/strategies", body=document.encode()
        )
        execution_id = response.json()["execution"]
        response = await client.delete(
            f"http://{api.address}/api/executions/{execution_id.replace('#', '%23')}"
        )
        assert response.status == 200
        response = await client.get(f"http://{api.address}/api/executions")
        assert response.json()["executions"][0]["status"] == "failed"
    finally:
        await api_teardown(proxy, engine, api, client)


async def test_pause_and_resume_over_the_api():
    proxy, engine, api, client = await api_setup()
    try:
        document = DOC.format(proxy=proxy.address).replace(
            "duration: 0.05", "duration: 0.2"
        )
        response = await client.post(
            f"http://{api.address}/api/strategies", body=document.encode()
        )
        execution_id = response.json()["execution"]
        encoded = execution_id.replace("#", "%23")
        response = await client.post(
            f"http://{api.address}/api/executions/{encoded}/pause"
        )
        assert response.json()["status"] == "pausing"
        await asyncio.sleep(0.4)  # state "wait" finishes, then holds
        response = await client.get(f"http://{api.address}/api/executions")
        assert response.json()["executions"][0]["status"] == "paused"
        response = await client.post(
            f"http://{api.address}/api/executions/{encoded}/resume"
        )
        assert response.json()["status"] == "resumed"
        await asyncio.sleep(0.3)
        response = await client.get(f"http://{api.address}/api/executions")
        assert response.json()["executions"][0]["status"] == "completed"
        # Unknown execution -> 404.
        response = await client.post(
            f"http://{api.address}/api/executions/nope%231/pause"
        )
        assert response.status == 404
    finally:
        await api_teardown(proxy, engine, api, client)


async def test_events_endpoint_pagination():
    proxy, engine, api, client = await api_setup()
    try:
        document = DOC.format(proxy=proxy.address)
        await client.post(
            f"http://{api.address}/api/strategies", body=document.encode()
        )
        await asyncio.sleep(0.3)
        response = await client.get(f"http://{api.address}/api/events")
        payload = response.json()
        assert payload["events"][0]["kind"] == "strategy_started"
        assert payload["events"][-1]["kind"] == "strategy_completed"
        cursor = payload["next"]
        response = await client.get(f"http://{api.address}/api/events?since={cursor}")
        assert response.json()["events"] == []
        response = await client.get(f"http://{api.address}/api/events?since=abc")
        assert response.status == 400
    finally:
        await api_teardown(proxy, engine, api, client)


async def test_health():
    proxy, engine, api, client = await api_setup()
    try:
        response = await client.get(f"http://{api.address}/healthz")
        assert response.json()["status"] == "up"
    finally:
        await api_teardown(proxy, engine, api, client)
