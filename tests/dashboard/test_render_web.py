"""Tests for text rendering and the dashboard web view."""

import asyncio

from repro.clock import VirtualClock
from repro.core import (
    Engine,
    ExceptionCheck,
    MetricCondition,
    StrategyBuilder,
    Timer,
    canary_split,
    simple_basic_check,
    single_version,
)
from repro.dashboard import (
    DashboardServer,
    render_event,
    render_executions,
    render_mermaid,
    render_strategy,
)
from repro.httpcore import HttpClient
from repro.metrics import StaticProvider


def make_strategy():
    builder = StrategyBuilder("render-me")
    builder.service("search", {"search": "h:1", "fastSearch": "h:2"})
    builder.state("canary").route(
        "search", canary_split("search", "fastSearch", 5.0)
    ).check(
        simple_basic_check("errors", "q", "<5", 1, 3, provider="static")
    ).check(
        ExceptionCheck(
            "guard",
            MetricCondition.simple("g", "<9", provider="static"),
            Timer(1, 3),
            "rollback",
        )
    ).transitions([0.5], ["rollback", "done"])
    builder.state("done").route("search", single_version("fastSearch")).final()
    builder.state("rollback").route("search", single_version("search")).final(
        rollback=True
    )
    return builder.build()


def test_render_strategy_mentions_everything():
    text = render_strategy(make_strategy())
    assert "strategy render-me" in text
    assert "service search" in text
    assert "state canary" in text
    assert "route search: search 95% / fastSearch 5%" in text
    assert "check errors" in text
    assert "exception check guard" in text
    assert "fallback rollback" in text
    assert "on outcome (-inf, 0.5] -> rollback" in text
    assert "[rollback target]" in text


def test_render_mermaid_diagram():
    text = render_mermaid(make_strategy().automaton)
    assert text.startswith("stateDiagram-v2")
    assert "[*] --> canary" in text
    assert "canary --> rollback: exception guard" in text
    assert "done --> [*]" in text


def test_render_executions_table():
    table = render_executions(
        [
            {
                "execution": "s#1",
                "strategy": "s",
                "status": "running",
                "current_state": "canary",
                "visits": 1,
            }
        ]
    )
    assert "execution" in table.splitlines()[0]
    assert "s#1" in table
    assert render_executions([]) == "no executions"


def test_render_event_line():
    line = render_event(
        {
            "at": 12.5,
            "strategy": "s",
            "kind": "state_entered",
            "data": {"state": "canary"},
        }
    )
    assert "12.500" in line
    assert "state_entered" in line
    assert "state=canary" in line


async def test_dashboard_pages():
    clock = VirtualClock()
    engine = Engine(clock=clock)
    engine.register_provider("static", StaticProvider({"q": 1.0, "g": 1.0}))
    dashboard = DashboardServer(engine)
    await dashboard.start()
    client = HttpClient()
    try:
        execution_id = engine.enact(make_strategy())
        await asyncio.sleep(0)
        response = await client.get(f"http://{dashboard.address}/")
        assert response.status == 200
        assert b"render-me" in response.body
        assert b"running" in response.body

        await clock.advance(3)
        await engine.wait(execution_id)
        response = await client.get(f"http://{dashboard.address}/status.json")
        payload = response.json()
        assert payload["executions"][0]["status"] == "completed"
        assert payload["executions"][0]["path"] == ["canary", "done"]
        assert payload["executions"][0]["recent_checks"].get("errors") == 1
    finally:
        await client.close()
        await dashboard.stop()
        await engine.shutdown()
