"""Tests for the round-robin load balancer."""

from repro.cluster import LoadBalancer
from repro.httpcore import HttpClient, HttpServer, Response


def instance(tag: str) -> HttpServer:
    server = HttpServer(name=tag)

    async def handler(request):
        return Response.from_json({"instance": tag})

    server.router.set_fallback(handler)
    return server


async def test_round_robin_distribution():
    a, b = instance("a"), instance("b")
    await a.start()
    await b.start()
    balancer = LoadBalancer([a.address, b.address])
    await balancer.start()
    try:
        async with HttpClient() as client:
            tags = [
                (await client.get(f"http://{balancer.address}/")).json()["instance"]
                for _ in range(10)
            ]
        assert tags.count("a") == 5
        assert tags.count("b") == 5
    finally:
        await balancer.stop()
        await a.stop()
        await b.stop()


async def test_failover_skips_dead_instance():
    live = instance("live")
    await live.start()
    balancer = LoadBalancer(["127.0.0.1:1", live.address])
    await balancer.start()
    try:
        async with HttpClient() as client:
            for _ in range(4):
                response = await client.get(f"http://{balancer.address}/")
                assert response.status == 200
                assert response.json()["instance"] == "live"
    finally:
        await balancer.stop()
        await live.stop()


async def test_no_instances_is_503():
    balancer = LoadBalancer([])
    await balancer.start()
    try:
        async with HttpClient() as client:
            response = await client.get(f"http://{balancer.address}/")
            assert response.status == 503
    finally:
        await balancer.stop()


async def test_all_instances_down_is_503():
    balancer = LoadBalancer(["127.0.0.1:1", "127.0.0.1:2"])
    await balancer.start()
    try:
        async with HttpClient() as client:
            response = await client.get(f"http://{balancer.address}/")
            assert response.status == 503
            assert response.json()["error"] == "all instances down"
    finally:
        await balancer.stop()


async def test_add_remove_instance():
    a = instance("a")
    await a.start()
    balancer = LoadBalancer([])
    balancer.add_instance(a.address)
    await balancer.start()
    try:
        async with HttpClient() as client:
            assert (await client.get(f"http://{balancer.address}/")).status == 200
        balancer.remove_instance(a.address)
        assert balancer.instances == []
    finally:
        await balancer.stop()
        await a.stop()
