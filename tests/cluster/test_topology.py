"""Tests for the cluster lifecycle manager."""

import pytest

from repro.cluster import Cluster, ClusterError
from repro.httpcore import HttpServer, Response


def server(tag: str) -> HttpServer:
    s = HttpServer(name=tag)
    s.router.set_fallback(lambda r: Response.text(tag))
    return s


async def test_start_stop_all_components():
    cluster = Cluster()
    a = cluster.add("a", server("a"))
    b = cluster.add("b", server("b"))
    async with cluster:
        assert a.running and b.running
        assert set(cluster.addresses()) == {"a", "b"}
        assert cluster.address("a") == a.address
    assert not a.running and not b.running


async def test_duplicate_names_rejected():
    cluster = Cluster()
    cluster.add("x", server("x"))
    with pytest.raises(ClusterError):
        cluster.add("x", server("x2"))


async def test_add_after_start_rejected():
    cluster = Cluster()
    cluster.add("a", server("a"))
    async with cluster:
        with pytest.raises(ClusterError):
            cluster.add("late", server("late"))


async def test_address_before_start_raises():
    cluster = Cluster()
    cluster.add("a", server("a"))
    with pytest.raises(ClusterError):
        cluster.address("a")


async def test_unknown_component_raises():
    with pytest.raises(ClusterError):
        Cluster().get("ghost")


async def test_failed_start_rolls_back_started_components():
    cluster = Cluster()
    a = cluster.add("a", server("a"))

    class Exploding(HttpServer):
        async def start(self):
            raise RuntimeError("boom")

    cluster.add("bad", Exploding())
    with pytest.raises(RuntimeError):
        await cluster.start()
    assert not a.running


async def test_double_start_rejected():
    cluster = Cluster()
    cluster.add("a", server("a"))
    await cluster.start()
    try:
        with pytest.raises(ClusterError):
            await cluster.start()
    finally:
        await cluster.stop()


async def test_components_listing():
    cluster = Cluster()
    cluster.add("one", server("one"))
    cluster.add("two", server("two"))
    assert cluster.components == ["one", "two"]
