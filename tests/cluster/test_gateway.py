"""Tests for the nginx-like gateway."""

import pytest

from repro.cluster import Gateway
from repro.httpcore import HttpClient, HttpServer, Response


def upstream(tag: str) -> HttpServer:
    server = HttpServer(name=tag)

    async def handler(request):
        return Response.from_json({"tag": tag, "path": request.path})

    server.router.set_fallback(handler)
    return server


async def test_longest_prefix_wins():
    front = upstream("frontend")
    product = upstream("product")
    await front.start()
    await product.start()
    gateway = Gateway()
    gateway.add_route("/", front.address)
    gateway.add_route("/products", product.address)
    await gateway.start()
    try:
        async with HttpClient() as client:
            response = await client.get(f"http://{gateway.address}/products/1")
            assert response.json()["tag"] == "product"
            response = await client.get(f"http://{gateway.address}/index.html")
            assert response.json()["tag"] == "frontend"
    finally:
        await gateway.stop()
        await front.stop()
        await product.stop()


async def test_no_route_is_404():
    gateway = Gateway()
    gateway.add_route("/api", "127.0.0.1:1")
    await gateway.start()
    try:
        async with HttpClient() as client:
            response = await client.get(f"http://{gateway.address}/other")
            assert response.status == 404
    finally:
        await gateway.stop()


async def test_dead_upstream_is_502():
    gateway = Gateway()
    gateway.add_route("/", "127.0.0.1:1")
    await gateway.start()
    try:
        async with HttpClient() as client:
            response = await client.get(f"http://{gateway.address}/x")
            assert response.status == 502
    finally:
        await gateway.stop()


async def test_set_upstream_repoints_route():
    a = upstream("a")
    b = upstream("b")
    await a.start()
    await b.start()
    gateway = Gateway()
    gateway.add_route("/", a.address)
    await gateway.start()
    try:
        async with HttpClient() as client:
            assert (await client.get(f"http://{gateway.address}/")).json()["tag"] == "a"
            gateway.set_upstream("/", b.address)
            assert (await client.get(f"http://{gateway.address}/")).json()["tag"] == "b"
        with pytest.raises(KeyError):
            gateway.set_upstream("/missing", "h:1")
    finally:
        await gateway.stop()
        await a.stop()
        await b.stop()


def test_prefix_must_start_with_slash():
    with pytest.raises(ValueError):
        Gateway().add_route("products", "h:1")


def test_upstream_for():
    gateway = Gateway()
    gateway.add_route("/", "front:1")
    gateway.add_route("/api/v1", "api:1")
    assert gateway.upstream_for("/api/v1/things") == "api:1"
    assert gateway.upstream_for("/api") == "front:1"
    assert Gateway().upstream_for("/x") is None
