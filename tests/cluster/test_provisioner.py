"""Tests for version provisioning (the IaC-integration seam)."""

import pytest

from repro.cluster import (
    InProcessProvisioner,
    ProvisioningError,
    provision_strategy_versions,
)
from repro.httpcore import HttpClient, HttpServer, Response


def make_factory(tag: str):
    def factory():
        server = HttpServer(name=tag)
        server.router.set_fallback(lambda r: _respond(tag))
        return server

    return factory


async def _respond(tag):
    return Response.from_json({"version": tag})


async def test_provision_starts_a_reachable_server():
    provisioner = InProcessProvisioner()
    provisioner.register("search", "fastSearch", make_factory("fastSearch"))
    endpoint = await provisioner.provision("search", "fastSearch")
    try:
        async with HttpClient() as client:
            response = await client.get(f"http://{endpoint}/x")
            assert response.json() == {"version": "fastSearch"}
        assert provisioner.running == [("search", "fastSearch")]
        assert provisioner.endpoint("search", "fastSearch") == endpoint
    finally:
        await provisioner.shutdown()


async def test_provision_same_version_twice_is_refcounted():
    provisioner = InProcessProvisioner()
    provisioner.register("svc", "v", make_factory("v"))
    first = await provisioner.provision("svc", "v")
    second = await provisioner.provision("svc", "v")
    assert first == second
    await provisioner.decommission("svc", "v")
    assert provisioner.running == [("svc", "v")]  # one claim left
    await provisioner.decommission("svc", "v")
    assert provisioner.running == []


async def test_async_factory_supported():
    async def factory():
        server = HttpServer(name="async-built")
        server.router.set_fallback(lambda r: _respond("async"))
        return server

    provisioner = InProcessProvisioner()
    provisioner.register("svc", "v", factory)
    endpoint = await provisioner.provision("svc", "v")
    assert endpoint
    await provisioner.shutdown()


async def test_unregistered_version_raises():
    provisioner = InProcessProvisioner()
    with pytest.raises(ProvisioningError):
        await provisioner.provision("svc", "ghost")


async def test_duplicate_factory_rejected():
    provisioner = InProcessProvisioner()
    provisioner.register("svc", "v", make_factory("v"))
    with pytest.raises(ProvisioningError):
        provisioner.register("svc", "v", make_factory("v"))


async def test_decommission_unprovisioned_raises():
    provisioner = InProcessProvisioner()
    with pytest.raises(ProvisioningError):
        await provisioner.decommission("svc", "v")


async def test_factory_failure_wrapped():
    class Exploding(HttpServer):
        async def start(self):
            raise RuntimeError("no capacity")

    provisioner = InProcessProvisioner()
    provisioner.register("svc", "v", lambda: Exploding())
    with pytest.raises(ProvisioningError):
        await provisioner.provision("svc", "v")


async def test_provision_strategy_versions_all_or_nothing():
    provisioner = InProcessProvisioner()
    provisioner.register("svc", "good", make_factory("good"))
    # "bad" has no factory -> the helper must roll back "good".
    with pytest.raises(ProvisioningError):
        await provision_strategy_versions(provisioner, "svc", ["good", "bad"])
    assert provisioner.running == []
    # A fully registered set provisions cleanly.
    provisioner.register("svc", "better", make_factory("better"))
    endpoints = await provision_strategy_versions(
        provisioner, "svc", ["good", "better"]
    )
    assert set(endpoints) == {"good", "better"}
    await provisioner.shutdown()
    assert provisioner.running == []
