"""Tests for the pull-based scraper (local and HTTP targets)."""

import pytest

from repro.clock import VirtualClock
from repro.httpcore import HttpServer, Response
from repro.metrics import (
    LabelMatcher,
    MetricStore,
    Registry,
    Scraper,
    render_exposition,
)


async def test_scrape_local_registry():
    store = MetricStore()
    registry = Registry()
    registry.counter("hits").inc(5)
    scraper = Scraper(store, clock=VirtualClock(start=100.0))
    scraper.add_local("svc:80", registry)
    ingested = await scraper.scrape_once()
    await scraper.stop()
    assert ingested == 1
    series = store.select("hits", [LabelMatcher("instance", "=", "svc:80")])
    assert len(series) == 1
    assert series[0].latest().value == 5.0
    assert series[0].latest().timestamp == 100.0


async def test_scrape_http_target():
    registry = Registry()
    registry.gauge("temperature").set(21.5)
    server = HttpServer()

    @server.router.get("/metrics")
    async def metrics(request):
        return Response.text(render_exposition(registry))

    async with server:
        store = MetricStore()
        scraper = Scraper(store)
        scraper.add_target("svc:80", f"http://{server.address}/metrics")
        ingested = await scraper.scrape_once()
        await scraper.stop()
    assert ingested == 1
    assert store.select("temperature")[0].latest().value == 21.5


async def test_scrape_failure_is_counted_not_fatal():
    store = MetricStore()
    scraper = Scraper(store)
    scraper.add_target("dead:80", "http://127.0.0.1:1/metrics")
    ingested = await scraper.scrape_once()
    assert ingested == 0
    assert scraper.failures["dead:80"] == 1
    await scraper.scrape_once()
    assert scraper.failures["dead:80"] == 2
    await scraper.stop()


async def test_scrape_mixed_targets_one_failing():
    registry = Registry()
    registry.counter("ok_metric").inc()
    store = MetricStore()
    scraper = Scraper(store)
    scraper.add_local("good", registry)
    scraper.add_target("dead:80", "http://127.0.0.1:1/metrics")
    ingested = await scraper.scrape_once()
    await scraper.stop()
    assert ingested == 1
    assert store.names() == {"ok_metric"}


async def test_periodic_scrape_loop_with_virtual_clock():
    clock = VirtualClock()
    store = MetricStore()
    registry = Registry()
    gauge = registry.gauge("g")
    scraper = Scraper(store, interval=5.0, clock=clock)
    scraper.add_local("svc", registry)
    scraper.start()
    with pytest.raises(RuntimeError):
        scraper.start()
    # First scrape happens immediately; then every 5 virtual seconds.
    await clock.advance(0)
    gauge.set(1)
    await clock.advance(5)
    gauge.set(2)
    await clock.advance(5)
    await scraper.stop()
    series = store.select("g")[0]
    values = [sample.value for sample in series.window(-1, clock.now())]
    assert values == [0.0, 1.0, 2.0]


async def test_instance_label_does_not_override_existing():
    """A point that already carries instance keeps its own label."""
    store = MetricStore()
    registry = Registry()
    registry.gauge("g", label_names=("instance",)).labels(instance="custom").set(9)
    scraper = Scraper(store, clock=VirtualClock())
    scraper.add_local("scraped", registry)
    await scraper.scrape_once()
    await scraper.stop()
    series = store.select("g", [LabelMatcher("instance", "=", "custom")])
    assert len(series) == 1
