"""Tests for the resource sampler (cAdvisor stand-in)."""

import time

from repro.metrics import CpuMeter, Registry, ResourceSampler
from repro.metrics.cadvisor import process_cpu_seconds, process_rss_bytes


def test_process_cpu_seconds_increases_under_load():
    before = process_cpu_seconds()
    deadline = time.monotonic() + 0.05
    while time.monotonic() < deadline:
        sum(range(1000))
    assert process_cpu_seconds() > before


def test_process_rss_is_positive():
    assert process_rss_bytes() > 1024 * 1024  # every Python process > 1 MiB


def test_cpu_meter_busy_loop_shows_high_utilization():
    meter = CpuMeter()
    deadline = time.monotonic() + 0.05
    while time.monotonic() < deadline:
        sum(range(1000))
    cpu = meter.sample()
    assert 10.0 <= cpu <= 100.0


def test_cpu_meter_bounds():
    meter = CpuMeter()
    time.sleep(0.02)
    assert 0.0 <= meter.sample() <= 100.0


def test_resource_sampler_publishes_gauges():
    registry = Registry()
    sampler = ResourceSampler(registry, instance="engine")
    cpu, rss = sampler.sample()
    points = {p.name: p for p in registry.collect()}
    assert points["container_cpu_percent"].value == cpu
    assert points["container_cpu_percent"].labels == {"instance": "engine"}
    assert points["container_memory_bytes"].value == rss
    assert rss > 0
    assert "container_pid" in points
