"""Unit tests for exposition-format rendering and parsing."""

import pytest

from repro.metrics import MetricPoint, Registry, parse_exposition, render_exposition


def test_render_unlabelled_point():
    text = render_exposition([MetricPoint("up", {}, 1.0)])
    assert text == "up 1\n"


def test_render_labelled_point_sorts_labels():
    text = render_exposition([MetricPoint("m", {"b": "2", "a": "1"}, 3.5)])
    assert text == 'm{a="1",b="2"} 3.5\n'


def test_render_escapes_label_values():
    text = render_exposition([MetricPoint("m", {"q": 'say "hi"\\'}, 1.0)])
    parsed = parse_exposition(text)
    assert parsed[0].labels["q"] == 'say "hi"\\'


def test_render_registry_directly():
    registry = Registry()
    registry.counter("c").inc(2)
    assert render_exposition(registry) == "c 2\n"


def test_render_empty_is_empty_string():
    assert render_exposition([]) == ""


def test_parse_skips_comments_and_blanks():
    text = "# HELP up liveness\n# TYPE up gauge\n\nup 1\n"
    points = parse_exposition(text)
    assert len(points) == 1
    assert points[0].name == "up"


def test_parse_infinity_values():
    points = parse_exposition('b{le="+Inf"} 7\nneg -Inf\n')
    assert points[0].value == 7.0
    assert points[1].value == float("-inf")


def test_parse_rejects_garbage():
    with pytest.raises(ValueError):
        parse_exposition("!!! not metrics !!!")


def test_round_trip_preserves_everything():
    original = [
        MetricPoint("http_requests_total", {"code": "200", "path": "/buy"}, 1234.0),
        MetricPoint("latency_sum", {}, 12.75),
        MetricPoint("latency_bucket", {"le": "+Inf"}, 40.0),
    ]
    parsed = parse_exposition(render_exposition(original))
    assert parsed == original


def test_render_lines_streams_equivalent_text():
    from repro.metrics.exposition import render_lines

    registry = Registry()
    counter = registry.counter("hits_total", label_names=("route",))
    counter.labels(route="/a").inc()
    counter.labels(route='/b "q"').inc(2)
    registry.gauge("temp").set(1.5)
    lines = list(render_lines(registry))
    assert all(line.endswith("\n") for line in lines)
    assert "".join(lines) == render_exposition(registry)


def test_render_lines_empty_registry():
    from repro.metrics.exposition import render_lines

    assert list(render_lines([])) == []
    assert render_exposition([]) == ""


def test_parse_tolerant_skips_malformed_lines():
    from repro.metrics import parse_exposition_tolerant

    text = (
        "# HELP hits_total Total hits.\n"
        "hits_total 5\n"
        "not a metric at all {{{\n"
        'labeled_total{zone="z1"} 7\n'
        "value_is_word nonsense_value\n"
    )
    points, bad_lines = parse_exposition_tolerant(text)
    assert [point.name for point in points] == ["hits_total", "labeled_total"]
    assert bad_lines == [
        "not a metric at all {{{",
        "value_is_word nonsense_value",
    ]


def test_parse_tolerant_matches_strict_on_clean_input():
    from repro.metrics import parse_exposition_tolerant

    text = 'a_total 1\nb_total{x="y"} 2.5\nc +Inf\n'
    points, bad_lines = parse_exposition_tolerant(text)
    assert bad_lines == []
    assert points == parse_exposition(text)


def test_strict_parse_still_rejects_bad_values():
    with pytest.raises(ValueError):
        parse_exposition("metric_name not_a_number\n")
