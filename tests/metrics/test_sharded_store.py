"""Tests for the sharded metric store and its integration points."""

import pytest

from repro.clock import VirtualClock
from repro.httpcore import HttpClient
from repro.metrics import (
    LocalPrometheusProvider,
    MetricsServer,
    MetricStore,
    Registry,
    ShardedMetricStore,
    evaluate,
    shard_index_for,
)
from repro.metrics.scraper import Scraper


def test_shard_index_is_stable_and_bounded():
    for count in (1, 2, 4, 8):
        for name in ("http_requests_total", "errors", "latency_bucket"):
            index = shard_index_for(name, count)
            assert 0 <= index < count
            assert index == shard_index_for(name, count)  # deterministic


def test_shard_count_validation():
    with pytest.raises(ValueError):
        ShardedMetricStore(shard_count=0)


def test_series_of_one_name_land_in_one_shard():
    store = ShardedMetricStore(shard_count=4)
    for instance in range(8):
        store.record("api_hits", float(instance), 1.0, {"instance": f"i{instance}"})
    owner = store.shard_for("api_hits")
    assert owner is store.shards[store.shard_index("api_hits")]
    assert len(owner) == 8
    assert sum(len(shard) for shard in store.shards if shard is not owner) == 0


def test_facade_matches_metric_store_api():
    store = ShardedMetricStore(shard_count=4)
    store.record("a_metric", 1.0, 1.0, {"instance": "x"})
    store.record("b_metric", 2.0, 1.0, {"instance": "y"})
    assert store.names() == {"a_metric", "b_metric"}
    assert len(store) == 2
    assert len(store.select("a_metric")) == 1
    vector = evaluate(store, 'a_metric{instance="x"}', at=2.0)
    assert [sample.value for sample in vector] == [1.0]
    store.clear()
    assert len(store) == 0
    assert store.names() == set()


def test_generation_sums_are_monotonic():
    store = ShardedMetricStore(shard_count=4)
    before = store.generation
    store.record("m_one", 1.0, 1.0)
    after_one = store.generation
    assert after_one > before
    store.record("m_two", 1.0, 1.0)
    assert store.generation > after_one


async def test_provider_memo_survives_other_shard_ingest():
    """The payoff: ingest into shard A leaves shard B's memo entries live."""
    clock = VirtualClock(start=100.0)
    sharded = ShardedMetricStore(shard_count=4)
    # Two names guaranteed to live in different shards.
    name_a = "alpha_total"
    name_b = next(
        f"beta_total_{i}"
        for i in range(64)
        if shard_index_for(f"beta_total_{i}", 4) != shard_index_for(name_a, 4)
    )
    sharded.record(name_a, 1.0, 99.0)
    sharded.record(name_b, 2.0, 99.0)

    provider = LocalPrometheusProvider(sharded, clock=clock)
    assert await provider.query(name_b) == 2.0
    sharded.record(name_a, 3.0, 100.5)  # churn in the *other* shard
    assert await provider.query(name_b) == 2.0
    assert provider.cache_hits == 1

    # Against a monolithic store the same interleaving evaluates twice.
    mono = MetricStore()
    mono.record(name_a, 1.0, 99.0)
    mono.record(name_b, 2.0, 99.0)
    mono_provider = LocalPrometheusProvider(mono, clock=clock)
    assert await mono_provider.query(name_b) == 2.0
    mono.record(name_a, 3.0, 100.5)
    assert await mono_provider.query(name_b) == 2.0
    assert mono_provider.cache_hits == 0
    assert mono_provider.cache_misses == 2


async def test_sharded_ingest_is_atomic_across_shards():
    server = MetricsServer(clock=VirtualClock(start=10.0), shards=4)
    await server.start(scrape=False)
    try:
        generations_before = [shard.generation for shard in server.store.shards]
        batch = [
            {"name": "good_metric_one", "value": 1.0, "timestamp": 9.0},
            {"name": "good_metric_two", "value": 2.0, "timestamp": 9.0},
            {"name": "bad_metric", "value": "not-a-number", "timestamp": 9.0},
            {"name": "good_metric_three", "value": 3.0, "timestamp": 9.0},
        ]
        async with HttpClient() as client:
            response = await client.post(
                f"http://{server.address}/api/v1/ingest", json_body=batch
            )
            assert response.status == 400
            # No shard recorded anything: the batch failed as a unit.
            assert [
                shard.generation for shard in server.store.shards
            ] == generations_before
            assert len(server.store) == 0

            good = [sample for sample in batch if sample["name"] != "bad_metric"]
            response = await client.post(
                f"http://{server.address}/api/v1/ingest", json_body=good
            )
            assert response.status == 200
            assert response.json()["ingested"] == 3
            assert len(server.store) == 3
    finally:
        await server.stop()


async def test_healthz_reports_per_shard_view():
    server = MetricsServer(clock=VirtualClock(start=10.0), shards=4)
    server.store.record("m_a", 1.0, 9.0)
    server.store.record("m_b", 2.0, 9.0)
    await server.start(scrape=False)
    try:
        async with HttpClient() as client:
            response = await client.get(f"http://{server.address}/healthz")
            payload = response.json()
            shards = payload["shards"]
            assert shards["count"] == 4
            assert len(shards["per_shard"]) == 4
            assert sum(entry["series"] for entry in shards["per_shard"]) == 2
            assert payload["series"] == 2
    finally:
        await server.stop()


async def test_unsharded_healthz_reports_single_shard():
    server = MetricsServer(clock=VirtualClock(start=10.0))
    await server.start(scrape=False)
    try:
        async with HttpClient() as client:
            response = await client.get(f"http://{server.address}/healthz")
            assert response.json()["shards"] == {"count": 1}
    finally:
        await server.stop()


def test_scraper_partitions_are_a_disjoint_cover():
    store = MetricStore()
    scraper = Scraper(store, loops=3)
    registries = [Registry() for _ in range(7)]
    for index, registry in enumerate(registries):
        scraper.add_local(f"svc-{index}", registry)
    for index in range(5):
        scraper.add_target(f"http-{index}", f"http://127.0.0.1:1/{index}")

    seen_local, seen_http = [], []
    for partition in range(scraper.loops):
        locals_, https = scraper.partition_targets(partition)
        seen_local.extend(instance for instance, _ in locals_)
        seen_http.extend(target.instance for target in https)
    assert sorted(seen_local) == sorted(f"svc-{i}" for i in range(7))
    assert sorted(seen_http) == sorted(f"http-{i}" for i in range(5))
    assert len(seen_local) == len(set(seen_local))
    assert len(seen_http) == len(set(seen_http))


def test_scraper_rejects_zero_loops():
    with pytest.raises(ValueError):
        Scraper(MetricStore(), loops=0)


async def test_scraper_runs_one_task_per_loop():
    clock = VirtualClock(start=0.0)
    store = ShardedMetricStore(shard_count=2)
    scraper = Scraper(store, interval=1.0, clock=clock, loops=2)
    registry_a, registry_b = Registry(), Registry()
    registry_a.counter("loop_a_total").inc()
    registry_b.counter("loop_b_total").inc()
    scraper.add_local("svc-a", registry_a)
    scraper.add_local("svc-b", registry_b)
    scraper.start()
    try:
        assert len(scraper._tasks) == 2
        await clock.advance(0.0)  # let both loops run their first scrape
        assert store.names() == {"loop_a_total", "loop_b_total"}
    finally:
        await scraper.stop()
    assert scraper._tasks == []
