"""Scraper concurrency and batching semantics (incremental ingest path)."""

import asyncio

from repro.clock import VirtualClock
from repro.httpcore import HttpServer, Response
from repro.metrics import (
    LabelMatcher,
    MetricStore,
    Registry,
    Scraper,
    ShardedMetricStore,
)


class FakeClient:
    """HTTP client stub: per-URL payloads, optional virtual-time delays."""

    def __init__(self, clock, pages, delays=None):
        self.clock = clock
        self.pages = pages
        self.delays = delays or {}

    async def get(self, url):
        delay = self.delays.get(url, 0.0)
        if delay:
            await self.clock.sleep(delay)
        return Response.text(self.pages[url])


async def test_slow_target_does_not_delay_peer_ingest_timestamps():
    clock = VirtualClock(start=100.0)
    store = MetricStore()
    client = FakeClient(
        clock,
        pages={"http://fast/metrics": "m_fast 1\n", "http://slow/metrics": "m_slow 2\n"},
        delays={"http://slow/metrics": 10.0},
    )
    scraper = Scraper(store, clock=clock, client=client)
    scraper.add_target("fast:80", "http://fast/metrics")
    scraper.add_target("slow:80", "http://slow/metrics")
    task = asyncio.create_task(scraper.scrape_partition(0))
    await clock.advance(10.0)
    assert await task == 2
    # The fast target's sample is stamped at its own fetch completion, not
    # after the slow partition peer finally answered.
    assert store.select("m_fast")[0].latest().timestamp == 100.0
    assert store.select("m_slow")[0].latest().timestamp == 110.0


async def test_malformed_lines_skipped_and_counted():
    clock = VirtualClock(start=5.0)
    store = MetricStore()
    payload = "good_metric 1\nthis is {{{ garbage\nother_metric 2\nbad value!!\n"
    client = FakeClient(clock, pages={"http://svc/metrics": payload})
    scraper = Scraper(store, clock=clock, client=client)
    scraper.add_target("svc:80", "http://svc/metrics")
    assert await scraper.scrape_once() == 2
    assert store.names() == {"good_metric", "other_metric"}
    assert scraper.parse_errors["svc:80"] == 2
    assert scraper.failures["svc:80"] == 0
    # Counters accumulate across scrapes.
    await scraper.scrape_once()
    assert scraper.parse_errors["svc:80"] == 4


async def test_stale_batch_rejected_atomically():
    clock = VirtualClock(start=50.0)
    store = MetricStore()
    store.record("a_total", 1.0, 99.0, {"instance": "svc:80"})
    client = FakeClient(clock, pages={"http://svc/metrics": "fresh_total 1\na_total 2\n"})
    scraper = Scraper(store, clock=clock, client=client)
    scraper.add_target("svc:80", "http://svc/metrics")
    # The whole target batch is rejected: a_total at t=50 is behind its
    # floor (99), so fresh_total must not land either.
    assert await scraper.scrape_once() == 0
    assert store.names() == {"a_total"}
    assert scraper.failures["svc:80"] == 1


async def test_unlabeled_points_share_cached_instance_labels():
    clock = VirtualClock(start=1.0)
    store = MetricStore()
    registry = Registry()
    registry.counter("c1").inc()
    registry.counter("c2").inc(2)
    scraper = Scraper(store, clock=clock, client=FakeClient(clock, pages={}))
    scraper.add_local("svc:80", registry)
    await scraper.scrape_once()
    cached = scraper._instance_labels["svc:80"]
    assert cached == {"instance": "svc:80"}
    assert scraper._merged_labels({}, "svc:80") is cached
    # A point already carrying instance passes through without a copy.
    labels = {"instance": "custom"}
    assert scraper._merged_labels(labels, "svc:80") is labels
    series = store.select("c1", [LabelMatcher("instance", "=", "svc:80")])
    assert len(series) == 1


async def test_sharded_and_monolithic_scrape_ingest_identically():
    payload = "".join(
        f'metric_{i}_total{{zone="z{i % 3}"}} {i}\n' for i in range(24)
    )
    stores = (MetricStore(), ShardedMetricStore(shard_count=4))
    for store in stores:
        clock = VirtualClock(start=7.0)
        client = FakeClient(clock, pages={"http://svc/metrics": payload})
        scraper = Scraper(store, clock=clock, client=client, loops=2)
        scraper.add_target("svc:80", "http://svc/metrics")
        assert await scraper.scrape_once() == 24
    flat, sharded = stores
    assert flat.names() == sharded.names()
    for name in flat.names():
        flat_series, sharded_series = flat.select(name), sharded.select(name)
        assert len(flat_series) == len(sharded_series) == 1
        assert flat_series[0].latest() == sharded_series[0].latest()
        assert flat_series[0].key == sharded_series[0].key


async def test_http_scrape_lands_as_one_generation_bump():
    clock = VirtualClock(start=3.0)
    store = MetricStore()
    payload = "a_total 1\nb_total 2\nc_total 3\n"
    client = FakeClient(clock, pages={"http://svc/metrics": payload})
    scraper = Scraper(store, clock=clock, client=client)
    scraper.add_target("svc:80", "http://svc/metrics")
    before = store.generation
    assert await scraper.scrape_once() == 3
    assert store.generation == before + 1


async def test_real_http_target_batched_end_to_end():
    registry = Registry()
    registry.gauge("temperature").set(21.5)
    server = HttpServer()

    @server.router.get("/metrics")
    async def metrics(request):
        body = "temperature 21.5\ngarbage line !!!\n"
        return Response.text(body)

    async with server:
        store = MetricStore()
        scraper = Scraper(store)
        scraper.add_target("svc:80", f"http://{server.address}/metrics")
        ingested = await scraper.scrape_once()
        await scraper.stop()
    assert ingested == 1
    assert scraper.parse_errors["svc:80"] == 1
    assert store.select("temperature")[0].latest().value == 21.5
