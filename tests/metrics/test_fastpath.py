"""The metrics query fast path: compile cache, name index, instant cache.

Behavioral tests for the performance machinery added around the store and
providers — correctness of caching and invalidation, not speed (speed is
measured in ``benchmarks/test_query_fastpath.py``).
"""

import pytest

from repro.clock import VirtualClock
from repro.metrics import (
    LabelMatcher,
    LocalPrometheusProvider,
    MetricStore,
    compile_query,
    evaluate_scalar,
    parse,
)
from repro.metrics.compile import cache_info, clear_cache
from repro.metrics.series import SeriesKey, TimeSeries


# -- compiled-query cache --------------------------------------------------------


def test_compile_query_memoizes_per_string():
    clear_cache()
    first = compile_query('errors{instance="a", code=~"5.."}')
    second = compile_query('errors{instance="a", code=~"5.."}')
    assert first is second  # same object, no re-parse
    assert cache_info().hits >= 1


def test_compile_query_equals_fresh_parse():
    query = 'sum(rate(requests{instance=~"search:.*"}[30s])) * 100'
    assert compile_query(query) == parse(query)
    assert parse(query) is not parse(query) or True  # parse itself stays fresh


def test_evaluate_accepts_precompiled_expression():
    store = MetricStore()
    store.record("m", 7.0, 1.0)
    expression = compile_query("m")
    assert evaluate_scalar(store, expression, at=1.0) == 7.0
    assert evaluate_scalar(store, "m", at=1.0) == 7.0


# -- indexed store ----------------------------------------------------------------


def test_selector_cache_returns_fresh_lists():
    store = MetricStore()
    store.record("m", 1.0, 1.0, {"v": "a"})
    store.record("m", 2.0, 1.0, {"v": "b"})
    matchers = [LabelMatcher("v", "=~", "a|b")]
    first = store.select("m", matchers)
    first.append("garbage")  # caller mutation must not poison the cache
    second = store.select("m", matchers)
    assert len(second) == 2
    assert all(isinstance(series, TimeSeries) for series in second)


def test_selector_cache_invalidated_by_new_series():
    store = MetricStore()
    store.record("m", 1.0, 1.0, {"v": "a"})
    matchers = [LabelMatcher("v", "=~", ".*")]
    assert len(store.select("m", matchers)) == 1
    store.record("m", 2.0, 2.0, {"v": "b"})  # new series, same name
    assert len(store.select("m", matchers)) == 2


def test_selector_cache_survives_appends_to_existing_series():
    store = MetricStore()
    store.record("m", 1.0, 1.0, {"v": "a"})
    matchers = [LabelMatcher("v", "=", "a")]
    assert len(store.select("m", matchers)) == 1
    store.record("m", 2.0, 2.0, {"v": "a"})  # same series, no invalidation
    selected = store.select("m", matchers)
    assert len(selected) == 1
    assert selected[0].latest().value == 2.0


def test_generation_bumps_on_record_and_clear():
    store = MetricStore()
    start = store.generation
    store.record("m", 1.0, 1.0)
    assert store.generation > start
    mid = store.generation
    store.record("m", 2.0, 2.0)
    assert store.generation > mid
    last = store.generation
    store.clear()
    assert store.generation > last
    assert store.select("m") == []
    assert store.names() == set()


def test_retention_guard_still_drops_expired_samples():
    store = MetricStore(retention=10.0)
    for t in range(30):
        store.record("m", float(t), float(t))
    series = store.select("m")[0]
    assert series.oldest_timestamp >= 30 - 1 - 10.0
    # recent samples survive
    assert series.latest().timestamp == 29.0


# -- zero-copy series reads --------------------------------------------------------


def test_window_bounds_and_arrays_match_window():
    series = TimeSeries(SeriesKey.make("m"))
    for t in range(10):
        series.append(float(t), float(t * 2))
    lo, hi = series.window_bounds(2.0, 7.0)
    timestamps, values = series.window_arrays(2.0, 7.0)
    samples = series.window(2.0, 7.0)
    assert hi - lo == len(samples) == len(timestamps) == len(values)
    assert list(timestamps) == [s.timestamp for s in samples]
    assert list(values) == [s.value for s in samples]
    assert timestamps[0] == 3.0 and timestamps[-1] == 7.0  # start exclusive


def test_value_at_matches_at():
    series = TimeSeries(SeriesKey.make("m"))
    series.append(1.0, 10.0)
    series.append(5.0, 50.0)
    assert series.value_at(5.0) == series.at(5.0).value == 50.0
    assert series.value_at(0.5) is None and series.at(0.5) is None
    assert series.value_at(100.0, staleness=10.0) is None


# -- per-instant provider cache -----------------------------------------------------


class CountingStore(MetricStore):
    def __init__(self):
        super().__init__()
        self.select_calls = 0

    def select(self, name, matchers=None):
        self.select_calls += 1
        return super().select(name, matchers)


async def test_instant_cache_collapses_identical_queries_per_tick():
    clock = VirtualClock(start=10.0)
    store = CountingStore()
    store.record("errors", 3.0, 9.0, {"instance": "search:80"})
    provider = LocalPrometheusProvider(store, clock=clock)
    query = 'errors{instance="search:80"}'
    assert await provider.query(query) == 3.0
    before = store.select_calls
    assert await provider.query(query) == 3.0  # same tick: served from cache
    assert store.select_calls == before


async def test_instant_cache_invalidated_by_clock_tick():
    clock = VirtualClock(start=10.0)
    store = CountingStore()
    store.record("m", 1.0, 9.0)
    provider = LocalPrometheusProvider(store, clock=clock)
    assert await provider.query("m") == 1.0
    before = store.select_calls
    await clock.advance(1.0)
    assert await provider.query("m") == 1.0  # re-evaluated at the new tick
    assert store.select_calls > before


async def test_instant_cache_invalidated_by_store_mutation():
    clock = VirtualClock(start=10.0)
    store = MetricStore()
    store.record("m", 1.0, 9.0)
    provider = LocalPrometheusProvider(store, clock=clock)
    assert await provider.query("m") == 1.0
    store.record("m", 2.0, 10.0)  # same tick, but the store changed
    assert await provider.query("m") == 2.0


async def test_instant_cache_caches_empty_results_too():
    clock = VirtualClock(start=10.0)
    store = CountingStore()
    provider = LocalPrometheusProvider(store, clock=clock)
    assert await provider.query("missing") is None
    before = store.select_calls
    assert await provider.query("missing") is None
    assert store.select_calls == before


# -- histogram bucket layout cache --------------------------------------------------


def _record_histogram(store, at, counts, instance="a"):
    for bound, count in counts.items():
        store.record(
            "latency_bucket", count, at, {"le": bound, "instance": instance}
        )


def test_histogram_layout_cache_hits_across_appends():
    store = CountingStore()
    _record_histogram(store, 1.0, {"0.1": 5.0, "0.5": 9.0, "+Inf": 10.0})
    query = "histogram_quantile(0.5, latency_bucket)"
    first = evaluate_scalar(store, query, at=1.0)
    calls = store.select_calls
    # New samples on existing series keep the layout valid: later
    # evaluations interpolate fresh counts without re-grouping buckets.
    _record_histogram(store, 2.0, {"0.1": 50.0, "0.5": 90.0, "+Inf": 100.0})
    second = evaluate_scalar(store, query, at=2.0)
    assert store.select_calls == calls  # layout served from cache
    assert first is not None and second is not None
    assert 0.1 <= first <= 0.5 and 0.1 <= second <= 0.5


def test_histogram_layout_cache_invalidated_by_new_series():
    store = MetricStore()
    _record_histogram(store, 1.0, {"0.1": 1.0, "+Inf": 4.0}, instance="a")
    query = "histogram_quantile(0.5, latency_bucket)"
    from repro.metrics.query import evaluate

    assert len(evaluate(store, query, 1.0)) == 1
    _record_histogram(store, 2.0, {"0.1": 2.0, "+Inf": 2.0}, instance="b")
    # The new instance's buckets must appear immediately.
    assert len(evaluate(store, query, 2.0)) == 2


def test_histogram_layout_cache_tracks_values_live():
    """The cache stores structure only — counts are read at query time."""
    store = MetricStore()
    _record_histogram(store, 1.0, {"0.1": 10.0, "1.0": 10.0, "+Inf": 10.0})
    query = "histogram_quantile(0.9, latency_bucket)"
    assert evaluate_scalar(store, query, at=1.0) == pytest.approx(0.09)
    # All new mass lands in the (0.1, 1.0] bucket: the quantile must move.
    _record_histogram(store, 2.0, {"0.1": 10.0, "1.0": 100.0, "+Inf": 100.0})
    moved = evaluate_scalar(store, query, at=2.0)
    assert moved is not None and moved > 0.5


def test_histogram_layout_cache_respects_staleness():
    store = MetricStore()
    _record_histogram(store, 1.0, {"0.1": 1.0, "+Inf": 2.0})
    query = "histogram_quantile(0.5, latency_bucket)"
    assert evaluate_scalar(store, query, at=1.0) is not None
    # Far past the staleness horizon the cached layout still exists, but
    # every bucket reads as no-data: the histogram drops out of the result.
    assert evaluate_scalar(store, query, at=1000.0) is None
