"""Tests for the streaming sliding-window aggregates."""

import math

from repro.metrics import MetricStore, SeriesKey, TimeSeries, evaluate_scalar
from repro.metrics import aggregate_cache_info
from repro.metrics.aggregate import (
    RANGE_REFERENCE,
    WindowState,
    disabled,
    range_value,
    rescan_value,
    resum_interval,
    state_for,
)

FUNCTIONS = sorted(RANGE_REFERENCE)


def _series(samples):
    series = TimeSeries(SeriesKey.make("m"))
    for timestamp, value in samples:
        series.append(timestamp, value)
    return series


def _assert_matches_rescan(series, window, at, exact=True):
    for function in FUNCTIONS:
        expected = rescan_value(series, function, window, at)
        got = range_value(series, function, window, at)
        if expected is None or got is None:
            assert got == expected, (function, got, expected)
        elif exact:
            assert got == expected, (function, got, expected)
        else:
            assert math.isclose(got, expected, rel_tol=1e-9), (function, got, expected)


def test_incremental_matches_rescan_on_growing_series():
    series = _series([(float(t), float(t * 3 % 17)) for t in range(50)])
    for at in (10.0, 25.0, 49.0):
        _assert_matches_rescan(series, 12.0, at)


def test_incremental_follows_appends_through_listener():
    series = _series([(0.0, 1.0)])
    state = state_for(series, 10.0)
    series.append(1.0, 4.0)
    series.append(2.0, 9.0)
    assert len(state.samples) == 3
    ok, value = state.value("sum_over_time", 2.0)
    assert ok and value == 14.0


def test_window_advance_evicts_and_stays_correct():
    series = _series([(float(t), float(t)) for t in range(20)])
    # First read seeds + advances the floor; subsequent reads slide it.
    _assert_matches_rescan(series, 5.0, 10.0)
    _assert_matches_rescan(series, 5.0, 15.0)
    _assert_matches_rescan(series, 5.0, 19.0)


def test_counter_reset_contribution():
    series = _series([(0.0, 10.0), (1.0, 20.0), (2.0, 3.0), (3.0, 8.0)])
    _assert_matches_rescan(series, 10.0, 3.0)


def test_backwards_query_falls_back_to_rescan():
    series = _series([(float(t), float(t)) for t in range(10)])
    before = aggregate_cache_info()["fallbacks"]
    _assert_matches_rescan(series, 4.0, 9.0)  # fast path
    _assert_matches_rescan(series, 4.0, 5.0)  # behind the newest sample
    assert aggregate_cache_info()["fallbacks"] > before


def test_widening_window_behind_floor_falls_back():
    series = _series([(float(t), float(t)) for t in range(20)])
    state = state_for(series, 5.0)
    assert state.value("sum_over_time", 19.0)[0]  # floor advances to 14
    # Now ask the same state-free API for an earlier instant: the 5s
    # window starting before the floor cannot be answered incrementally.
    assert state.value("sum_over_time", 15.0) == (False, None)
    _assert_matches_rescan(series, 5.0, 15.0)


def test_truncate_mirrors_drop_before():
    store = MetricStore(retention=10.0)
    for t in range(8):
        store.record("m", float(t), float(t))
    series = store.select("m")[0]
    state = state_for(series, 30.0)
    assert len(state.samples) == 8
    # Ingest far enough ahead that retention trims the old prefix.
    store.record("m", 99.0, 25.0)
    assert series.oldest_timestamp == 25.0
    assert len(state.samples) == 1
    ok, value = state.value("sum_over_time", 25.0)
    assert ok and value == 99.0


def test_eviction_dominating_pass_resums_exactly():
    series = _series([(float(t), float(t) * 0.1) for t in range(100)])
    state = state_for(series, 3.0)
    resums_before = state.resums
    # Advancing so only a handful of samples survive evicts >= remaining,
    # which forces a re-sum: the answer equals the reference bit-for-bit.
    _assert_matches_rescan(series, 3.0, 99.0)
    assert state.resums > resums_before


def test_resum_interval_one_is_always_exact():
    with resum_interval(1):
        series = _series([(float(t), math.sin(t) * 1e6) for t in range(64)])
        for at in (20.0, 33.0, 47.0, 63.0):
            _assert_matches_rescan(series, 13.0, at)


def test_default_interval_is_close_after_many_slides():
    series = _series([(float(t), math.cos(t) * 1e3) for t in range(256)])
    for at in range(20, 256, 7):
        _assert_matches_rescan(series, 16.0, float(at), exact=False)


def test_state_is_shared_per_series_window_pair():
    series = _series([(0.0, 1.0)])
    assert state_for(series, 10.0) is state_for(series, 10.0)
    assert state_for(series, 10.0) is not state_for(series, 20.0)


def test_query_results_identical_with_aggregates_disabled():
    store = MetricStore()
    for t in range(40):
        store.record("hits_total", float(t * 2), float(t), {"instance": "a"})
    query = "rate(hits_total[15s])"
    incremental = evaluate_scalar(store, query, 39.0)
    with disabled():
        reference = evaluate_scalar(store, query, 39.0)
    assert incremental == reference


def test_empty_window_reports_none():
    series = _series([(0.0, 1.0), (1.0, 2.0)])
    state = WindowState(series, 5.0)
    ok, value = state.value("sum_over_time", 100.0)
    assert ok and value is None
    ok, value = state.value("rate", 101.0)
    assert ok and value is None
