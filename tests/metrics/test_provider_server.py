"""Tests for the metrics server and the provider implementations."""

import pytest

from repro.clock import VirtualClock
from repro.httpcore import HttpClient
from repro.metrics import (
    HttpPrometheusProvider,
    LocalPrometheusProvider,
    MetricsServer,
    MetricStore,
    ProviderError,
    StaticProvider,
)


async def test_local_provider_queries_store():
    clock = VirtualClock(start=10.0)
    store = MetricStore()
    store.record("errors", 3.0, 9.0, {"instance": "search:80"})
    provider = LocalPrometheusProvider(store, clock=clock)
    assert await provider.query('errors{instance="search:80"}') == 3.0
    assert await provider.query("missing") is None


async def test_static_provider_scalar_and_sequence():
    provider = StaticProvider({"a": 1.0, "b": [1.0, 2.0], "c": None})
    assert await provider.query("a") == 1.0
    assert await provider.query("a") == 1.0
    assert await provider.query("b") == 1.0
    assert await provider.query("b") == 2.0
    assert await provider.query("b") == 2.0  # repeats last
    assert await provider.query("c") is None
    assert provider.query_log == ["a", "a", "b", "b", "b", "c"]
    with pytest.raises(ProviderError):
        await provider.query("unknown")


async def test_metrics_server_query_endpoint():
    clock = VirtualClock(start=50.0)
    server = MetricsServer(clock=clock)
    server.store.record("hits", 7.0, 49.0, {"instance": "a"})
    server.store.record("hits", 3.0, 49.0, {"instance": "b"})
    await server.start(scrape=False)
    try:
        async with HttpClient() as client:
            response = await client.get(
                f"http://{server.address}/api/v1/query?query=hits"
            )
            payload = response.json()
            assert payload["status"] == "success"
            assert payload["data"]["value"] == 10.0
            assert len(payload["data"]["vector"]) == 2
    finally:
        await server.stop()


async def test_metrics_server_query_requires_parameter():
    server = MetricsServer(clock=VirtualClock())
    await server.start(scrape=False)
    try:
        async with HttpClient() as client:
            response = await client.get(f"http://{server.address}/api/v1/query")
            assert response.status == 400
    finally:
        await server.stop()


async def test_metrics_server_rejects_bad_query():
    server = MetricsServer(clock=VirtualClock())
    await server.start(scrape=False)
    try:
        async with HttpClient() as client:
            response = await client.get(
                f"http://{server.address}/api/v1/query?query=rate%28m%29"
            )
            assert response.status == 400
            assert response.json()["status"] == "error"
    finally:
        await server.stop()


async def test_metrics_server_ingest_and_series():
    clock = VirtualClock(start=5.0)
    server = MetricsServer(clock=clock)
    await server.start(scrape=False)
    try:
        async with HttpClient() as client:
            response = await client.post(
                f"http://{server.address}/api/v1/ingest",
                json_body=[
                    {"name": "sales", "value": 12, "labels": {"version": "a"}},
                    {"name": "sales", "value": 8, "labels": {"version": "b"}},
                ],
            )
            assert response.json() == {"status": "success", "ingested": 2}
            response = await client.get(f"http://{server.address}/api/v1/series")
            assert response.json()["data"] == ["sales"]
            response = await client.get(
                f"http://{server.address}/api/v1/query?query=sum%28sales%29"
            )
            assert response.json()["data"]["value"] == 20.0
    finally:
        await server.stop()


async def test_metrics_server_ingest_validates_payload():
    server = MetricsServer(clock=VirtualClock())
    await server.start(scrape=False)
    try:
        async with HttpClient() as client:
            response = await client.post(
                f"http://{server.address}/api/v1/ingest", json_body={"not": "a list"}
            )
            assert response.status == 400
            response = await client.post(
                f"http://{server.address}/api/v1/ingest",
                json_body=[{"value": 1}],  # missing name
            )
            assert response.status == 400
    finally:
        await server.stop()


async def test_metrics_server_health():
    server = MetricsServer(clock=VirtualClock())
    await server.start(scrape=False)
    try:
        async with HttpClient() as client:
            response = await client.get(f"http://{server.address}/healthz")
            assert response.json()["status"] == "up"
    finally:
        await server.stop()


async def test_http_provider_end_to_end():
    clock = VirtualClock(start=100.0)
    server = MetricsServer(clock=clock)
    server.store.record("request_errors", 4.0, 99.0, {"instance": "search:80"})
    await server.start(scrape=False)
    provider = HttpPrometheusProvider(f"http://{server.address}")
    try:
        value = await provider.query('request_errors{instance="search:80"}')
        assert value == 4.0
        assert await provider.query("no_such_metric") is None
        with pytest.raises(ProviderError):
            await provider.query("rate(m)")  # 400 from server
    finally:
        await provider.close()
        await server.stop()


async def test_http_provider_unreachable_raises():
    provider = HttpPrometheusProvider("http://127.0.0.1:1")
    try:
        with pytest.raises(ProviderError):
            await provider.query("up")
    finally:
        await provider.close()


# -- atomic ingest ----------------------------------------------------------------


async def test_ingest_bad_sample_mid_batch_records_nothing():
    """A 400 batch is all-or-nothing: valid leading samples must not land."""
    clock = VirtualClock(start=5.0)
    server = MetricsServer(clock=clock)
    server.store.record("sales", 1.0, 1.0, {"version": "a"})
    generation = server.store.generation
    await server.start(scrape=False)
    try:
        async with HttpClient() as client:
            response = await client.post(
                f"http://{server.address}/api/v1/ingest",
                json_body=[
                    {"name": "sales", "value": 2.0, "labels": {"version": "a"}},
                    {"name": "sales", "value": "not-a-number"},
                    {"name": "sales", "value": 3.0, "labels": {"version": "a"}},
                ],
            )
            assert response.status == 400
            assert "bad sample" in response.json()["error"]
    finally:
        await server.stop()
    # The leading valid sample was not recorded behind the 400.
    assert server.store.generation == generation
    series = server.store.select("sales")[0]
    assert series.latest().value == 1.0


async def test_ingest_rejects_out_of_order_against_store_atomically():
    clock = VirtualClock(start=50.0)
    server = MetricsServer(clock=clock)
    server.store.record("m", 1.0, 40.0)
    await server.start(scrape=False)
    try:
        async with HttpClient() as client:
            response = await client.post(
                f"http://{server.address}/api/v1/ingest",
                json_body=[
                    {"name": "m", "value": 2.0, "timestamp": 45.0},
                    {"name": "m", "value": 3.0, "timestamp": 30.0},  # behind 45
                ],
            )
            assert response.status == 400
            assert "out-of-order" in response.json()["error"]
    finally:
        await server.stop()
    assert len(server.store.select("m")[0]) == 1  # neither sample landed


async def test_ingest_out_of_order_within_batch_same_series():
    """Ordering is validated against earlier samples in the same batch too."""
    server = MetricsServer(clock=VirtualClock(start=10.0))
    await server.start(scrape=False)
    try:
        async with HttpClient() as client:
            response = await client.post(
                f"http://{server.address}/api/v1/ingest",
                json_body=[
                    {"name": "fresh", "value": 1.0, "timestamp": 9.0},
                    {"name": "fresh", "value": 2.0, "timestamp": 8.0},
                ],
            )
            assert response.status == 400
    finally:
        await server.stop()
    assert server.store.select("fresh") == []


async def test_ingest_same_timestamp_is_accepted():
    """Non-decreasing, not strictly increasing: duplicates must pass."""
    server = MetricsServer(clock=VirtualClock(start=10.0))
    await server.start(scrape=False)
    try:
        async with HttpClient() as client:
            response = await client.post(
                f"http://{server.address}/api/v1/ingest",
                json_body=[
                    {"name": "m", "value": 1.0, "timestamp": 9.0},
                    {"name": "m", "value": 2.0, "timestamp": 9.0},
                ],
            )
            assert response.json() == {"status": "success", "ingested": 2}
    finally:
        await server.stop()
    assert len(server.store.select("m")[0]) == 2


# -- server-side query cache ------------------------------------------------------


class _CountingStore(MetricStore):
    """MetricStore that counts selector evaluations."""

    def __init__(self):
        super().__init__()
        self.select_calls = 0

    def select(self, name, matchers=None):
        self.select_calls += 1
        return super().select(name, matchers)


async def test_server_query_cache_collapses_identical_queries_per_tick():
    clock = VirtualClock(start=10.0)
    server = MetricsServer(clock=clock)
    server.store = _CountingStore()
    server.store.record("hits", 7.0, 9.0, {"instance": "a"})
    await server.start(scrape=False)
    try:
        async with HttpClient() as client:
            url = f"http://{server.address}/api/v1/query?query=hits"
            first = await client.get(url)
            calls_after_first = server.store.select_calls
            second = await client.get(url)
            # Same tick, unchanged store: the second response is served
            # from the rendered-body memo without touching the store.
            assert server.store.select_calls == calls_after_first
            assert second.json() == first.json()
            assert second.headers.get("Content-Type") == "application/json"
    finally:
        await server.stop()


async def test_server_query_cache_invalidated_by_mutation_and_tick():
    clock = VirtualClock(start=10.0)
    server = MetricsServer(clock=clock)
    server.store.record("hits", 1.0, 9.0)
    await server.start(scrape=False)
    try:
        async with HttpClient() as client:
            url = f"http://{server.address}/api/v1/query?query=hits"
            assert (await client.get(url)).json()["data"]["value"] == 1.0
            server.store.record("hits", 5.0, 10.0)  # same tick, store changed
            assert (await client.get(url)).json()["data"]["value"] == 5.0
            await clock.advance(400.0)  # past staleness: cache must not mask it
            assert (await client.get(url)).json()["data"]["value"] is None
    finally:
        await server.stop()


async def test_metrics_server_health_reports_cache_counters():
    clock = VirtualClock(start=50.0)
    server = MetricsServer(clock=clock)
    server.store.record("hits_total", 1.0, 49.0, {"instance": "a:80"})
    await server.start(scrape=False)
    try:
        async with HttpClient() as client:
            base = f"http://{server.address}"
            # Same query at the same tick: second hit lands in the memo.
            await client.get(f"{base}/api/v1/query?query=hits_total")
            await client.get(f"{base}/api/v1/query?query=hits_total")
            payload = (await client.get(f"{base}/healthz")).json()
            caches = payload["caches"]
            assert caches["query_memo"]["hits"] >= 1
            assert caches["query_memo"]["misses"] >= 1
            assert set(caches) == {
                "query_memo",
                "compiled_query",
                "histogram_layout",
                "evaluation_plan",
                "window_aggregates",
            }
            assert {"hits", "misses"} <= set(caches["histogram_layout"])
            assert "plan_shared_nodes" in payload
            assert "plan_evaluations_saved" in payload
    finally:
        await server.stop()


async def test_metrics_server_scrapes_own_cache_gauges():
    from repro.metrics import parse_exposition

    server = MetricsServer(clock=VirtualClock())
    await server.start(scrape=False)
    try:
        async with HttpClient() as client:
            response = await client.get(f"http://{server.address}/metrics")
            points = parse_exposition(response.body.decode())
            labelled = {
                (point.labels["cache"], point.labels["event"])
                for point in points
                if point.name == "metrics_cache_events_total"
            }
            assert ("query_memo", "hit") in labelled
            assert ("histogram_layout", "miss") in labelled
            assert ("compiled_query", "hit") in labelled
    finally:
        await server.stop()
