"""Tests for the metrics server and the provider implementations."""

import pytest

from repro.clock import VirtualClock
from repro.httpcore import HttpClient
from repro.metrics import (
    HttpPrometheusProvider,
    LocalPrometheusProvider,
    MetricsServer,
    MetricStore,
    ProviderError,
    StaticProvider,
)


async def test_local_provider_queries_store():
    clock = VirtualClock(start=10.0)
    store = MetricStore()
    store.record("errors", 3.0, 9.0, {"instance": "search:80"})
    provider = LocalPrometheusProvider(store, clock=clock)
    assert await provider.query('errors{instance="search:80"}') == 3.0
    assert await provider.query("missing") is None


async def test_static_provider_scalar_and_sequence():
    provider = StaticProvider({"a": 1.0, "b": [1.0, 2.0], "c": None})
    assert await provider.query("a") == 1.0
    assert await provider.query("a") == 1.0
    assert await provider.query("b") == 1.0
    assert await provider.query("b") == 2.0
    assert await provider.query("b") == 2.0  # repeats last
    assert await provider.query("c") is None
    assert provider.query_log == ["a", "a", "b", "b", "b", "c"]
    with pytest.raises(ProviderError):
        await provider.query("unknown")


async def test_metrics_server_query_endpoint():
    clock = VirtualClock(start=50.0)
    server = MetricsServer(clock=clock)
    server.store.record("hits", 7.0, 49.0, {"instance": "a"})
    server.store.record("hits", 3.0, 49.0, {"instance": "b"})
    await server.start(scrape=False)
    try:
        async with HttpClient() as client:
            response = await client.get(
                f"http://{server.address}/api/v1/query?query=hits"
            )
            payload = response.json()
            assert payload["status"] == "success"
            assert payload["data"]["value"] == 10.0
            assert len(payload["data"]["vector"]) == 2
    finally:
        await server.stop()


async def test_metrics_server_query_requires_parameter():
    server = MetricsServer(clock=VirtualClock())
    await server.start(scrape=False)
    try:
        async with HttpClient() as client:
            response = await client.get(f"http://{server.address}/api/v1/query")
            assert response.status == 400
    finally:
        await server.stop()


async def test_metrics_server_rejects_bad_query():
    server = MetricsServer(clock=VirtualClock())
    await server.start(scrape=False)
    try:
        async with HttpClient() as client:
            response = await client.get(
                f"http://{server.address}/api/v1/query?query=rate%28m%29"
            )
            assert response.status == 400
            assert response.json()["status"] == "error"
    finally:
        await server.stop()


async def test_metrics_server_ingest_and_series():
    clock = VirtualClock(start=5.0)
    server = MetricsServer(clock=clock)
    await server.start(scrape=False)
    try:
        async with HttpClient() as client:
            response = await client.post(
                f"http://{server.address}/api/v1/ingest",
                json_body=[
                    {"name": "sales", "value": 12, "labels": {"version": "a"}},
                    {"name": "sales", "value": 8, "labels": {"version": "b"}},
                ],
            )
            assert response.json() == {"status": "success", "ingested": 2}
            response = await client.get(f"http://{server.address}/api/v1/series")
            assert response.json()["data"] == ["sales"]
            response = await client.get(
                f"http://{server.address}/api/v1/query?query=sum%28sales%29"
            )
            assert response.json()["data"]["value"] == 20.0
    finally:
        await server.stop()


async def test_metrics_server_ingest_validates_payload():
    server = MetricsServer(clock=VirtualClock())
    await server.start(scrape=False)
    try:
        async with HttpClient() as client:
            response = await client.post(
                f"http://{server.address}/api/v1/ingest", json_body={"not": "a list"}
            )
            assert response.status == 400
            response = await client.post(
                f"http://{server.address}/api/v1/ingest",
                json_body=[{"value": 1}],  # missing name
            )
            assert response.status == 400
    finally:
        await server.stop()


async def test_metrics_server_health():
    server = MetricsServer(clock=VirtualClock())
    await server.start(scrape=False)
    try:
        async with HttpClient() as client:
            response = await client.get(f"http://{server.address}/healthz")
            assert response.json()["status"] == "up"
    finally:
        await server.stop()


async def test_http_provider_end_to_end():
    clock = VirtualClock(start=100.0)
    server = MetricsServer(clock=clock)
    server.store.record("request_errors", 4.0, 99.0, {"instance": "search:80"})
    await server.start(scrape=False)
    provider = HttpPrometheusProvider(f"http://{server.address}")
    try:
        value = await provider.query('request_errors{instance="search:80"}')
        assert value == 4.0
        assert await provider.query("no_such_metric") is None
        with pytest.raises(ProviderError):
            await provider.query("rate(m)")  # 400 from server
    finally:
        await provider.close()
        await server.stop()


async def test_http_provider_unreachable_raises():
    provider = HttpPrometheusProvider("http://127.0.0.1:1")
    try:
        with pytest.raises(ProviderError):
            await provider.query("up")
    finally:
        await provider.close()
