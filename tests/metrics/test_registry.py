"""Unit tests for counters, gauges, histograms, and the registry."""

import pytest

from repro.metrics import Registry


@pytest.fixture
def registry():
    return Registry()


def test_counter_increments(registry):
    counter = registry.counter("hits")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5


def test_counter_rejects_negative(registry):
    counter = registry.counter("hits")
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_counter_with_labels(registry):
    counter = registry.counter("http_requests", label_names=("code",))
    counter.labels(code="200").inc(3)
    counter.labels(code="500").inc()
    points = {tuple(p.labels.items()): p.value for p in counter.collect()}
    assert points == {(("code", "200"),): 3.0, (("code", "500"),): 1.0}


def test_labelled_metric_requires_labels_call(registry):
    counter = registry.counter("c", label_names=("x",))
    with pytest.raises(ValueError):
        counter.inc()


def test_labels_must_match_declared_names(registry):
    counter = registry.counter("c", label_names=("x",))
    with pytest.raises(ValueError):
        counter.labels(y="1")
    with pytest.raises(ValueError):
        counter.labels(x="1", y="2")


def test_labels_returns_same_child_for_same_values(registry):
    counter = registry.counter("c", label_names=("x",))
    assert counter.labels(x="1") is counter.labels(x="1")
    assert counter.labels(x="1") is not counter.labels(x="2")


def test_gauge_set_inc_dec(registry):
    gauge = registry.gauge("inflight")
    gauge.set(10)
    gauge.inc()
    gauge.dec(3)
    assert gauge.value == 8


def test_histogram_observe_and_collect(registry):
    histogram = registry.histogram("latency", buckets=(0.1, 1.0))
    for value in [0.05, 0.5, 0.7, 5.0]:
        histogram.observe(value)
    points = {(p.name, p.labels.get("le")): p.value for p in histogram.collect()}
    assert points[("latency_bucket", "0.1")] == 1.0
    assert points[("latency_bucket", "1")] == 3.0
    assert points[("latency_bucket", "+Inf")] == 4.0
    assert points[("latency_sum", None)] == pytest.approx(6.25)
    assert points[("latency_count", None)] == 4.0


def test_histogram_boundary_value_falls_in_bucket(registry):
    histogram = registry.histogram("h", buckets=(1.0,))
    histogram.observe(1.0)  # le="1" is cumulative <= 1.0
    points = {p.labels.get("le"): p.value for p in histogram.collect() if "bucket" in p.name}
    assert points["1"] == 1.0


def test_histogram_with_labels(registry):
    histogram = registry.histogram("h", label_names=("path",), buckets=(1.0,))
    histogram.labels(path="/a").observe(0.5)
    histogram.labels(path="/b").observe(2.0)
    counts = {
        p.labels["path"]: p.value
        for p in histogram.collect()
        if p.name == "h_count"
    }
    assert counts == {"/a": 1.0, "/b": 1.0}
    sums = {p.labels["path"]: p.value for p in histogram.collect() if p.name == "h_sum"}
    assert sums["/b"] == 2.0


def test_registry_rejects_duplicate_names(registry):
    registry.counter("dup")
    with pytest.raises(ValueError):
        registry.gauge("dup")


def test_registry_collect_combines_all_metrics(registry):
    registry.counter("a").inc()
    registry.gauge("b").set(2)
    names = {p.name for p in registry.collect()}
    assert names == {"a", "b"}
    assert len(registry) == 2


def test_registry_get(registry):
    counter = registry.counter("a")
    assert registry.get("a") is counter
    assert registry.get("missing") is None
