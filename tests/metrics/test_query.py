"""Unit tests for the mini query language (parser and evaluator)."""

import pytest

from repro.metrics import MetricStore, QueryError, evaluate, evaluate_scalar
from repro.metrics.query import (
    Aggregation,
    BinaryOp,
    FunctionCall,
    Scalar,
    Selector,
    parse,
)


# -- Parsing ------------------------------------------------------------------


def test_parse_bare_selector():
    node = parse("request_errors")
    assert isinstance(node, Selector)
    assert node.name == "request_errors"
    assert node.matchers == ()
    assert node.window is None


def test_parse_selector_with_matchers():
    node = parse('request_errors{instance="search:80", code!="200"}')
    assert isinstance(node, Selector)
    assert len(node.matchers) == 2
    assert node.matchers[0].label == "instance"
    assert node.matchers[0].op == "="
    assert node.matchers[0].value == "search:80"
    assert node.matchers[1].op == "!="


def test_parse_regex_matchers():
    node = parse('m{v=~"prod.*", w!~"x"}')
    assert node.matchers[0].op == "=~"
    assert node.matchers[1].op == "!~"


def test_parse_range_function():
    node = parse("rate(requests[30s])")
    assert isinstance(node, FunctionCall)
    assert node.function == "rate"
    assert node.argument.window == 30.0


def test_parse_duration_units():
    assert parse("rate(m[2m])").argument.window == 120.0
    assert parse("rate(m[1h])").argument.window == 3600.0
    assert parse("rate(m[1d])").argument.window == 86400.0


def test_parse_aggregation():
    node = parse("sum(rate(requests[30s]))")
    assert isinstance(node, Aggregation)
    assert node.op == "sum"
    assert isinstance(node.argument, FunctionCall)


def test_parse_arithmetic_with_precedence():
    node = parse("m + 2 * 3")
    assert isinstance(node, BinaryOp)
    assert node.op == "+"
    assert isinstance(node.right, BinaryOp)
    assert node.right.op == "*"


def test_parse_parentheses_override_precedence():
    node = parse("(m + 2) * 3")
    assert node.op == "*"
    assert isinstance(node.left, BinaryOp)


def test_parse_scalar():
    node = parse("42.5")
    assert isinstance(node, Scalar)
    assert node.value == 42.5


def test_parse_errors():
    for bad in [
        "",
        "rate(m)",  # range function without window
        "m{",  # unterminated matchers
        'm{a=}',  # missing value
        "m[30s]",  # bare range selector
        "m n",  # trailing input
        "sum(",  # unterminated call
        "m{a~\"x\"}",  # bad operator
        "@",  # bad character
    ]:
        with pytest.raises(QueryError):
            node = parse(bad)
            # bare range selectors only fail at evaluation
            evaluate(MetricStore(), node, at=0)


# -- Evaluation ----------------------------------------------------------------


@pytest.fixture
def store():
    store = MetricStore()
    for t in range(11):  # counter increasing by 2/s for 10s
        store.record("requests", 2.0 * t, float(t), {"instance": "a"})
        store.record("requests", 4.0 * t, float(t), {"instance": "b"})
    store.record("temperature", 21.0, 10.0, {"room": "lab"})
    return store


def test_evaluate_instant_selector(store):
    vector = evaluate(store, "requests", at=10.0)
    assert {tuple(s.labels.items()): s.value for s in vector} == {
        (("instance", "a"),): 20.0,
        (("instance", "b"),): 40.0,
    }


def test_evaluate_selector_with_matcher(store):
    vector = evaluate(store, 'requests{instance="a"}', at=10.0)
    assert len(vector) == 1
    assert vector[0].value == 20.0


def test_evaluate_scalar_sums_vector(store):
    assert evaluate_scalar(store, "requests", at=10.0) == 60.0


def test_evaluate_scalar_empty_vector_is_none(store):
    assert evaluate_scalar(store, "missing_metric", at=10.0) is None


def test_evaluate_rate(store):
    vector = evaluate(store, 'rate(requests{instance="a"}[10s])', at=10.0)
    assert len(vector) == 1
    assert vector[0].value == pytest.approx(2.0)


def test_evaluate_rate_handles_counter_reset():
    store = MetricStore()
    store.record("c", 10.0, 2.0)
    store.record("c", 20.0, 5.0)
    store.record("c", 3.0, 10.0)  # reset, then 3 more
    vector = evaluate(store, "rate(c[10s])", at=10.0)
    assert vector[0].value == pytest.approx((10.0 + 3.0) / 8.0)


def test_evaluate_increase(store):
    # Window (5, 10] holds samples at t=6..10; the increase over that
    # observed range (no Prometheus-style extrapolation) is 4*(10-6).
    vector = evaluate(store, 'increase(requests{instance="b"}[5s])', at=10.0)
    assert vector[0].value == pytest.approx(4.0 * 4)


def test_evaluate_rate_needs_two_samples():
    store = MetricStore()
    store.record("c", 1.0, 10.0)
    assert evaluate(store, "rate(c[30s])", at=10.0) == []


def test_evaluate_over_time_functions(store):
    # Window (6, 10] holds samples at t=7,8,9,10 -> values 14,16,18,20.
    at = 10.0
    assert evaluate_scalar(store, 'avg_over_time(requests{instance="a"}[4s])', at) == 17.0
    assert evaluate_scalar(store, 'max_over_time(requests{instance="a"}[4s])', at) == 20.0
    assert evaluate_scalar(store, 'min_over_time(requests{instance="a"}[4s])', at) == 14.0
    assert evaluate_scalar(store, 'sum_over_time(requests{instance="a"}[4s])', at) == 68.0
    assert evaluate_scalar(store, 'count_over_time(requests{instance="a"}[4s])', at) == 4.0


def test_evaluate_aggregations(store):
    at = 10.0
    assert evaluate_scalar(store, "sum(requests)", at) == 60.0
    assert evaluate_scalar(store, "avg(requests)", at) == 30.0
    assert evaluate_scalar(store, "min(requests)", at) == 20.0
    assert evaluate_scalar(store, "max(requests)", at) == 40.0
    assert evaluate_scalar(store, "count(requests)", at) == 2.0


def test_evaluate_aggregation_of_empty_vector(store):
    assert evaluate(store, "sum(nothing)", at=10.0) == []


def test_evaluate_scalar_arithmetic(store):
    assert evaluate_scalar(store, 'requests{instance="a"} * 2', at=10.0) == 40.0
    assert evaluate_scalar(store, '100 - temperature{room="lab"}', at=10.0) == 79.0
    assert evaluate_scalar(store, 'requests{instance="a"} / 4', at=10.0) == 5.0


def test_evaluate_division_by_zero_is_inf(store):
    assert evaluate_scalar(store, 'requests{instance="a"} / 0', at=10.0) == float("inf")


def test_evaluate_vector_vector_arithmetic_matches_labels(store):
    # requests{a} + requests{a} elementwise on identical label sets.
    vector = evaluate(store, "requests + requests", at=10.0)
    values = {s.labels["instance"]: s.value for s in vector}
    assert values == {"a": 40.0, "b": 80.0}


def test_evaluate_staleness_hides_old_samples(store):
    # Samples are at t<=10; at t=400 they are past the 300s staleness bound.
    assert evaluate(store, "requests", at=400.0) == []


def bucket_store(counts_by_bound, at=10.0, labels=None):
    store = MetricStore()
    for bound, count in counts_by_bound.items():
        merged = {"le": bound, **(labels or {})}
        store.record("latency_bucket", float(count), at, merged)
    return store


def test_histogram_quantile_interpolates_within_bucket():
    # 100 observations: 50 in (0, 0.1], 40 in (0.1, 0.5], 10 beyond.
    store = bucket_store({"0.1": 50, "0.5": 90, "+Inf": 100})
    median = evaluate_scalar(store, "histogram_quantile(0.5, latency_bucket)", 10.0)
    assert median == pytest.approx(0.1)  # rank 50 sits exactly at le=0.1
    p75 = evaluate_scalar(store, "histogram_quantile(0.75, latency_bucket)", 10.0)
    # rank 75: 25 of the 40 observations into (0.1, 0.5].
    assert p75 == pytest.approx(0.1 + 0.4 * 25 / 40)


def test_histogram_quantile_overflow_clamps_to_highest_finite_bound():
    store = bucket_store({"0.1": 10, "0.5": 20, "+Inf": 100})
    p99 = evaluate_scalar(store, "histogram_quantile(0.99, latency_bucket)", 10.0)
    assert p99 == pytest.approx(0.5)


def test_histogram_quantile_groups_by_instance():
    store = MetricStore()
    for instance, scale in (("a", 1), ("b", 10)):
        for bound, count in (("0.1", 50), ("0.5", 90), ("+Inf", 100)):
            store.record(
                "latency_bucket",
                float(count),
                10.0,
                {"le": bound, "instance": instance},
            )
    vector = evaluate(store, "histogram_quantile(0.5, latency_bucket)", 10.0)
    assert len(vector) == 2
    assert {s.labels["instance"] for s in vector} == {"a", "b"}
    # Per-instance selection works too.
    one = evaluate(
        store, 'histogram_quantile(0.5, latency_bucket{instance="a"})', 10.0
    )
    assert len(one) == 1


def test_histogram_quantile_empty_and_malformed():
    # No samples at all.
    assert evaluate(MetricStore(), "histogram_quantile(0.5, nothing)", 10.0) == []
    # Histogram without a +Inf bucket is skipped, not miscomputed.
    store = bucket_store({"0.5": 10})
    assert evaluate(store, "histogram_quantile(0.5, latency_bucket)", 10.0) == []
    # Zero observations.
    store = bucket_store({"0.5": 0, "+Inf": 0})
    assert evaluate(store, "histogram_quantile(0.5, latency_bucket)", 10.0) == []


def test_histogram_quantile_parse_errors():
    for bad in [
        "histogram_quantile(1.5, m)",  # quantile out of range
        "histogram_quantile(x, m)",  # non-numeric quantile
        "histogram_quantile(0.5, m[30s])",  # range selector
        "histogram_quantile(0.5)",  # missing selector
    ]:
        with pytest.raises(QueryError):
            parse(bad)


def test_histogram_quantile_real_registry_round_trip():
    """End to end with the Histogram metric type: observe -> scrape-shape
    points -> quantile query."""
    from repro.metrics import Registry

    registry = Registry()
    histogram = registry.histogram("resp", buckets=(0.05, 0.1, 0.25))
    for value in [0.01] * 60 + [0.08] * 30 + [0.2] * 10:
        histogram.observe(value)
    store = MetricStore()
    for point in registry.collect():
        store.record(point.name, point.value, 10.0, point.labels)
    p50 = evaluate_scalar(store, "histogram_quantile(0.5, resp_bucket)", 10.0)
    assert 0.0 < p50 <= 0.05  # 60% of observations are below 50ms
    p95 = evaluate_scalar(store, "histogram_quantile(0.95, resp_bucket)", 10.0)
    assert 0.1 < p95 <= 0.25


def test_evaluate_accepts_prebuilt_expression(store):
    node = parse("sum(requests)")
    assert evaluate_scalar(store, node, at=10.0) == 60.0
