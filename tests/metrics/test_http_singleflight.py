"""Single-flight batching of concurrent identical HTTP provider queries."""

import asyncio
import json

import pytest

from repro.metrics import HttpPrometheusProvider
from repro.metrics.provider import ProviderError


class FakeResponse:
    def __init__(self, payload, status=200):
        self.status = status
        self.body = json.dumps(payload)

    def json(self):
        return json.loads(self.body)


class CountingClient:
    """Stands in for HttpClient: counts requests, serves canned payloads."""

    def __init__(self, value=42.0, fail=False, delay=0.0):
        self.value = value
        self.fail = fail
        self.delay = delay
        self.requests = []

    async def get(self, url):
        self.requests.append(url)
        if self.delay:
            await asyncio.sleep(self.delay)
        else:
            await asyncio.sleep(0)  # force overlap between concurrent callers
        if self.fail:
            raise ConnectionError("backend down")
        return FakeResponse({"status": "success", "data": {"value": self.value}})

    async def close(self):
        pass


async def test_concurrent_identical_queries_coalesce_to_one_request():
    client = CountingClient()
    provider = HttpPrometheusProvider("http://metrics:9090", client=client)
    values = await asyncio.gather(*(provider.query("up_metric") for _ in range(10)))
    assert values == [42.0] * 10
    assert len(client.requests) == 1
    assert provider.coalesced == 9


async def test_distinct_queries_do_not_coalesce():
    client = CountingClient()
    provider = HttpPrometheusProvider("http://metrics:9090", client=client)
    await asyncio.gather(provider.query("a"), provider.query("b"))
    assert len(client.requests) == 2
    assert provider.coalesced == 0


async def test_sequential_queries_hit_the_backend_each_time():
    """Single-flight shares *in-flight* requests only — no stale caching."""
    client = CountingClient()
    provider = HttpPrometheusProvider("http://metrics:9090", client=client)
    await provider.query("m")
    await provider.query("m")
    assert len(client.requests) == 2


async def test_leader_failure_propagates_to_all_followers():
    client = CountingClient(fail=True)
    provider = HttpPrometheusProvider("http://metrics:9090", client=client)
    results = await asyncio.gather(
        *(provider.query("m") for _ in range(5)), return_exceptions=True
    )
    assert len(client.requests) == 1
    assert all(isinstance(result, ProviderError) for result in results)


async def test_failure_with_no_followers_does_not_warn(recwarn):
    client = CountingClient(fail=True)
    provider = HttpPrometheusProvider("http://metrics:9090", client=client)
    with pytest.raises(ProviderError):
        await provider.query("m")
    import gc

    gc.collect()
    assert not [w for w in recwarn if "never retrieved" in str(w.message)]
