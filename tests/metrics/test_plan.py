"""Tests for cross-check evaluation plans (interning + per-tick memo)."""

from repro.clock import VirtualClock
from repro.metrics import (
    EvaluationPlan,
    LocalPrometheusProvider,
    MetricStore,
    ShardedMetricStore,
    evaluate_scalar,
    planner_for,
)
from repro.metrics.compile import compile_query
from repro.metrics.plan import Planner, subscribe


def _populated(store=None):
    if store is None:
        store = MetricStore()
    for t in range(30):
        store.record("hits_total", float(t * 2), float(t), {"instance": "a"})
        store.record("errs_total", float(t), float(t), {"instance": "a"})
    return store


def test_structurally_equal_subtrees_intern_once():
    planner = Planner()
    planner.subscribe(compile_query("rate(hits_total[10s]) * 100"))
    planner.subscribe(compile_query("rate(hits_total[10s]) + 1"))
    shared = compile_query("rate(hits_total[10s])")
    node = planner._nodes[shared]
    assert node.uses == 2
    assert planner.shared_nodes >= 1


def test_subscribe_is_idempotent_per_root():
    planner = Planner()
    expression = compile_query("sum(rate(hits_total[10s]))")
    first = planner.subscribe(expression)
    again = planner.subscribe(compile_query("sum(rate(hits_total[10s]))"))
    assert first is again
    assert first.uses == 1


def test_shared_node_evaluates_once_per_tick():
    store = _populated()
    planner = Planner()
    queries = ["rate(hits_total[10s]) * 100", "rate(hits_total[10s]) - 1"]
    for query in queries:
        planner.subscribe(compile_query(query))
    misses_before = planner.node_misses
    results = [planner.evaluate_scalar(store, query, 29.0) for query in queries]
    # 5 distinct nodes exist (2 roots, 1 shared rate, 2 scalars); the
    # second root reuses the shared rate node from the memo.
    assert planner.node_hits >= 1
    assert planner.node_misses - misses_before <= 5
    for query, got in zip(queries, results):
        assert got == evaluate_scalar(store, query, 29.0)


def test_memo_invalidated_by_ingest():
    store = _populated()
    planner = planner_for(store)
    query = "rate(hits_total[10s])"
    first = planner.evaluate_scalar(store, query, 29.0)
    store.record("hits_total", 1000.0, 29.0, {"instance": "a"})
    second = planner.evaluate_scalar(store, query, 29.0)
    assert second != first
    assert second == evaluate_scalar(store, query, 29.0)


def test_sharded_memo_survives_unrelated_shard_ingest():
    store = _populated(ShardedMetricStore(shard_count=4))
    # Pick a name living in a different shard than hits_total.
    other = next(
        f"pad_total_{i}"
        for i in range(64)
        if store.shard_index(f"pad_total_{i}") != store.shard_index("hits_total")
    )
    planner = planner_for(store)
    query = "rate(hits_total[10s])"
    planner.evaluate_scalar(store, query, 29.0)
    hits_before = planner.node_hits
    store.record(other, 1.0, 29.0)
    planner.evaluate_scalar(store, query, 29.0)
    # The ingest touched a shard the expression never reads: pure memo hit.
    assert planner.node_hits > hits_before


def test_evaluation_plan_fans_out_shared_subexpressions():
    store = _populated()
    plan = EvaluationPlan(
        store,
        {
            "scaled": "rate(hits_total[10s]) * 100",
            "shifted": "rate(hits_total[10s]) + 1",
            "errors": "rate(errs_total[10s])",
        },
    )
    assert len(plan) == 3
    assert plan.shared_nodes >= 1
    results = plan.evaluate_all(29.0)
    assert set(results) == {"scaled", "shifted", "errors"}
    for name, query in (
        ("scaled", "rate(hits_total[10s]) * 100"),
        ("shifted", "rate(hits_total[10s]) + 1"),
        ("errors", "rate(errs_total[10s])"),
    ):
        assert results[name] == evaluate_scalar(store, query, 29.0)
    assert plan.evaluations_saved >= 1


def test_planner_for_is_one_per_store():
    store_a, store_b = MetricStore(), MetricStore()
    assert planner_for(store_a) is planner_for(store_a)
    assert planner_for(store_a) is not planner_for(store_b)


def test_subscribe_warms_window_aggregates():
    store = _populated()
    subscribe(store, "sum(rate(hits_total[10s]))")
    series = store.select("hits_total")[0]
    assert series.aggregates is not None
    assert 10.0 in series.aggregates


def test_provider_routes_through_shared_plan():
    clock = VirtualClock(start=29.0)
    store = _populated()
    provider = LocalPrometheusProvider(store, clock=clock)
    provider.subscribe("rate(hits_total[10s]) * 100")
    planner = planner_for(store)
    roots_before = planner.cache_info()["roots"]
    assert roots_before >= 1


def test_malformed_subscription_is_ignored():
    store = MetricStore()
    provider = LocalPrometheusProvider(store, clock=VirtualClock())
    provider.subscribe("not a ((( query")  # must not raise
