"""Unit tests for time series and series keys."""

import pytest

from repro.metrics import SeriesKey, TimeSeries


def make_series(samples):
    series = TimeSeries(SeriesKey.make("m"))
    for timestamp, value in samples:
        series.append(timestamp, value)
    return series


def test_series_key_identity_ignores_label_order():
    a = SeriesKey.make("m", {"x": "1", "y": "2"})
    b = SeriesKey.make("m", {"y": "2", "x": "1"})
    assert a == b
    assert hash(a) == hash(b)


def test_series_key_str_rendering():
    assert str(SeriesKey.make("up")) == "up"
    assert str(SeriesKey.make("up", {"job": "api"})) == 'up{job="api"}'


def test_append_and_len():
    series = make_series([(1, 10), (2, 20)])
    assert len(series) == 2


def test_append_rejects_out_of_order():
    series = make_series([(5, 1)])
    with pytest.raises(ValueError):
        series.append(4, 2)


def test_append_allows_equal_timestamps():
    series = make_series([(5, 1), (5, 2)])
    assert len(series) == 2


def test_latest():
    assert make_series([]).latest() is None
    latest = make_series([(1, 10), (3, 30)]).latest()
    assert latest.timestamp == 3
    assert latest.value == 30


def test_at_returns_newest_at_or_before():
    series = make_series([(1, 10), (3, 30), (5, 50)])
    assert series.at(3).value == 30
    assert series.at(4).value == 30
    assert series.at(0.5) is None
    assert series.at(100).value == 50


def test_at_respects_staleness():
    series = make_series([(1, 10)])
    assert series.at(100, staleness=10) is None
    assert series.at(10, staleness=10).value == 10


def test_window_is_half_open():
    series = make_series([(1, 10), (2, 20), (3, 30), (4, 40)])
    window = series.window(1, 3)  # start exclusive, end inclusive
    assert [(s.timestamp, s.value) for s in window] == [(2, 20), (3, 30)]


def test_window_empty_range():
    series = make_series([(1, 10)])
    assert series.window(5, 10) == []


def test_drop_before():
    series = make_series([(1, 10), (2, 20), (3, 30)])
    dropped = series.drop_before(2)
    assert dropped == 1
    assert len(series) == 2
    assert series.at(2).value == 20
    assert series.drop_before(0) == 0
