"""Unit tests for the metric store and label matchers."""

import pytest

from repro.metrics import LabelMatcher, MetricStore, SeriesKey


def test_record_creates_series_on_first_sight():
    store = MetricStore()
    store.record("requests", 1.0, timestamp=1.0, labels={"instance": "a"})
    assert len(store) == 1
    series = store.series(SeriesKey.make("requests", {"instance": "a"}))
    assert series is not None
    assert series.latest().value == 1.0


def test_record_appends_to_existing_series():
    store = MetricStore()
    store.record("m", 1.0, 1.0)
    store.record("m", 2.0, 2.0)
    assert len(store) == 1
    assert len(store.series(SeriesKey.make("m"))) == 2


def test_distinct_labels_create_distinct_series():
    store = MetricStore()
    store.record("m", 1.0, 1.0, {"v": "a"})
    store.record("m", 2.0, 1.0, {"v": "b"})
    assert len(store) == 2


def test_select_by_name():
    store = MetricStore()
    store.record("a", 1.0, 1.0)
    store.record("b", 1.0, 1.0)
    assert len(store.select("a")) == 1
    assert store.select("missing") == []


def test_select_with_equality_matcher():
    store = MetricStore()
    store.record("m", 1.0, 1.0, {"instance": "search:80"})
    store.record("m", 2.0, 1.0, {"instance": "product:80"})
    matched = store.select("m", [LabelMatcher("instance", "=", "search:80")])
    assert len(matched) == 1
    assert matched[0].key.label_dict()["instance"] == "search:80"


def test_select_with_negation_and_regex_matchers():
    store = MetricStore()
    store.record("m", 1.0, 1.0, {"v": "product_a"})
    store.record("m", 2.0, 1.0, {"v": "product_b"})
    store.record("m", 3.0, 1.0, {"v": "search"})
    assert len(store.select("m", [LabelMatcher("v", "!=", "search")])) == 2
    assert len(store.select("m", [LabelMatcher("v", "=~", "product_.*")])) == 2
    assert len(store.select("m", [LabelMatcher("v", "!~", "product_.*")])) == 1


def test_regex_matcher_is_anchored():
    store = MetricStore()
    store.record("m", 1.0, 1.0, {"v": "xproduct"})
    assert store.select("m", [LabelMatcher("v", "=~", "product")]) == []


def test_matcher_on_absent_label_compares_empty_string():
    store = MetricStore()
    store.record("m", 1.0, 1.0)
    assert len(store.select("m", [LabelMatcher("v", "=", "")])) == 1
    assert store.select("m", [LabelMatcher("v", "=", "x")]) == []


def test_bad_matcher_op_rejected():
    with pytest.raises(ValueError):
        LabelMatcher("a", "==", "b")


def test_retention_drops_old_samples():
    store = MetricStore(retention=10.0)
    store.record("m", 1.0, 0.0)
    store.record("m", 2.0, 5.0)
    store.record("m", 3.0, 20.0)  # triggers drop of t=0 and t=5
    series = store.series(SeriesKey.make("m"))
    assert len(series) == 1
    assert series.latest().timestamp == 20.0


def test_names_and_clear():
    store = MetricStore()
    store.record("a", 1.0, 1.0)
    store.record("b", 1.0, 1.0)
    assert store.names() == {"a", "b"}
    store.clear()
    assert len(store) == 0
