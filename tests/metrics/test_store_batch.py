"""Tests for batched ingest (``record_batch``) on both store shapes."""

import pytest

from repro.metrics import LabelMatcher, MetricStore, SeriesKey, ShardedMetricStore


def _snapshot(store):
    return {
        str(key): list(zip(*series.window_arrays(float("-inf"), float("inf"))))
        for key, series in (
            (series.key, series)
            for name in store.names()
            for series in store.select(name)
        )
    }


BATCH = [
    ("hits_total", 1.0, 10.0, {"instance": "a"}),
    ("hits_total", 2.0, 11.0, {"instance": "a"}),
    ("hits_total", 5.0, 10.0, {"instance": "b"}),
    ("errs_total", 0.0, 10.0, None),
]


def test_batch_equals_per_point_ingest():
    batched, pointwise = MetricStore(), MetricStore()
    assert batched.record_batch(BATCH) == len(BATCH)
    for name, value, timestamp, labels in BATCH:
        pointwise.record(name, value, timestamp, labels)
    assert _snapshot(batched) == _snapshot(pointwise)
    assert batched.series_generation == pointwise.series_generation


def test_batch_bumps_generation_once():
    store = MetricStore()
    before = store.generation
    store.record_batch(BATCH)
    assert store.generation == before + 1
    assert store.record_batch([]) == 0
    assert store.generation == before + 1


def test_batch_invalidates_selector_cache_for_new_series():
    store = MetricStore()
    store.record("hits_total", 1.0, 1.0, {"instance": "a"})
    matcher = [LabelMatcher("instance", "=", "b")]
    assert store.select("hits_total", matcher) == []
    store.record_batch([("hits_total", 2.0, 2.0, {"instance": "b"})])
    assert len(store.select("hits_total", matcher)) == 1


def test_out_of_order_mid_batch_aborts_whole_batch():
    store = MetricStore()
    store.record("hits_total", 1.0, 50.0, {"instance": "a"})
    generation = store.generation
    bad = [
        ("errs_total", 1.0, 60.0, None),  # would create a series
        ("hits_total", 2.0, 40.0, {"instance": "a"}),  # behind the floor
    ]
    with pytest.raises(ValueError):
        store.record_batch(bad)
    assert store.generation == generation
    assert store.names() == {"hits_total"}
    assert len(store.select("hits_total")[0]) == 1


def test_in_batch_ordering_violation_detected():
    store = MetricStore()
    with pytest.raises(ValueError):
        store.record_batch(
            [("m", 1.0, 10.0, None), ("m", 2.0, 9.0, None)]
        )
    assert len(store) == 0


def test_equal_timestamps_in_batch_are_allowed():
    store = MetricStore()
    assert store.record_batch([("m", 1.0, 5.0, None), ("m", 2.0, 5.0, None)]) == 2


def test_batch_applies_retention():
    store = MetricStore(retention=10.0)
    store.record_batch(
        [("m", float(t), float(t), None) for t in range(0, 40, 5)]
    )
    series = store.select("m")[0]
    assert series.oldest_timestamp >= 25.0


def test_sharded_batch_equals_monolithic_batch():
    sharded = ShardedMetricStore(shard_count=4)
    flat = MetricStore()
    batch = [
        (f"metric_{i}_total", float(i), float(i % 7), {"instance": f"i{i % 3}"})
        for i in range(40)
    ]
    assert sharded.record_batch(batch) == flat.record_batch(batch) == 40
    assert _snapshot(sharded) == _snapshot(flat)


def test_sharded_batch_atomic_across_shards():
    store = ShardedMetricStore(shard_count=4)
    store.record("hits_total", 1.0, 50.0, None)
    # Find a name owned by a different shard and poison its sample; the
    # hits_total shard must stay untouched even though its slice is valid.
    other = next(
        f"pad_total_{i}"
        for i in range(64)
        if store.shard_index(f"pad_total_{i}") != store.shard_index("hits_total")
    )
    generations = [shard.generation for shard in store.shards]
    with pytest.raises(ValueError):
        store.record_batch(
            [
                ("hits_total", 2.0, 51.0, None),
                (other, 1.0, 60.0, None),
                ("hits_total", 3.0, 40.0, None),  # behind the floor
            ]
        )
    assert [shard.generation for shard in store.shards] == generations
    assert store.names() == {"hits_total"}
    assert store.series(SeriesKey.make("hits_total")).latest().timestamp == 50.0
