"""DSL surface for the onProviderError exception-check policy."""

import pytest

from repro.core import ExceptionCheck, ProviderErrorPolicy
from repro.dsl import DslError, compile_document, serialize

DOC = """
strategy:
  name: guarded-canary
  phases:
    - phase:
        name: canary
        routes:
          - route:
              from: search
              to: canary
              filters:
                - traffic:
                    percentage: 10
        checks:
          - metric:
              name: guard
              type: exception
              fallback: rollback
              onProviderError: {policy}
              provider: prometheus
              query: error_rate
              validator: "<5"
              intervalTime: 1
              intervalLimit: 10
        next: done
    - final:
        name: done
    - final:
        name: rollback
        rollback: true
deployment:
  services:
    search:
      proxy: 127.0.0.1:9000
      stable: stable
      versions:
        stable: 127.0.0.1:8081
        canary: 127.0.0.1:8082
"""


def compile_with(policy):
    return compile_document(DOC.format(policy=policy))


def guard_check(compiled):
    state = compiled.strategy.automaton.state("canary")
    (check,) = state.checks
    assert isinstance(check, ExceptionCheck)
    return check


def test_compiles_each_policy():
    assert guard_check(compile_with("trigger")).on_provider_error == ProviderErrorPolicy()
    assert guard_check(compile_with("hold")).on_provider_error == ProviderErrorPolicy(
        mode="hold"
    )
    assert guard_check(
        compile_with("tolerate(4)")
    ).on_provider_error == ProviderErrorPolicy(mode="tolerate", tolerance=4)


def test_default_policy_is_trigger():
    source = DOC.replace("              onProviderError: {policy}\n", "")
    compiled = compile_document(source)
    assert guard_check(compiled).on_provider_error == ProviderErrorPolicy()


def test_bad_policy_value_is_a_dsl_error():
    with pytest.raises(DslError, match="onProviderError"):
        compile_with("whenever")


def test_policy_on_basic_check_is_rejected():
    source = compile_bad_basic_doc()
    with pytest.raises(DslError, match="exception checks"):
        compile_document(source)


def compile_bad_basic_doc():
    return (
        DOC.format(policy="hold")
        .replace("              type: exception\n", "")
        .replace("              fallback: rollback\n", "")
    )


def test_serializer_round_trips_the_policy():
    compiled = compile_with("tolerate(2)")
    text = serialize(compiled.strategy, compiled.deployment)
    assert "tolerate(2)" in text
    recompiled = compile_document(text)
    assert guard_check(recompiled).on_provider_error == ProviderErrorPolicy(
        mode="tolerate", tolerance=2
    )


def test_serializer_omits_the_default_policy():
    compiled = compile_with("trigger")
    text = serialize(compiled.strategy, compiled.deployment)
    assert "onProviderError" not in text
    assert guard_check(compile_document(text)).on_provider_error == ProviderErrorPolicy()
