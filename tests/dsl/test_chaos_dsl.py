"""The ``chaos:`` DSL section: compilation, validation, round-trips."""

import pytest

from repro.dsl import DslError, compile_document
from repro.dsl.serializer import serialize, to_document

BASE = """
strategy:
  name: demo
  phases:
    - phase:
        name: canary
        duration: 30
        routes:
          - route:
              from: search
              to: v2
              filters:
                - traffic:
                    percentage: 10
        checks:
          - metric:
              name: errors_ok
              provider: prometheus
              query: errors_total
              validator: "< 50"
              intervalTime: 5
              intervalLimit: 3
              threshold: 2
        next: done
        onFailure: rollback
    - final:
        name: done
    - final:
        name: rollback
        rollback: true
        routes:
          - route:
              from: search
              to: v1
              filters:
                - traffic:
                    percentage: 100
deployment:
  services:
    search:
      proxy: 127.0.0.1:9000
      stable: v1
      versions:
        v1: 127.0.0.1:8081
        v2: 127.0.0.1:8082
"""

CHAOS = """
chaos:
  name: brownout
  seed: 7
  faults:
    - fault:
        name: metrics-outage
        target: provider:prometheus
        mode: error
        rate: 0.4
        during: [canary]
    - fault:
        name: slow-upstream
        target: upstream:search
        mode: latency
        latency: 1.5
        during: [canary]
  steadyState:
    - metric:
        name: steady_errors
        provider: prometheus
        query: errors_total
        validator: "< 50"
        intervalTime: 4
        intervalLimit: 2
        threshold: 1
"""


def test_document_without_chaos_compiles_to_none():
    assert compile_document(BASE).chaos is None


def test_chaos_section_compiles():
    compiled = compile_document(BASE + CHAOS)
    campaign = compiled.chaos
    assert campaign is not None
    assert campaign.name == "brownout"
    assert campaign.seed == 7
    assert [spec.name for spec in campaign.specs] == [
        "metrics-outage",
        "slow-upstream",
    ]
    outage = campaign.specs[0]
    assert outage.target == "provider:prometheus"
    assert outage.mode == "error"
    assert outage.rate == 0.4
    assert outage.phases == ("canary",)
    assert [check.name for check in campaign.steady_state] == ["steady_errors"]


def test_chaos_round_trips_through_serializer():
    compiled = compile_document(BASE + CHAOS)
    text = serialize(compiled.strategy, compiled.deployment, compiled.chaos)
    again = compile_document(text)
    assert again.chaos.name == compiled.chaos.name
    assert again.chaos.seed == compiled.chaos.seed
    assert again.chaos.specs == compiled.chaos.specs  # frozen dataclasses
    assert [c.name for c in again.chaos.steady_state] == [
        c.name for c in compiled.chaos.steady_state
    ]


def test_serializer_omits_chaos_when_absent():
    compiled = compile_document(BASE)
    document = to_document(compiled.strategy, compiled.deployment)
    assert "chaos" not in document


def test_chaos_name_defaults_to_strategy_name():
    document = CHAOS.replace("  name: brownout\n", "")
    campaign = compile_document(BASE + document).chaos
    assert campaign.name == "demo-chaos"


def test_during_resolves_rollout_expansions():
    rollout_doc = """
strategy:
  name: staged
  phases:
    - rollout:
        name: ramp
        from: search
        to: v2
        startPercentage: 10
        stepPercentage: 40
        targetPercentage: 50
        intervalTime: 10
        next: done
    - final:
        name: done
deployment:
  services:
    search:
      proxy: 127.0.0.1:9000
      stable: v1
      versions:
        v1: 127.0.0.1:8081
        v2: 127.0.0.1:8082
chaos:
  faults:
    - fault:
        target: provider:prometheus
        during: [ramp]
  steadyState:
    - metric:
        name: steady
        provider: prometheus
        query: errors_total
        validator: "< 50"
        intervalTime: 2
        intervalLimit: 2
        threshold: 1
"""
    campaign = compile_document(rollout_doc).chaos
    # 'ramp' expands to every rollout step, not just the first.
    assert campaign.specs[0].phases == ("ramp-10", "ramp-50")


@pytest.mark.parametrize(
    "mutation, match",
    [
        (("during: [canary]", "during: [warp]"), "unknown phase"),
        (("target: provider:prometheus", "target: widget:x"), "unknown fault target"),
        (("mode: error", "mode: explode"), "unknown mode"),
        (("rate: 0.4", "rate: 1.4"), "rate"),
    ],
)
def test_bad_chaos_sections_raise(mutation, match):
    old, new = mutation
    with pytest.raises(DslError, match=match):
        compile_document(BASE + CHAOS.replace(old, new))


def test_missing_during_raises():
    broken = CHAOS.replace("        during: [canary]\n", "", 1)
    with pytest.raises(DslError, match="during"):
        compile_document(BASE + broken)


def test_missing_steady_state_raises():
    broken = BASE + CHAOS.split("  steadyState:")[0]
    with pytest.raises(DslError, match="steady-state"):
        compile_document(broken)


def test_unknown_chaos_keys_rejected():
    with pytest.raises(DslError, match="unknown"):
        compile_document(BASE + CHAOS + "  blastRadius: 3\n")
