"""Tests for the from-scratch YAML-subset parser."""

import pytest

from repro.dsl import YamlError, dumps, loads


# -- scalars --------------------------------------------------------------------


@pytest.mark.parametrize(
    "text,expected",
    [
        ("42", 42),
        ("-7", -7),
        ("3.14", 3.14),
        ("1e3", 1000.0),
        ("2.5e2", 250.0),
        ("true", True),
        ("True", True),
        ("false", False),
        ("null", None),
        ("~", None),
        ("hello", "hello"),
        ("'quoted string'", "quoted string"),
        ('"double"', "double"),
        ('"with \\"escape\\""', 'with "escape"'),
        ('"line\\nbreak"', "line\nbreak"),
        ("[1, 2, 3]", [1, 2, 3]),
        ("[a, true, 1.5]", ["a", True, 1.5]),
        ("[]", []),
    ],
)
def test_scalar_parsing(text, expected):
    assert loads(text) == expected


def test_empty_document_is_none():
    assert loads("") is None
    assert loads("\n\n# only comments\n") is None


# -- mappings -------------------------------------------------------------------


def test_flat_mapping():
    assert loads("a: 1\nb: two\n") == {"a": 1, "b": "two"}


def test_nested_mapping():
    text = """
root:
  child: 1
  deeper:
    leaf: true
other: x
"""
    assert loads(text) == {
        "root": {"child": 1, "deeper": {"leaf": True}},
        "other": "x",
    }


def test_key_with_empty_value_is_none():
    assert loads("key:\nnext: 1") == {"key": None, "next": 1}


def test_duplicate_keys_rejected():
    with pytest.raises(YamlError):
        loads("a: 1\na: 2\n")


def test_value_containing_colon():
    assert loads('query: request_errors{instance="search:80"}') == {
        "query": 'request_errors{instance="search:80"}'
    }


def test_quoted_value_with_colon_space():
    assert loads('v: "a: b"') == {"v": "a: b"}


# -- sequences -------------------------------------------------------------------


def test_sequence_of_scalars():
    assert loads("- 1\n- two\n- true\n") == [1, "two", True]


def test_sequence_under_key():
    text = """
items:
  - a
  - b
"""
    assert loads(text) == {"items": ["a", "b"]}


def test_sequence_at_same_indent_as_key():
    # YAML allows "key:\n- item" without extra indentation.
    assert loads("items:\n- a\n- b\n") == {"items": ["a", "b"]}


def test_sequence_of_mappings():
    text = """
phases:
  - phase:
      name: canary
      duration: 60
  - phase:
      name: rollout
"""
    assert loads(text) == {
        "phases": [
            {"phase": {"name": "canary", "duration": 60}},
            {"phase": {"name": "rollout"}},
        ]
    }


def test_sequence_item_inline_mapping_with_continuation():
    text = """
- name: one
  value: 1
- name: two
  value: 2
"""
    assert loads(text) == [
        {"name": "one", "value": 1},
        {"name": "two", "value": 2},
    ]


def test_dash_alone_with_nested_block():
    text = """
-
  a: 1
- scalar
"""
    assert loads(text) == [{"a": 1}, "scalar"]


def test_dash_alone_without_block_is_none():
    assert loads("- \n- x\n".replace("- \n", "-\n")) == [None, "x"]


def test_paper_listing_1_shape():
    text = """
- metric:
    providers:
      - prometheus:
          name: search_error
          query: request_errors{instance="search:80"}
    intervalTime: 5
    intervalLimit: 12
    threshold: 12
    validator: "<5"
"""
    document = loads(text)
    metric = document[0]["metric"]
    assert metric["intervalTime"] == 5
    assert metric["validator"] == "<5"
    assert metric["providers"][0]["prometheus"]["name"] == "search_error"


# -- comments and formatting -----------------------------------------------------


def test_comments_stripped():
    text = """
# leading comment
a: 1  # trailing comment
b: "not # a comment"
"""
    assert loads(text) == {"a": 1, "b": "not # a comment"}


def test_document_start_marker_tolerated():
    assert loads("---\na: 1\n") == {"a": 1}


def test_tabs_in_indentation_rejected():
    with pytest.raises(YamlError):
        loads("a:\n\tb: 1\n")


def test_unsupported_features_rejected():
    for bad in ["a: &anchor 1", "a: |", "*alias"]:
        with pytest.raises(YamlError):
            loads(bad)


def test_bad_indentation_rejected():
    with pytest.raises(YamlError):
        loads("a: 1\n    b: 2\n")


def test_unterminated_quote_rejected():
    with pytest.raises(YamlError):
        loads('a: "unterminated')


def test_error_carries_line_number():
    try:
        loads("ok: 1\nbad: &x 1\n")
    except YamlError as exc:
        assert exc.line == 2
    else:
        pytest.fail("expected YamlError")


# -- dumps round trip ----------------------------------------------------------


@pytest.mark.parametrize(
    "value",
    [
        {"a": 1, "b": "two", "c": [1, 2], "d": {"e": True, "f": None}},
        [{"x": 1}, {"y": [1, "z"]}],
        {"quoted": "needs: quoting", "number-like": "42", "empty": "", "bool-like": "true"},
        {"validator": "<5", "query": 'errors{instance="s:80"}'},
        {"nested": {"deep": {"deeper": [{"a": 1}]}}},
        {"empty_list": [], "empty_map": {}},
        "plain scalar",
        None,
        3.5,
    ],
)
def test_dumps_loads_round_trip(value):
    assert loads(dumps(value)) == value
