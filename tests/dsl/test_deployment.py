"""Tests for the DSL deployment section."""

import pytest

from repro.dsl import DslError, loads, parse_deployment

VALID = """
services:
  search:
    proxy: 127.0.0.1:7001
    stable: search
    versions:
      search: 127.0.0.1:9001
      fastSearch: 127.0.0.1:9002
  product:
    proxy: 127.0.0.1:7002
    versions:
      product: 127.0.0.1:9003
"""


def test_parse_valid_deployment():
    deployment = parse_deployment(loads(VALID))
    search = deployment.service("search")
    assert search.proxy == "127.0.0.1:7001"
    assert search.stable == "search"
    assert search.endpoint("fastSearch") == "127.0.0.1:9002"
    assert deployment.proxies() == {
        "search": "127.0.0.1:7001",
        "product": "127.0.0.1:7002",
    }


def test_stable_defaults_to_first_version():
    deployment = parse_deployment(loads(VALID))
    assert deployment.service("product").stable == "product"


def test_unknown_service_and_version_lookups_raise():
    deployment = parse_deployment(loads(VALID))
    with pytest.raises(DslError):
        deployment.service("ghost")
    with pytest.raises(DslError):
        deployment.service("search").endpoint("ghost")


def test_rejects_empty_services():
    with pytest.raises(DslError):
        parse_deployment({"services": {}})


def test_rejects_service_without_versions():
    with pytest.raises(DslError):
        parse_deployment(
            {"services": {"s": {"proxy": "h:1", "versions": {}}}}
        )


def test_rejects_service_without_proxy():
    with pytest.raises(DslError):
        parse_deployment({"services": {"s": {"versions": {"v": "h:1"}}}})


def test_rejects_stable_not_in_versions():
    with pytest.raises(DslError):
        parse_deployment(
            {
                "services": {
                    "s": {"proxy": "h:1", "stable": "ghost", "versions": {"v": "h:2"}}
                }
            }
        )


def test_rejects_unknown_keys():
    with pytest.raises(DslError) as exc_info:
        parse_deployment(
            {
                "services": {
                    "s": {"proxy": "h:1", "verison": {}, "versions": {"v": "h:2"}}
                }
            }
        )
    assert "verison" in str(exc_info.value)


def test_rejects_non_mapping():
    with pytest.raises(DslError):
        parse_deployment(["not", "a", "mapping"])
