"""Tests for the DSL → model compiler."""

import asyncio

import pytest

from repro.clock import VirtualClock
from repro.core import (
    BasicCheck,
    Engine,
    ExceptionCheck,
    ExecutionStatus,
    FilterKind,
)
from repro.dsl import DslError, compile_document
from repro.metrics import StaticProvider

DEPLOYMENT = """
deployment:
  services:
    search:
      proxy: 127.0.0.1:7001
      stable: search
      versions:
        search: 127.0.0.1:9001
        fastSearch: 127.0.0.1:9002
"""

CANARY_DOC = (
    """
strategy:
  name: canary-test
  phases:
    - phase:
        name: canary
        routes:
          - route:
              from: search
              to: fastSearch
              filters:
                - traffic:
                    percentage: 5
        checks:
          - metric:
              name: search_error
              provider: static
              query: request_errors
              intervalTime: 5
              intervalLimit: 12
              threshold: 12
              validator: "<5"
        next: done
        onFailure: rollback
    - final:
        name: done
        routes:
          - route:
              from: search
              to: fastSearch
              filters:
                - traffic:
                    percentage: 100
    - final:
        name: rollback
        rollback: true
        routes:
          - route:
              from: search
              to: search
              filters:
                - traffic:
                    percentage: 100
"""
    + DEPLOYMENT
)


def test_compile_canary_document_structure():
    compiled = compile_document(CANARY_DOC)
    strategy = compiled.strategy
    automaton = strategy.automaton
    assert strategy.name == "canary-test"
    assert automaton.start == "canary"
    assert automaton.final_states == {"done", "rollback"}
    assert automaton.state("rollback").rollback

    canary = automaton.state("canary")
    assert len(canary.checks) == 1
    check = canary.checks[0]
    assert isinstance(check, BasicCheck)
    assert check.timer.interval == 5
    assert check.timer.repetitions == 12
    assert check.output.map(12) == 1
    assert check.output.map(11) == 0

    config = canary.routing["search"]
    shares = {split.version: split.percentage for split in config.splits}
    assert shares == {"search": 95.0, "fastSearch": 5.0}
    # All basic checks pass -> weighted outcome 1 > 0.5 -> done.
    assert canary.transitions.next_state(1) == "done"
    assert canary.transitions.next_state(0) == "rollback"


def test_compile_full_route_to_non_stable_version():
    compiled = compile_document(CANARY_DOC)
    done = compiled.strategy.automaton.state("done")
    # The stable version's empty share is dropped entirely.
    shares = {s.version: s.percentage for s in done.routing["search"].splits}
    assert shares == {"fastSearch": 100.0}


async def test_compiled_strategy_enacts():
    compiled = compile_document(CANARY_DOC)
    clock = VirtualClock()
    engine = Engine(clock=clock)
    engine.register_provider("static", StaticProvider({"request_errors": 1.0}))
    execution_id = engine.enact(compiled.strategy)
    await asyncio.sleep(0)
    await clock.advance(60)
    report = await engine.wait(execution_id)
    assert report.status is ExecutionStatus.COMPLETED
    assert report.path == ["canary", "done"]


async def test_compiled_strategy_rolls_back_on_bad_metrics():
    compiled = compile_document(CANARY_DOC)
    clock = VirtualClock()
    engine = Engine(clock=clock)
    engine.register_provider("static", StaticProvider({"request_errors": 50.0}))
    execution_id = engine.enact(compiled.strategy)
    await asyncio.sleep(0)
    await clock.advance(60)
    report = await engine.wait(execution_id)
    assert report.status is ExecutionStatus.ROLLED_BACK


DARK_LAUNCH_DOC = (
    """
strategy:
  name: dark-launch
  phases:
    - phase:
        name: shadow
        routes:
          - route:
              from: search
              to: fastSearch
              filters:
                - traffic:
                    percentage: 100
                    shadow: true
                    intervalTime: 60
        next: done
    - final:
        name: done
"""
    + DEPLOYMENT
)


def test_compile_dark_launch_listing_2():
    compiled = compile_document(DARK_LAUNCH_DOC)
    shadow = compiled.strategy.automaton.state("shadow")
    config = shadow.routing["search"]
    # Live traffic untouched: 100% stays on stable.
    assert {s.version: s.percentage for s in config.splits} == {"search": 100.0}
    assert len(config.shadows) == 1
    assert config.shadows[0].source_version == "search"
    assert config.shadows[0].target_version == "fastSearch"
    assert config.shadows[0].percentage == 100.0
    # Filter intervalTime becomes the phase duration.
    assert shadow.duration == 60.0
    assert shadow.transitions.next_state(0) == "done"


ROLLOUT_DOC = (
    """
strategy:
  name: gradual
  phases:
    - rollout:
        name: ramp
        from: search
        to: fastSearch
        startPercentage: 5
        stepPercentage: 5
        targetPercentage: 100
        intervalTime: 10
        next: done
    - final:
        name: done
"""
    + DEPLOYMENT
)


def test_compile_rollout_expands_to_twenty_states():
    # Paper section 5.1.2: 5% steps to 100% every 10s = 20 states.
    compiled = compile_document(ROLLOUT_DOC)
    automaton = compiled.strategy.automaton
    ramp_states = [name for name in automaton.states if name.startswith("ramp-")]
    assert len(ramp_states) == 20
    assert automaton.start == "ramp-5"
    assert automaton.state("ramp-5").transitions.next_state(0) == "ramp-10"
    assert automaton.state("ramp-100").transitions.next_state(0) == "done"
    assert automaton.state("ramp-5").duration == 10.0
    # Final ramp step routes 100% to the new version.
    shares = {
        s.version: s.percentage
        for s in automaton.state("ramp-100").routing["search"].splits
    }
    assert shares == {"fastSearch": 100.0}
    # Intermediate step splits correctly.
    shares = {
        s.version: s.percentage
        for s in automaton.state("ramp-35").routing["search"].splits
    }
    assert shares == {"search": 65.0, "fastSearch": 35.0}


def test_phase_can_target_rollout_by_name():
    """`next: <rollout name>` resolves to the rollout's first state."""
    document = (
        """
strategy:
  name: aliased
  phases:
    - phase:
        name: warm-up
        duration: 1
        routes:
          - route:
              from: search
              to: fastSearch
              filters:
                - traffic:
                    percentage: 1
        next: ramp
    - rollout:
        name: ramp
        from: search
        to: fastSearch
        startPercentage: 50
        stepPercentage: 50
        targetPercentage: 100
        intervalTime: 1
        next: done
    - final:
        name: done
"""
        + DEPLOYMENT
    )
    compiled = compile_document(document)
    warm_up = compiled.strategy.automaton.state("warm-up")
    assert warm_up.transitions.next_state(0) == "ramp-50"


async def test_rollout_enacts_in_sequence():
    compiled = compile_document(ROLLOUT_DOC)
    clock = VirtualClock()
    engine = Engine(clock=clock)
    execution_id = engine.enact(compiled.strategy)
    await asyncio.sleep(0)
    await clock.advance(200)
    report = await engine.wait(execution_id)
    assert report.status is ExecutionStatus.COMPLETED
    assert len(report.path) == 21
    assert report.duration == 200.0


AB_DOC = (
    """
strategy:
  name: ab
  phases:
    - phase:
        name: ab-test
        routes:
          - route:
              from: search
              to: fastSearch
              filter_type: cookie
              filters:
                - traffic:
                    percentage: 50
                    sticky: true
                    intervalTime: 30
        next: done
    - final:
        name: done
"""
    + DEPLOYMENT
)


def test_compile_ab_test_sticky_cookie():
    compiled = compile_document(AB_DOC)
    config = compiled.strategy.automaton.state("ab-test").routing["search"]
    assert config.sticky
    assert config.filter_kind is FilterKind.COOKIE
    assert {s.version: s.percentage for s in config.splits} == {
        "search": 50.0,
        "fastSearch": 50.0,
    }


EXCEPTION_DOC = (
    """
strategy:
  name: guarded
  phases:
    - phase:
        name: canary
        duration: 20
        routes:
          - route:
              from: search
              to: fastSearch
              filters:
                - traffic:
                    percentage: 1
        checks:
          - metric:
              name: guard
              provider: static
              query: error_rate
              intervalTime: 2
              intervalLimit: 10
              validator: "<100"
              type: exception
              fallback: rollback
        next: done
    - final:
        name: done
    - final:
        name: rollback
        rollback: true
"""
    + DEPLOYMENT
)


def test_compile_exception_check():
    compiled = compile_document(EXCEPTION_DOC)
    canary = compiled.strategy.automaton.state("canary")
    check = canary.checks[0]
    assert isinstance(check, ExceptionCheck)
    assert check.fallback_state == "rollback"
    assert canary.weights == [0.0]
    # With only exception checks, 'next' is unconditional.
    assert canary.transitions.next_state(0) == "done"
    assert canary.transitions.next_state(10) == "done"


HEADER_DOC = (
    """
strategy:
  name: header-routed
  phases:
    - phase:
        name: split
        duration: 10
        routes:
          - route:
              from: search
              to: fastSearch
              filter_type: header
              header: X-Test-Group
              filters:
                - traffic:
                    percentage: 10
        next: done
    - final:
        name: done
"""
    + DEPLOYMENT
)


def test_compile_header_filter():
    compiled = compile_document(HEADER_DOC)
    config = compiled.strategy.automaton.state("split").routing["search"]
    assert config.filter_kind is FilterKind.HEADER
    assert config.header_name == "X-Test-Group"


LISTING1_DOC = (
    """
strategy:
  name: listing1
  phases:
    - phase:
        name: canary
        duration: 5
        routes:
          - route:
              from: search
              to: fastSearch
              filters:
                - traffic:
                    percentage: 5
        checks:
          - metric:
              name: search_error
              providers:
                - prometheus:
                    name: search_error
                    query: request_errors{instance="search:80"}
                - health:
                    name: availability
                    query: 127.0.0.1:9001
              subject: search_error
              intervalTime: 5
              intervalLimit: 12
              threshold: 12
              validator: "<5"
        next: done
        onFailure: rollback
    - final:
        name: done
    - final:
        name: rollback
        rollback: true
"""
    + DEPLOYMENT
)


def test_compile_listing1_providers_list():
    compiled = compile_document(LISTING1_DOC)
    check = compiled.strategy.automaton.state("canary").checks[0]
    queries = {q.name: q for q in check.condition.queries}
    assert queries["search_error"].provider == "prometheus"
    assert queries["search_error"].query == 'request_errors{instance="search:80"}'
    assert queries["availability"].provider == "health"
    assert check.condition.subject == "search_error"


FULL_MODEL_DOC = (
    """
strategy:
  name: full-model
  phases:
    - phase:
        name: monitored
        duration: 10
        routes:
          - route:
              from: search
              to: fastSearch
              filters:
                - traffic:
                    percentage: 5
        checks:
          - metric:
              name: response-time
              query: response_time
              intervalTime: 1
              intervalLimit: 100
              validator: "<150"
              thresholds: [75, 95]
              outcomes: [-5, 4, 5]
        transitions:
          thresholds: [3, 4]
          targets: [rollback, monitored, done]
    - final:
        name: done
    - final:
        name: rollback
        rollback: true
"""
    + DEPLOYMENT
)


def test_compile_full_model_outcome_mapping():
    compiled = compile_document(FULL_MODEL_DOC)
    state = compiled.strategy.automaton.state("monitored")
    check = state.checks[0]
    assert check.output.map(60) == -5
    assert check.output.map(80) == 4
    assert check.output.map(100) == 5
    # Figure-2 style three-way transition.
    assert state.transitions.next_state(-5) == "rollback"
    assert state.transitions.next_state(4) == "monitored"
    assert state.transitions.next_state(5) == "done"


def test_full_model_check_requires_explicit_transitions():
    bad = FULL_MODEL_DOC.replace(
        """        transitions:
          thresholds: [3, 4]
          targets: [rollback, monitored, done]""",
        """        next: done
        onFailure: rollback""",
    )
    with pytest.raises(DslError) as exc_info:
        compile_document(bad)
    assert "transitions" in str(exc_info.value)


def test_providers_and_query_are_mutually_exclusive():
    bad = LISTING1_DOC.replace(
        "              providers:",
        "              query: somequery\n              providers:",
    )
    with pytest.raises(DslError):
        compile_document(bad)


def test_thresholds_and_threshold_are_mutually_exclusive():
    bad = FULL_MODEL_DOC.replace(
        "              thresholds: [75, 95]",
        "              threshold: 50\n              thresholds: [75, 95]",
    )
    with pytest.raises(DslError):
        compile_document(bad)


def test_thresholds_without_outcomes_rejected():
    bad = FULL_MODEL_DOC.replace("              outcomes: [-5, 4, 5]\n", "")
    with pytest.raises(DslError):
        compile_document(bad)


AB_COMPARE_DOC = (
    """
strategy:
  name: ab-decided
  phases:
    - phase:
        name: ab-test
        routes:
          - route:
              from: search
              to: fastSearch
              filters:
                - traffic:
                    percentage: 50
                    sticky: true
        checks:
          - metric:
              name: sales-comparison
              providers:
                - prometheus:
                    name: sales_new
                    query: sales_total{instance="fastSearch"}
                - prometheus:
                    name: sales_old
                    query: sales_total{instance="search"}
              compare: sales_new > sales_old
              intervalTime: 60
              intervalLimit: 1
        next: rollout-new
        onFailure: keep-old
    - final:
        name: rollout-new
    - final:
        name: keep-old
        rollback: true
"""
    + DEPLOYMENT
)


def test_compile_ab_comparison_check():
    compiled = compile_document(AB_COMPARE_DOC)
    check = compiled.strategy.automaton.state("ab-test").checks[0]
    assert check.condition.comparison is not None
    assert check.condition.comparison.left == "sales_new"
    assert check.condition.comparison.op == ">"
    assert check.condition.comparison.right == "sales_old"


async def test_ab_comparison_drives_the_decision():
    from repro.clock import VirtualClock
    from repro.metrics import StaticProvider

    compiled = compile_document(AB_COMPARE_DOC)
    for winner_value, expected_final in ((10.0, "rollout-new"), (1.0, "keep-old")):
        clock = VirtualClock()
        engine = Engine(clock=clock)
        engine.register_provider(
            "prometheus",
            StaticProvider(
                {
                    'sales_total{instance="fastSearch"}': winner_value,
                    'sales_total{instance="search"}': 5.0,
                }
            ),
        )
        execution_id = engine.enact(compiled.strategy)
        import asyncio

        await asyncio.sleep(0)
        await clock.advance(60)
        report = await engine.wait(execution_id)
        assert report.path[-1] == expected_final


def test_compare_requires_providers_list():
    bad = AB_COMPARE_DOC.replace(
        """              providers:
                - prometheus:
                    name: sales_new
                    query: sales_total{instance="fastSearch"}
                - prometheus:
                    name: sales_old
                    query: sales_total{instance="search"}
""",
        "              query: sales_total\n",
    )
    with pytest.raises(DslError):
        compile_document(bad)


def test_compare_and_validator_mutually_exclusive():
    bad = AB_COMPARE_DOC.replace(
        "              compare: sales_new > sales_old",
        '              compare: sales_new > sales_old\n              validator: "<5"',
    )
    with pytest.raises(DslError):
        compile_document(bad)


def test_compare_references_must_be_query_names():
    bad = AB_COMPARE_DOC.replace(
        "              compare: sales_new > sales_old",
        "              compare: sales_new > ghost",
    )
    with pytest.raises(DslError):
        compile_document(bad)


def test_compare_expression_syntax_errors():
    bad = AB_COMPARE_DOC.replace(
        "              compare: sales_new > sales_old",
        "              compare: sales_new >>> sales_old",
    )
    with pytest.raises(DslError):
        compile_document(bad)


# -- error cases ------------------------------------------------------------------


def doc(strategy_phases: str) -> str:
    return (
        "strategy:\n  name: bad\n  phases:\n" + strategy_phases + DEPLOYMENT
    )


def test_error_unknown_phase_kind():
    with pytest.raises(DslError) as exc_info:
        compile_document(doc("    - mystery:\n        name: x\n"))
    assert "mystery" in str(exc_info.value)


def test_error_phase_without_next_or_transitions():
    with pytest.raises(DslError):
        compile_document(doc("    - phase:\n        name: x\n        duration: 1\n"))


def test_error_unknown_route_version():
    bad = """
    - phase:
        name: x
        duration: 1
        routes:
          - route:
              from: search
              to: ghost
              filters:
                - traffic:
                    percentage: 5
        next: done
    - final:
        name: done
"""
    with pytest.raises(DslError) as exc_info:
        compile_document(doc(bad))
    assert "ghost" in str(exc_info.value)


def test_error_overrouted_traffic():
    bad = """
    - phase:
        name: x
        duration: 1
        routes:
          - route:
              from: search
              to: fastSearch
              filters:
                - traffic:
                    percentage: 80
                - traffic:
                    percentage: 30
        next: done
    - final:
        name: done
"""
    with pytest.raises(DslError) as exc_info:
        compile_document(doc(bad))
    assert "110" in str(exc_info.value)


def test_error_checks_without_on_failure():
    bad = """
    - phase:
        name: x
        checks:
          - metric:
              name: m
              query: q
              intervalTime: 1
              intervalLimit: 2
              validator: "<5"
        next: done
    - final:
        name: done
"""
    with pytest.raises(DslError) as exc_info:
        compile_document(doc(bad))
    assert "onFailure" in str(exc_info.value)


def test_error_exception_check_without_fallback():
    bad = """
    - phase:
        name: x
        duration: 5
        checks:
          - metric:
              name: m
              query: q
              intervalTime: 1
              intervalLimit: 2
              validator: "<5"
              type: exception
        next: done
    - final:
        name: done
"""
    with pytest.raises(DslError) as exc_info:
        compile_document(doc(bad))
    assert "fallback" in str(exc_info.value)


def test_error_bad_validator_reports_path():
    bad = """
    - phase:
        name: x
        checks:
          - metric:
              name: m
              query: q
              intervalTime: 1
              intervalLimit: 2
              validator: "approximately five"
        next: done
        onFailure: done
    - final:
        name: done
"""
    with pytest.raises(DslError) as exc_info:
        compile_document(doc(bad))
    assert "metric" in str(exc_info.value)


def test_error_transition_to_unknown_state():
    with pytest.raises(DslError):
        compile_document(
            doc("    - phase:\n        name: x\n        duration: 1\n        next: ghost\n")
        )


def test_error_unknown_keys_caught():
    with pytest.raises(DslError) as exc_info:
        compile_document(
            doc(
                "    - phase:\n        name: x\n        duraton: 1\n        next: done\n"
                "    - final:\n        name: done\n"
            )
        )
    assert "duraton" in str(exc_info.value)


def test_error_missing_deployment():
    with pytest.raises(DslError):
        compile_document("strategy:\n  name: x\n  phases:\n    - final:\n        name: d\n")


def test_error_both_next_and_transitions():
    bad = """
    - phase:
        name: x
        duration: 1
        next: done
        transitions:
          thresholds: [0]
          targets: [done, done]
    - final:
        name: done
"""
    with pytest.raises(DslError):
        compile_document(doc(bad))


def test_rollout_bounds_validation():
    bad = """
    - rollout:
        name: r
        from: search
        to: fastSearch
        startPercentage: 50
        stepPercentage: -5
        targetPercentage: 100
        intervalTime: 1
        next: done
    - final:
        name: done
"""
    with pytest.raises(DslError):
        compile_document(doc(bad))
