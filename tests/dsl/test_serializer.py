"""Tests for model → DSL serialization (round trip with the compiler)."""

import pytest

from repro.core import (
    ExceptionCheck,
    MetricCondition,
    MetricQuery,
    OutputMapping,
    StrategyBuilder,
    Timer,
    ab_split,
    canary_split,
    simple_basic_check,
    single_version,
)
from repro.core.checks import BasicCheck
from repro.dsl import (
    DeployedService,
    Deployment,
    DslError,
    compile_document,
    loads,
    serialize,
    to_document,
)


def make_deployment() -> Deployment:
    deployment = Deployment()
    deployment.services["search"] = DeployedService(
        name="search",
        proxy="127.0.0.1:7001",
        stable="search",
        versions={"search": "127.0.0.1:9001", "fastSearch": "127.0.0.1:9002"},
    )
    return deployment


def make_strategy():
    builder = StrategyBuilder("round-trip")
    builder.service(
        "search", {"search": "127.0.0.1:9001", "fastSearch": "127.0.0.1:9002"}
    )
    builder.state("canary").route(
        "search", canary_split("search", "fastSearch", 5.0)
    ).check(
        simple_basic_check("errors", "request_errors", "<5", 5, 12)
    ).check(
        ExceptionCheck(
            "guard",
            MetricCondition.simple("error_rate", "<100"),
            Timer(2, 30),
            fallback_state="rollback",
        )
    ).transitions([0.5], ["rollback", "ab"])
    builder.state("ab").route("search", ab_split("search", "fastSearch")).dwell(
        30
    ).goto("done")
    builder.state("done").route("search", single_version("fastSearch")).final()
    builder.state("rollback").route("search", single_version("search")).final(
        rollback=True
    )
    return builder.build()


def test_serialize_produces_parseable_yaml():
    text = serialize(make_strategy(), make_deployment())
    document = loads(text)
    assert document["strategy"]["name"] == "round-trip"
    assert "deployment" in document


def test_round_trip_preserves_automaton_structure():
    original = make_strategy()
    text = serialize(original, make_deployment())
    compiled = compile_document(text)
    restored = compiled.strategy.automaton
    assert set(restored.states) == set(original.automaton.states)
    assert restored.start == original.automaton.start
    assert restored.final_states == original.automaton.final_states
    canary = restored.state("canary")
    assert len(canary.checks) == 2
    basic = next(c for c in canary.checks if isinstance(c, BasicCheck))
    assert basic.timer == Timer(5, 12)
    assert basic.output.map(12) == 1
    guard = next(c for c in canary.checks if isinstance(c, ExceptionCheck))
    assert guard.fallback_state == "rollback"
    assert canary.transitions.next_state(1) == "ab"
    assert canary.transitions.next_state(0) == "rollback"


def test_round_trip_preserves_routing():
    original = make_strategy()
    compiled = compile_document(serialize(original, make_deployment()))
    canary_config = compiled.strategy.automaton.state("canary").routing["search"]
    shares = {s.version: s.percentage for s in canary_config.splits}
    assert shares == {"search": 95.0, "fastSearch": 5.0}
    ab_config = compiled.strategy.automaton.state("ab").routing["search"]
    assert ab_config.sticky


def test_round_trip_preserves_rollback_flag():
    compiled = compile_document(serialize(make_strategy(), make_deployment()))
    assert compiled.strategy.automaton.state("rollback").rollback


def test_serialize_rejects_custom_predicates():
    builder = StrategyBuilder("custom")
    builder.service("svc", {"a": "h:1"})
    builder.state("s").route("svc", single_version("a")).check(
        BasicCheck(
            "custom",
            MetricCondition(
                queries=(MetricQuery("x", "q"),), predicate=lambda values: True
            ),
            Timer(1, 1),
            OutputMapping.boolean(1),
        )
    ).transitions([0.5], ["s", "done"])
    builder.state("done").final()
    strategy = builder.build()
    deployment = Deployment()
    deployment.services["svc"] = DeployedService("svc", "h:9", "a", {"a": "h:1"})
    with pytest.raises(DslError):
        serialize(strategy, deployment)


def test_full_model_output_mapping_round_trips():
    """Multi-threshold outcome maps serialize via thresholds/outcomes."""
    builder = StrategyBuilder("fancy")
    builder.service("svc", {"a": "h:1"})
    builder.state("s").route("svc", single_version("a")).check(
        BasicCheck(
            "fancy",
            MetricCondition.simple("q", "<5"),
            Timer(1, 100),
            OutputMapping.from_pairs([75, 95], [-5, 4, 5]),
        )
    ).transitions([3], ["s", "done"])
    builder.state("done").final()
    strategy = builder.build()
    deployment = Deployment()
    deployment.services["svc"] = DeployedService("svc", "h:9", "a", {"a": "h:1"})
    compiled = compile_document(serialize(strategy, deployment))
    check = compiled.strategy.automaton.state("s").checks[0]
    assert check.output.ranges.thresholds == (75.0, 95.0)
    assert check.output.results == (-5, 4, 5)
    assert check.output.map(80) == 4


def test_multi_query_condition_round_trips():
    """Listing-1 providers-list conditions serialize and recompile."""
    builder = StrategyBuilder("multi")
    builder.service("svc", {"a": "h:1"})
    builder.state("s").route("svc", single_version("a")).check(
        BasicCheck(
            "combo",
            MetricCondition(
                queries=(
                    MetricQuery("resp", "response_time", "prometheus"),
                    MetricQuery("avail", "h:1", "health"),
                ),
                validator=MetricCondition.simple("x", "<150").validator,
                subject="resp",
            ),
            Timer(1, 3),
            OutputMapping.boolean(3),
        )
    ).transitions([0.5], ["s", "done"])
    builder.state("done").final()
    strategy = builder.build()
    deployment = Deployment()
    deployment.services["svc"] = DeployedService("svc", "h:9", "a", {"a": "h:1"})
    compiled = compile_document(serialize(strategy, deployment))
    check = compiled.strategy.automaton.state("s").checks[0]
    assert len(check.condition.queries) == 2
    assert check.condition.subject == "resp"
    assert {q.provider for q in check.condition.queries} == {"prometheus", "health"}


def test_comparison_check_round_trips():
    from repro.core import Comparison

    builder = StrategyBuilder("compared")
    builder.service("svc", {"a": "h:1"})
    builder.state("s").route("svc", single_version("a")).check(
        BasicCheck(
            "sales",
            MetricCondition(
                queries=(
                    MetricQuery("left", "sales_a", "prometheus"),
                    MetricQuery("right", "sales_b", "prometheus"),
                ),
                comparison=Comparison("left", ">", "right"),
            ),
            Timer(60, 1),
            OutputMapping.boolean(1),
        )
    ).transitions([0.5], ["s", "done"])
    builder.state("done").final()
    strategy = builder.build()
    deployment = Deployment()
    deployment.services["svc"] = DeployedService("svc", "h:9", "a", {"a": "h:1"})
    compiled = compile_document(serialize(strategy, deployment))
    check = compiled.strategy.automaton.state("s").checks[0]
    assert check.condition.comparison == Comparison("left", ">", "right")


def test_to_document_shape():
    document = to_document(make_strategy(), make_deployment())
    phases = document["strategy"]["phases"]
    kinds = [next(iter(p)) for p in phases]
    assert kinds.count("final") == 2
    assert kinds.count("phase") == 2
    assert phases[0]["phase"]["name"] == "canary"  # start state first
