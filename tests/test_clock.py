"""Tests for the real and virtual clocks."""

import asyncio

import pytest

from repro.clock import RealClock, VirtualClock


def test_real_clock_is_monotonic():
    clock = RealClock()
    first = clock.now()
    second = clock.now()
    assert second >= first


async def test_real_clock_sleep_yields():
    clock = RealClock()
    before = clock.now()
    await clock.sleep(0.01)
    assert clock.now() - before >= 0.005


async def test_virtual_clock_starts_at_zero():
    assert VirtualClock().now() == 0.0
    assert VirtualClock(start=100.0).now() == 100.0


async def test_virtual_sleep_blocks_until_advanced():
    clock = VirtualClock()
    done = []

    async def sleeper():
        await clock.sleep(10)
        done.append(clock.now())

    task = asyncio.ensure_future(sleeper())
    await asyncio.sleep(0)
    assert not done
    await clock.advance(9.99)
    assert not done
    await clock.advance(0.01)
    assert done == [10.0]
    await task


async def test_virtual_advance_wakes_in_deadline_order():
    clock = VirtualClock()
    order = []

    async def sleeper(name, duration):
        await clock.sleep(duration)
        order.append(name)

    tasks = [
        asyncio.ensure_future(sleeper("late", 3)),
        asyncio.ensure_future(sleeper("early", 1)),
        asyncio.ensure_future(sleeper("middle", 2)),
    ]
    await asyncio.sleep(0)
    await clock.advance(5)
    await asyncio.gather(*tasks)
    assert order == ["early", "middle", "late"]


async def test_virtual_sleep_zero_or_negative_returns_immediately():
    clock = VirtualClock()
    await clock.sleep(0)
    await clock.sleep(-1)
    assert clock.now() == 0.0


async def test_virtual_advance_negative_raises():
    clock = VirtualClock()
    with pytest.raises(ValueError):
        await clock.advance(-1)


async def test_virtual_repeating_timer_pattern():
    """A periodic task rescheduling itself fires once per interval."""
    clock = VirtualClock()
    fired = []

    async def periodic():
        while True:
            await clock.sleep(5)
            fired.append(clock.now())

    task = asyncio.ensure_future(periodic())
    await asyncio.sleep(0)
    await clock.advance(20)
    task.cancel()
    assert fired == [5.0, 10.0, 15.0, 20.0]


async def test_pending_sleepers_count():
    clock = VirtualClock()
    task = asyncio.ensure_future(clock.sleep(5))
    await asyncio.sleep(0)
    assert clock.pending_sleepers == 1
    await clock.advance(5)
    assert clock.pending_sleepers == 0
    await task


async def test_virtual_advance_partial_then_rest():
    clock = VirtualClock()
    woken = []

    async def sleeper():
        await clock.sleep(4)
        woken.append(True)

    task = asyncio.ensure_future(sleeper())
    await asyncio.sleep(0)
    await clock.advance(2)
    assert clock.now() == 2.0
    assert not woken
    await clock.advance(2)
    assert clock.now() == 4.0
    assert woken
    await task
