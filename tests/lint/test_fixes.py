"""The autofix engine (lint/fixes.py)."""

from pathlib import Path

import pytest

from repro.dsl import compile_document, serialize
from repro.lint import fix_path, fix_text, lint_text

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples").glob("*.yaml")
)

BASE = """\
strategy:
  name: demo
  phases:
    - phase:
        name: canary
        duration: 30
        routes:
          - route:
              from: search
              to: v2
              filters:
                - traffic:
                    percentage: 10
        checks:
          - metric:
              name: errors_ok
              provider: prometheus
              query: errors_total
              validator: "< 50"
              intervalTime: 5
              intervalLimit: 3
              threshold: 2
        next: done
        onFailure: rollback
    - final:
        name: done
    - final:
        name: rollback
        rollback: true
        routes:
          - route:
              from: search
              to: v1
              filters:
                - traffic:
                    percentage: 100
deployment:
  services:
    search:
      proxy: 127.0.0.1:9000
      stable: v1
      versions:
        v1: 127.0.0.1:8081
        v2: 127.0.0.1:8082
"""


def codes(text):
    return {d.code for d in lint_text(text).diagnostics}


# -- BF105: sort/dedup thresholds --------------------------------------------


def test_fix_sorts_unsorted_thresholds():
    doc = BASE.replace(
        "        next: done\n        onFailure: rollback\n",
        "        transitions:\n"
        "          thresholds: [5, 3]\n"
        "          targets: [rollback, canary, done]\n",
    )
    assert "BF105" in codes(doc)
    result = fix_text(doc)
    assert "thresholds: [3, 5]" in result.text
    assert "BF105" not in codes(result.text)
    assert any(e.code == "BF105" for e in result.edits)


def test_fix_dedups_thresholds_and_drops_empty_range_target():
    doc = BASE.replace(
        "        next: done\n        onFailure: rollback\n",
        "        transitions:\n"
        "          thresholds: [3, 3]\n"
        "          targets: [rollback, canary, done]\n",
    )
    result = fix_text(doc)
    assert "thresholds: [3]" in result.text
    # The target of the empty duplicate range (index 1) is dropped.
    assert "targets: [rollback, done]" in result.text
    assert "BF105" not in codes(result.text)


def test_fix_dedups_check_output_thresholds_with_outcomes():
    doc = BASE.replace(
        "              threshold: 2\n",
        "              thresholds: [2, 2]\n"
        "              outcomes: [-1, 0, 1]\n",
    )
    result = fix_text(doc)
    assert "thresholds: [2]" in result.text
    assert "outcomes: [-1, 1]" in result.text


def test_fix_leaves_thresholds_alone_without_matching_companion():
    # Arity mismatch: deduping would only change which rule fires.
    doc = BASE.replace(
        "        next: done\n        onFailure: rollback\n",
        "        transitions:\n"
        "          thresholds: [3, 3]\n"
        "          targets: [rollback, done]\n",
    )
    result = fix_text(doc)
    assert "thresholds: [3, 3]" in result.text


# -- BF107: closest-match typos ----------------------------------------------


def test_fix_rewrites_unknown_state_typo():
    doc = BASE.replace("next: done", "next: doen")
    assert "BF107" in codes(doc)
    result = fix_text(doc)
    assert "next: done" in result.text
    assert "BF107" not in codes(result.text)
    [edit] = [e for e in result.edits if e.code == "BF107"]
    assert "'doen' -> 'done'" in edit.description


def test_fix_rewrites_typo_in_transition_targets():
    doc = BASE.replace(
        "        next: done\n        onFailure: rollback\n",
        "        transitions:\n"
        "          thresholds: [3]\n"
        "          targets: [rolback, done]\n",
    )
    result = fix_text(doc)
    assert "targets: [rollback, done]" in result.text


def test_fix_leaves_ambiguous_and_dissimilar_typos_alone():
    # Nothing within similarity 0.6 of "zzz" — no guess.
    doc = BASE.replace("next: done", "next: zzz")
    result = fix_text(doc)
    assert "next: zzz" in result.text
    assert "BF107" in codes(result.text)


# -- BF201: normalize split sums ---------------------------------------------


def test_fix_rescales_overflowing_splits_proportionally():
    doc = BASE.replace(
        "                - traffic:\n                    percentage: 10\n",
        "                - traffic:\n                    percentage: 120\n"
        "                - traffic:\n                    percentage: 80\n",
    )
    assert "BF201" in codes(doc)
    result = fix_text(doc)
    assert "percentage: 60" in result.text
    assert "percentage: 40" in result.text
    assert "BF201" not in codes(result.text)


def test_fix_never_rescales_to_above_hundred():
    doc = BASE.replace(
        "                - traffic:\n                    percentage: 10\n",
        "                - traffic:\n                    percentage: 100.1\n"
        "                - traffic:\n                    percentage: 33.33\n"
        "                - traffic:\n                    percentage: 66.67\n",
    )
    result = fix_text(doc)
    fixed = lint_text(result.text)
    assert "BF201" not in {d.code for d in fixed.diagnostics}


def test_fix_leaves_negative_splits_to_humans():
    doc = BASE.replace("percentage: 10", "percentage: -10", 1)
    result = fix_text(doc)
    assert "percentage: -10" in result.text


# -- BF503: steadyState stub -------------------------------------------------


CHAOS = """\
chaos:
  faults:
    - fault:
        name: outage
        target: provider:prometheus
        rate: 0.5
        during: [canary]
"""


def test_fix_stubs_missing_steady_state():
    doc = BASE + CHAOS
    assert "BF503" in codes(doc)
    result = fix_text(doc)
    assert "steadyState:" in result.text
    after = codes(result.text)
    assert "BF503" not in after
    # The stub copies the first strategy check's condition.
    assert "query: errors_total" in result.text.split("steadyState:")[1]
    assert 'validator: "< 50"' in result.text.split("steadyState:")[1]


def test_fix_stub_avoids_provider_contradicted_by_full_rate_fault():
    doc = BASE + CHAOS.replace("rate: 0.5", "rate: 1.0")
    result = fix_text(doc)
    stub = result.text.split("steadyState:")[1]
    # prometheus is fully faulted; the stub must not read through it via
    # the strategy check — the generic fallback is used instead.
    assert "query: up" in stub
    assert "BF503" not in codes(result.text)


# -- global guarantees -------------------------------------------------------


def test_fix_is_idempotent_on_defective_documents():
    doc = (
        BASE.replace("next: done", "next: doen")
        .replace("percentage: 10", "percentage: 120", 1)
        + CHAOS
    )
    once = fix_text(doc)
    twice = fix_text(once.text)
    assert once.changed
    assert not twice.changed
    assert twice.text == once.text


def test_fix_returns_clean_documents_byte_for_byte():
    assert not fix_text(BASE).changed
    assert fix_text(BASE).text == BASE


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_fix_is_noop_on_shipped_examples(path):
    text = path.read_text(encoding="utf-8")
    result = fix_text(text, file=str(path))
    assert not result.changed, [str(e) for e in result.edits]
    assert result.text == text


def test_fix_preserves_enactment_semantics_of_clean_strategies():
    # Serializer round-trip equality: fixing a clean document must leave
    # the compiled strategy (and hence enactment) bit-identical.
    for path in EXAMPLES:
        text = path.read_text(encoding="utf-8")
        fixed = fix_text(text).text
        before = compile_document(text)
        after = compile_document(fixed)
        assert serialize(
            before.strategy, before.deployment, before.chaos
        ) == serialize(after.strategy, after.deployment, after.chaos)


def test_fixed_defective_document_compiles_and_lints_clean_of_errors():
    doc = (
        BASE.replace("next: done", "next: doen")
        .replace("percentage: 10", "percentage: 120", 1)
        + CHAOS
    )
    result = fix_text(doc)
    after = lint_text(result.text)
    assert not after.errors, [str(d) for d in after.errors]
    compile_document(result.text)  # must not raise


def test_fix_path_rewrites_file_in_place(tmp_path):
    target = tmp_path / "strategy.yaml"
    target.write_text(BASE.replace("next: done", "next: doen"))
    result = fix_path(str(target))
    assert result.changed
    assert "next: done" in target.read_text()
    # Second run: no edits, file untouched.
    before = target.stat().st_mtime_ns
    assert not fix_path(str(target)).changed
    assert target.stat().st_mtime_ns == before
