"""Inline suppressions and baseline files."""

import json

import pytest

from repro.lint import (
    BaselineError,
    apply_baseline,
    fingerprint,
    lint_text,
    load_baseline,
    scan_suppressions,
    write_baseline,
)

DOC = """\
strategy:
  name: demo
  phases:
    - phase:
        name: canary
        duration: 30
        routes:
          - route:
              from: search
              to: v2
              filters:
                - traffic:
                    percentage: 10
        checks:
          - metric:
              name: ratio_ok
              provider: prometheus
              query: saturation_ratio
              validator: "< 50"{suffix}
              intervalTime: 5
              intervalLimit: 3
              threshold: 2
        next: done
        onFailure: rollback
    - final:
        name: done
    - final:
        name: rollback
        rollback: true
        routes:
          - route:
              from: search
              to: v1
              filters:
                - traffic:
                    percentage: 100
deployment:
  services:
    search:
      proxy: 127.0.0.1:9000
      stable: v1
      versions:
        v1: 127.0.0.1:8081
        v2: 127.0.0.1:8082
"""


def test_unsuppressed_document_reports_bf602():
    result = lint_text(DOC.format(suffix=""))
    assert "BF602" in {d.code for d in result.diagnostics}
    assert result.suppressed == 0


def test_trailing_comment_suppresses_own_line():
    result = lint_text(DOC.format(suffix="  # bifrost: ignore[BF602]"))
    assert "BF602" not in {d.code for d in result.diagnostics}
    assert result.suppressed == 1


def test_standalone_comment_suppresses_next_line():
    doc = DOC.format(suffix="").replace(
        '              validator: "< 50"',
        "              # bifrost: ignore[BF602]\n"
        '              validator: "< 50"',
    )
    result = lint_text(doc)
    assert "BF602" not in {d.code for d in result.diagnostics}
    assert result.suppressed == 1


def test_prefix_and_multi_code_suppressions():
    result = lint_text(DOC.format(suffix="  # bifrost: ignore[BF1, BF6]"))
    assert "BF602" not in {d.code for d in result.diagnostics}


def test_non_matching_suppression_changes_nothing():
    result = lint_text(DOC.format(suffix="  # bifrost: ignore[BF301]"))
    assert "BF602" in {d.code for d in result.diagnostics}
    assert result.suppressed == 0


def test_scan_suppressions_shapes():
    text = (
        "a: 1  # bifrost: ignore[BF101]\n"
        "# bifrost: ignore[BF202, bf303]\n"
        "\n"
        "b: 2\n"
        "c: 3\n"
    )
    scanned = scan_suppressions(text)
    assert scanned == {
        1: frozenset({"BF101"}),
        4: frozenset({"BF202", "BF303"}),
    }


def test_suppressing_every_error_still_requires_compiling():
    # All errors silenced -> the BF002 compile gate still runs, so a
    # suppressed-clean result cannot hide a non-compiling document.
    # (BF107 anchors at the state's own span — the `name:` line.)
    doc = (
        DOC.format(suffix="")
        .replace("        next: done", "        next: nowhere")
        .replace(
            "        name: canary",
            "        # bifrost: ignore[BF107]\n        name: canary",
        )
        .replace(
            "        name: done",
            "        # bifrost: ignore[BF101]\n        name: done",
        )
    )
    result = lint_text(doc)
    remaining = {d.code for d in result.diagnostics}
    assert "BF107" not in remaining and "BF101" not in remaining
    assert "BF002" in remaining


# -- baselines ---------------------------------------------------------------


def test_baseline_roundtrip_suppresses_known_findings(tmp_path):
    result = lint_text(DOC.format(suffix=""), file="demo.yaml")
    assert result.diagnostics
    path = tmp_path / "baseline.json"
    count = write_baseline(str(path), [result])
    assert count == len({fingerprint(d) for d in result.diagnostics})
    fingerprints = load_baseline(str(path))
    filtered = apply_baseline(result, fingerprints)
    assert not filtered.diagnostics
    assert filtered.suppressed == len(result.diagnostics)


def test_baseline_is_line_independent(tmp_path):
    original = lint_text(DOC.format(suffix=""), file="demo.yaml")
    path = tmp_path / "baseline.json"
    write_baseline(str(path), [original])
    shifted_doc = "# a new leading comment shifts every line\n" + DOC.format(
        suffix=""
    )
    shifted = lint_text(shifted_doc, file="demo.yaml")
    filtered = apply_baseline(shifted, load_baseline(str(path)))
    assert not filtered.diagnostics


def test_baseline_does_not_hide_new_findings(tmp_path):
    original = lint_text(DOC.format(suffix=""), file="demo.yaml")
    path = tmp_path / "baseline.json"
    write_baseline(str(path), [original])
    worse = DOC.format(suffix="").replace("next: done", "next: nowhere")
    result = lint_text(worse, file="demo.yaml")
    filtered = apply_baseline(result, load_baseline(str(path)))
    remaining = {d.code for d in filtered.diagnostics}
    assert "BF107" in remaining


def test_baseline_file_is_reviewable_json(tmp_path):
    result = lint_text(DOC.format(suffix=""), file="demo.yaml")
    path = tmp_path / "baseline.json"
    write_baseline(str(path), [result])
    payload = json.loads(path.read_text())
    assert payload["version"] == 1
    assert all(
        {"fingerprint", "code", "message"} <= set(entry)
        for entry in payload["findings"]
    )


def test_malformed_baselines_raise_baseline_error(tmp_path):
    missing = tmp_path / "missing.json"
    with pytest.raises(BaselineError):
        load_baseline(str(missing))
    bad = tmp_path / "bad.json"
    bad.write_text("not json")
    with pytest.raises(BaselineError):
        load_baseline(str(bad))
    wrong_shape = tmp_path / "shape.json"
    wrong_shape.write_text('{"findings": [{"code": "BF101"}]}')
    with pytest.raises(BaselineError):
        load_baseline(str(wrong_shape))
