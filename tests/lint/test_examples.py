"""Every YAML strategy shipped under examples/ must lint clean.

If an example legitimately needs to demonstrate a finding, add it to
EXPECTED_FINDINGS with the rule codes it is allowed to trip — anything
not listed must produce zero diagnostics even at --strict.
"""

from pathlib import Path

import pytest

from repro.lint import lint_path

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples").glob("*.yaml")
)

#: path name -> set of rule codes the example is expected to trip.
EXPECTED_FINDINGS: dict[str, set[str]] = {}


def test_examples_exist():
    assert EXAMPLES, "no YAML examples found — did examples/ move?"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_lints_clean_or_matches_manifest(path):
    result = lint_path(str(path))
    expected = EXPECTED_FINDINGS.get(path.name, set())
    unexpected = [d for d in result.diagnostics if d.code not in expected]
    assert not unexpected, "\n".join(str(d) for d in unexpected)
    missing = expected - {d.code for d in result.diagnostics}
    assert not missing, f"manifest expects {sorted(missing)} but they no longer fire"
