"""Tests for the lint engine: entry points, config plumbing, renderers,
the clean-implies-compilable invariant, and the enactment gate."""

import json

import pytest

from repro.core import (
    Engine,
    StrategyBuilder,
    StrategyRejectedError,
    canary_split,
    simple_basic_check,
    single_version,
)
from repro.lint import (
    LintConfig,
    Severity,
    lint_path,
    lint_strategy,
    lint_text,
    render_json,
    render_sarif,
    render_text,
)

DEPLOYMENT = """\
deployment:
  services:
    frontend:
      proxy: 127.0.0.1:7001
      stable: v1
      versions:
        v1: 127.0.0.1:9001
        v2: 127.0.0.1:9002
"""

# The acceptance-criteria document: an unreachable state, an overlapping
# threshold range, and a malformed metric query, with known line numbers.
ACCEPTANCE_DOC = (
    """\
strategy:
  name: acceptance
  phases:
    - phase:
        name: canary
        routes:
          - route:
              from: frontend
              to: v2
              filters:
                - traffic:
                    percentage: 10
        checks:
          - metric:
              name: errors
              query: "rate(((("
              validator: "<5"
              intervalTime: 30
              intervalLimit: 4
        transitions:
          thresholds: [5, 3]
          targets: [rollback, canary, done]
    - phase:
        name: orphan
        next: done
    - final:
        name: done
    - final:
        name: rollback
        rollback: true
"""
    + DEPLOYMENT
)
QUERY_LINE = 16  # query: "rate((((""
THRESHOLDS_LINE = 21  # thresholds: [5, 3]
ORPHAN_LINE = 24  # name: orphan


def test_acceptance_three_codes_with_line_numbers_in_text_and_json():
    result = lint_text(ACCEPTANCE_DOC, file="acceptance.yaml")
    expected = {
        "BF301": QUERY_LINE,
        "BF105": THRESHOLDS_LINE,
        "BF101": ORPHAN_LINE,
    }
    by_code = {d.code: d for d in result.diagnostics if d.code in expected}
    assert set(by_code) == set(expected)
    for code, line in expected.items():
        assert by_code[code].span.line == line, code
        assert by_code[code].severity is Severity.ERROR

    text = render_text(result)
    for code, line in expected.items():
        assert f"acceptance.yaml:{line}" in text
        assert code in text

    payload = json.loads(render_json(result))
    json_lines = {d["code"]: d.get("line") for d in payload["diagnostics"]}
    for code, line in expected.items():
        assert json_lines[code] == line

    assert result.exit_code() == 3


def test_parse_failure_is_bf001_with_line():
    result = lint_text("a:\n\tb: 1\n", file="bad.yaml")
    [diagnostic] = result.diagnostics
    assert diagnostic.code == "BF001"
    assert diagnostic.span.line == 2
    assert result.exit_code() == 3


def test_unreadable_file_is_bf001(tmp_path):
    result = lint_path(str(tmp_path / "ghost.yaml"))
    [diagnostic] = result.diagnostics
    assert diagnostic.code == "BF001"
    assert "cannot read" in diagnostic.message


def test_compile_failure_without_rule_errors_is_bf002():
    # Structurally fine for every rule, but the check lacks a validator,
    # which only the compiler rejects.
    document = (
        """\
strategy:
  name: t
  phases:
    - phase:
        name: canary
        checks:
          - metric:
              name: m
              query: up
              intervalTime: 1
              intervalLimit: 2
        next: done
        onFailure: rollback
    - final:
        name: done
    - final:
        name: rollback
        rollback: true
"""
        + DEPLOYMENT
    )
    result = lint_text(document, file="t.yaml")
    assert "BF002" in {d.code for d in result.diagnostics}


def test_clean_lint_implies_compilable_so_no_bf002_next_to_rule_errors():
    result = lint_text(ACCEPTANCE_DOC, file="t.yaml")
    codes = {d.code for d in result.diagnostics}
    # The document does not compile, but specific rules already explain
    # why with better locations — BF002 stays out of the way.
    assert "BF002" not in codes


def test_document_lint_section_ignore_and_severity_override():
    base = (
        """\
strategy:
  name: t
  phases:
    - phase:
        name: blind
        duration: 5
        routes:
          - route:
              from: frontend
              to: v2
              filters:
                - traffic:
                    percentage: 25
        next: done
    - final:
        name: done
"""
        + DEPLOYMENT
    )
    plain = lint_text(base, file="t.yaml")
    assert "BF305" in {d.code for d in plain.diagnostics}

    ignored = base + "lint:\n  ignore: [BF305]\n"
    result = lint_text(ignored, file="t.yaml")
    assert "BF305" not in {d.code for d in result.diagnostics}

    promoted = base + "lint:\n  severity:\n    BF305: error\n"
    result = lint_text(promoted, file="t.yaml")
    [diagnostic] = [d for d in result.diagnostics if d.code == "BF305"]
    assert diagnostic.severity is Severity.ERROR
    assert result.exit_code() == 3


def test_malformed_lint_section_is_bf003_not_a_crash():
    document = ACCEPTANCE_DOC + "lint:\n  bogus: true\n"
    result = lint_text(document, file="t.yaml")
    assert "BF003" in {d.code for d in result.diagnostics}


def test_cli_config_overrides_document_select():
    config = LintConfig.from_flags(select=["BF3"])
    result = lint_text(ACCEPTANCE_DOC, file="t.yaml", config=config)
    codes = {d.code for d in result.diagnostics}
    assert "BF301" in codes
    assert codes <= {"BF301", "BF302", "BF303", "BF304", "BF305"}


def test_lint_is_deterministic():
    first = lint_text(ACCEPTANCE_DOC, file="t.yaml")
    second = lint_text(ACCEPTANCE_DOC, file="t.yaml")
    assert [str(d) for d in first.diagnostics] == [
        str(d) for d in second.diagnostics
    ]


def test_strict_exit_code_for_warnings():
    document = (
        """\
strategy:
  name: t
  phases:
    - phase:
        name: blind
        duration: 5
        routes:
          - route:
              from: frontend
              to: v2
              filters:
                - traffic:
                    percentage: 25
        next: done
    - final:
        name: done
"""
        + DEPLOYMENT
    )
    result = lint_text(document, file="t.yaml")
    assert result.errors == []
    assert result.warnings
    assert result.exit_code() == 0
    assert result.exit_code(strict=True) == 4


def test_sarif_output_shape():
    result = lint_text(ACCEPTANCE_DOC, file="acceptance.yaml")
    log = json.loads(render_sarif(result))
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert {"BF101", "BF105", "BF301"} <= rule_ids
    result_entry = next(
        entry for entry in run["results"] if entry["ruleId"] == "BF301"
    )
    region = result_entry["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == QUERY_LINE


# -- the enactment gate ------------------------------------------------------


def bad_query_strategy():
    builder = StrategyBuilder("gated")
    builder.service("svc", {"stable": "h:1", "canary": "h:2"})
    builder.state("canary").route("svc", canary_split("stable", "canary", 5.0)).check(
        simple_basic_check("c", "rate((((", "<5", 1, 3)
    ).transitions([0.5], ["rollback", "done"])
    builder.state("done").route("svc", single_version("canary")).final()
    builder.state("rollback").route("svc", single_version("stable")).final(
        rollback=True
    )
    return builder.build()


async def test_engine_refuses_blocking_findings():
    engine = Engine()
    with pytest.raises(StrategyRejectedError) as excinfo:
        engine.enact(bad_query_strategy())
    assert any(d.code == "BF301" for d in excinfo.value.diagnostics)
    assert "BF301" in str(excinfo.value)
    await engine.shutdown()


async def test_engine_allow_findings_overrides_the_gate():
    engine = Engine()
    execution_id = engine.enact(bad_query_strategy(), allow_findings=True)
    assert execution_id.startswith("gated#")
    await engine.cancel(execution_id)
    await engine.shutdown()


async def test_engine_still_enacts_strategies_with_advisory_findings():
    # No rollback state is an ERROR finding, but an advisory one — the
    # legacy test suite enacts such strategies and the gate must let them.
    builder = StrategyBuilder("advisory")
    builder.service("svc", {"stable": "h:1", "canary": "h:2"})
    builder.state("canary").route("svc", canary_split("stable", "canary", 5.0)).check(
        simple_basic_check("c", "up", "<5", 1, 3)
    ).transitions([0.5], ["done", "done"])
    builder.state("done").route("svc", single_version("canary")).final()
    strategy = builder.build()
    assert lint_strategy(strategy).errors  # BF104 fires...
    engine = Engine()
    execution_id = engine.enact(strategy)  # ...but does not block
    await engine.cancel(execution_id)
    await engine.shutdown()
