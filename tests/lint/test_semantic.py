"""The BF6xx semantic analysis rules (lint/semantic.py)."""

from repro.lint import LintConfig, lint_text
from repro.lint.registry import RULES


def lint(document, **kwargs):
    return lint_text(document, **kwargs)


def line_of(document, needle, occurrence=1):
    """1-based line number of the *occurrence*-th line containing needle."""
    seen = 0
    for number, line in enumerate(document.splitlines(), start=1):
        if needle in line:
            seen += 1
            if seen == occurrence:
                return number
    raise AssertionError(f"{needle!r} not found")


def by_code(result, code):
    return [d for d in result.diagnostics if d.code == code]


def document(validator='"< 50"', query="errors_total", extra="", chaos=""):
    return f"""\
strategy:
  name: demo
  phases:
    - phase:
        name: canary
        duration: 30
        routes:
          - route:
              from: search
              to: v2
              filters:
                - traffic:
                    percentage: 10
        checks:
          - metric:
              name: errors_ok
              provider: prometheus
              query: {query}
              validator: {validator}
              intervalTime: 5
              intervalLimit: 3
              threshold: 2
        next: done
        onFailure: rollback
{extra}    - final:
        name: done
    - final:
        name: rollback
        rollback: true
        routes:
          - route:
              from: search
              to: v1
              filters:
                - traffic:
                    percentage: 100
deployment:
  services:
    search:
      proxy: 127.0.0.1:9000
      stable: v1
      versions:
        v1: 127.0.0.1:8081
        v2: 127.0.0.1:8082
{chaos}"""


# -- BF601: unsatisfiable checks ---------------------------------------------


def test_bf601_flags_provably_unsatisfiable_validator():
    doc = document(validator='"< 0"')
    result = lint(doc)
    [diagnostic] = by_code(result, "BF601")
    assert "can never hold" in diagnostic.message
    assert "[0, +inf]" in diagnostic.message
    assert diagnostic.state == "canary"
    # The span anchors at the validator key, line- and column-accurate.
    assert diagnostic.span.line == line_of(doc, 'validator: "< 0"')
    column = doc.splitlines()[diagnostic.span.line - 1].index("validator") + 1
    assert diagnostic.span.column == column
    assert diagnostic.span.end_column == column + len("validator")


def test_bf601_is_blocking():
    assert RULES["BF601"].blocking
    assert RULES["BF605"].blocking
    assert not RULES["BF602"].blocking


def test_bf601_on_steady_state_hypothesis():
    chaos = """\
chaos:
  faults:
    - fault:
        name: outage
        target: provider:prometheus
        rate: 0.5
        during: [canary]
  steadyState:
    - metric:
        name: impossible
        provider: prometheus
        query: saturation_ratio
        validator: "> 2"
        intervalTime: 4
        intervalLimit: 2
        threshold: 1
"""
    doc = document(chaos=chaos)
    result = lint(doc)
    [diagnostic] = by_code(result, "BF601")
    assert "steady-state hypothesis" in diagnostic.message
    assert "violated unconditionally" in diagnostic.message
    assert diagnostic.span.line == line_of(doc, 'validator: "> 2"')


def test_bf601_skips_foreign_providers_and_bad_queries():
    # A provider the domain knows nothing about: no verdict.
    clean = lint(document().replace("provider: prometheus", "provider: statsd"))
    assert not by_code(clean, "BF601")
    # A query that does not compile is BF301's business.
    broken = lint(document(query="rate((((", validator='"< 0"'))
    assert not by_code(broken, "BF601")
    assert by_code(broken, "BF301")


def test_bf601_respects_explicit_subject():
    doc = document().replace(
        "              query: errors_total\n"
        "              validator: \"< 50\"\n",
        "              validator: \"< 0\"\n"
        "              subject: q_ratio\n"
        "              providers:\n"
        "                - prometheus:\n"
        "                    name: q_ratio\n"
        "                    query: saturation_ratio\n",
    )
    result = lint(doc)
    [diagnostic] = by_code(result, "BF601")
    assert "[0, 1]" in diagnostic.message


# -- BF602: tautological checks ----------------------------------------------


def test_bf602_flags_tautological_validator():
    doc = document(query="saturation_ratio")  # [0, 1] vs "< 50"
    result = lint(doc)
    [diagnostic] = by_code(result, "BF602")
    assert "always holds" in diagnostic.message
    assert "no signal" in diagnostic.message
    assert diagnostic.span.line == line_of(doc, 'validator: "< 50"')


def test_bf602_not_raised_for_satisfiable_falsifiable_checks():
    result = lint(document())  # errors_total in [0, inf) vs "< 50"
    assert not by_code(result, "BF602")
    assert not by_code(result, "BF601")


def test_bf602_suppressible_inline():
    doc = document(query="saturation_ratio").replace(
        'validator: "< 50"',
        'validator: "< 50"  # bifrost: ignore[BF602]',
    )
    result = lint(doc)
    assert not by_code(result, "BF602")
    assert result.suppressed == 1


# -- BF603: unchecked blast-radius jumps -------------------------------------


JUMP = """\
    - phase:
        name: flood
        duration: 10
        routes:
          - route:
              from: search
              to: v2
              filters:
                - traffic:
                    percentage: 90
        next: done
"""


def test_bf603_flags_jump_out_of_checkless_phase():
    # canary (10%, with checks) -> staging (no checks) -> flood (90%).
    staging = """\
    - phase:
        name: staging
        duration: 10
        next: flood
"""
    doc = document(extra=staging + JUMP).replace("next: done", "next: staging", 1)
    result = lint(doc)
    [diagnostic] = by_code(result, "BF603")
    assert diagnostic.state == "flood"
    assert "'staging' runs no checks" in diagnostic.message
    assert diagnostic.span.line == line_of(doc, "name: flood")


def test_bf603_quiet_when_previous_phase_has_checks():
    doc = document(extra=JUMP).replace("next: done", "next: flood", 1)
    result = lint(doc)
    assert not by_code(result, "BF603")


def test_bf603_flags_start_state_opening_wide():
    doc = document().replace("percentage: 10", "percentage: 80", 1)
    # Drop the checks so the start phase is unchecked but keep structure.
    result = lint(doc)
    [diagnostic] = by_code(result, "BF603")
    assert "opens 'search' at 80%" in diagnostic.message
    assert diagnostic.state == "canary"


def test_bf603_threshold_configurable_via_options():
    doc = document().replace("percentage: 10", "percentage: 40", 1)
    assert not by_code(lint(doc), "BF603")
    tightened = "lint:\n  options:\n    maxExposureJump: 30\n" + doc
    [diagnostic] = by_code(lint(tightened), "BF603")
    assert "threshold 30" in diagnostic.message


# -- BF604: shadow amplification ---------------------------------------------


def test_bf604_flags_fanout_beyond_bound():
    shadows = """\
          - route:
              from: search
              to: v2
              filters:
                - traffic:
                    shadow: true
                    percentage: 80
          - route:
              from: search
              to: v1
              filters:
                - traffic:
                    shadow: true
                    percentage: 70
"""
    doc = document().replace(
        "        checks:", shadows + "        checks:", 1
    )
    result = lint(doc)
    [diagnostic] = by_code(result, "BF604")
    assert "150%" in diagnostic.message
    assert "1.50x duplication" in diagnostic.message
    assert diagnostic.state == "canary"


def test_bf604_quiet_at_or_under_bound():
    shadow = """\
          - route:
              from: search
              to: v1
              filters:
                - traffic:
                    shadow: true
                    percentage: 100
"""
    doc = document().replace("        checks:", shadow + "        checks:", 1)
    assert not by_code(lint(doc), "BF604")


# -- BF605: chaos-hypothesis contradictions ----------------------------------


def chaos_section(rate="1.0", mode=None, policy=None):
    mode_line = f"        mode: {mode}\n" if mode else ""
    policy_line = f"        onProviderError: {policy}\n" if policy else ""
    return f"""\
chaos:
  faults:
    - fault:
        name: outage
        target: provider:prometheus
{mode_line}        rate: {rate}
        during: [canary]
  steadyState:
    - metric:
        name: steady_errors
        provider: prometheus
        query: errors_total
        validator: "< 50"
{policy_line}        intervalTime: 4
        intervalLimit: 2
        threshold: 1
"""


def test_bf605_flags_full_rate_fault_on_hypothesis_provider():
    doc = document(chaos=chaos_section())
    result = lint(doc)
    [diagnostic] = by_code(result, "BF605")
    assert "falsified by the fault itself" in diagnostic.message
    assert diagnostic.span.line == line_of(doc, "name: outage")
    # The related location points at the hypothesis that reads through it.
    [(note, span)] = diagnostic.related
    assert "reads through" in note
    assert span.line == line_of(doc, 'validator: "< 50"', occurrence=2)


def test_bf605_hold_policy_is_blindness_not_falsification():
    doc = document(chaos=chaos_section(policy="hold"))
    [diagnostic] = by_code(lint(doc), "BF605")
    assert "blinded" in diagnostic.message


def test_bf605_quiet_below_full_rate_or_latency_mode():
    assert not by_code(lint(document(chaos=chaos_section(rate="0.9"))), "BF605")
    assert not by_code(
        lint(document(chaos=chaos_section(mode="latency"))), "BF605"
    )


def test_bf605_quiet_when_hypothesis_reads_elsewhere():
    chaos = chaos_section().replace("target: provider:prometheus",
                                    "target: upstream:search")
    assert not by_code(lint(document(chaos=chaos)), "BF605")


# -- cross-cutting -----------------------------------------------------------


def test_semantic_rules_gate_enactment():
    import pytest

    from repro.clock import VirtualClock
    from repro.core import RecordingController
    from repro.core.engine import Engine, StrategyRejectedError
    from repro.dsl import compile_document

    compiled = compile_document(document(validator='"< 0"'))
    engine = Engine(controller=RecordingController(), clock=VirtualClock())
    with pytest.raises(StrategyRejectedError) as excinfo:
        engine.enact(compiled.strategy)
    assert "BF601" in str(excinfo.value)


def test_semantic_rules_selectable_as_group():
    doc = document(validator='"< 0"')
    result = lint_text(doc, config=LintConfig.from_flags(select=["BF6"]))
    assert {d.code for d in result.diagnostics} == {"BF601"}
