"""SARIF 2.1.0 schema conformance of `bifrost lint --format sarif`.

The vendored schema (``data/sarif-2.1.0-subset.json``) is the subset of
the OASIS SARIF 2.1.0 schema our renderer exercises, with the spec's
constraints kept strict where they caught real deviations: region
line/column properties are **1-based** integers, and a ``startColumn``
must come with its ``endColumn`` so viewers can highlight the token.
"""

import json
from pathlib import Path

import pytest

jsonschema = pytest.importorskip("jsonschema")

from repro.lint import lint_text, render_sarif

SCHEMA = json.loads(
    (Path(__file__).parent / "data" / "sarif-2.1.0-subset.json").read_text()
)

DEFECTIVE = """\
strategy:
  name: demo
  phases:
    - phase:
        name: canary
        duration: 30
        routes:
          - route:
              from: search
              to: v2
              filters:
                - traffic:
                    percentage: 10
        checks:
          - metric:
              name: ratio_ok
              provider: prometheus
              query: saturation_ratio
              validator: "< 50"
          - metric:
              name: impossible
              provider: prometheus
              query: errors_total
              validator: "< 0"
              intervalTime: 5
              intervalLimit: 3
              threshold: 2
        next: done
        onFailure: rollback
    - final:
        name: done
    - final:
        name: rollback
        rollback: true
deployment:
  services:
    search:
      proxy: 127.0.0.1:9000
      stable: v1
      versions:
        v1: 127.0.0.1:8081
        v2: 127.0.0.1:8082
"""


def sarif_log(text=DEFECTIVE):
    result = lint_text(text, file="demo.yaml")
    assert result.diagnostics, "fixture must produce findings"
    return json.loads(render_sarif(result))


def test_sarif_log_conforms_to_schema():
    jsonschema.validate(sarif_log(), SCHEMA)


def test_sarif_regions_are_one_based_with_end_columns():
    regions = [
        location["physicalLocation"]["region"]
        for entry in sarif_log()["runs"][0]["results"]
        for location in entry.get("locations", [])
        if "region" in location["physicalLocation"]
    ]
    assert regions
    for region in regions:
        assert region["startLine"] >= 1
        if "startColumn" in region:
            assert region["startColumn"] >= 1
            assert region["endColumn"] >= region["startColumn"]


def test_sarif_key_anchored_findings_carry_columns():
    # BF601 anchors at the `validator:` key, so its region must pinpoint
    # the key's column range, not just the line.
    results = sarif_log()["runs"][0]["results"]
    [bf601] = [r for r in results if r["ruleId"] == "BF601"]
    region = bf601["locations"][0]["physicalLocation"]["region"]
    line = DEFECTIVE.split("\n")[region["startLine"] - 1]
    assert region["startColumn"] == line.index("validator") + 1
    assert region["endColumn"] == region["startColumn"] + len("validator")


def test_sarif_rules_table_covers_every_reported_rule():
    log = sarif_log()
    declared = {rule["id"] for rule in log["runs"][0]["tool"]["driver"]["rules"]}
    reported = {entry["ruleId"] for entry in log["runs"][0]["results"]}
    assert reported <= declared


def test_sarif_of_clean_result_still_conforms():
    result = lint_text(
        DEFECTIVE.replace('validator: "< 0"', 'validator: "< 9"').replace(
            "query: saturation_ratio", "query: errors_total"
        ),
        file="demo.yaml",
    )
    log = json.loads(render_sarif(result))
    jsonschema.validate(log, SCHEMA)
