"""BF5xx: lint rules for chaos campaign sections."""

from repro.lint import lint_text


BASE = """
strategy:
  name: demo
  phases:
    - phase:
        name: canary
        duration: 30
        routes:
          - route:
              from: search
              to: v2
              filters:
                - traffic:
                    percentage: 10
        checks:
          - metric:
              name: errors_ok
              provider: prometheus
              query: errors_total
              validator: "< 50"
              intervalTime: 5
              intervalLimit: 3
              threshold: 2
        next: done
        onFailure: rollback
    - final:
        name: done
    - final:
        name: rollback
        rollback: true
        routes:
          - route:
              from: search
              to: v1
              filters:
                - traffic:
                    percentage: 100
deployment:
  services:
    search:
      proxy: 127.0.0.1:9000
      stable: v1
      versions:
        v1: 127.0.0.1:8081
        v2: 127.0.0.1:8082
"""

STEADY = """
  steadyState:
    - metric:
        name: steady_errors
        provider: prometheus
        query: errors_total
        validator: "< 50"
        intervalTime: 4
        intervalLimit: 2
        threshold: 1
"""


def codes(result):
    return {diagnostic.code for diagnostic in result.diagnostics}


def test_clean_chaos_document_lints_clean():
    # rate < 1.0: a full-rate error fault on the provider the hypothesis
    # reads through would be the BF605 contradiction.
    document = BASE + """
chaos:
  faults:
    - fault:
        name: outage
        target: provider:prometheus
        rate: 0.5
        during: [canary]
""" + STEADY
    result = lint_text(document)
    assert not result.errors, [str(d) for d in result.errors]


def test_bf501_unknown_fault_target():
    document = BASE + """
chaos:
  faults:
    - fault:
        name: ghost
        target: upstream:payments
        during: [canary]
""" + STEADY
    result = lint_text(document)
    assert "BF501" in codes(result)


def test_bf501_malformed_target():
    document = BASE + """
chaos:
  faults:
    - fault:
        name: bad
        target: widget:x
        during: [canary]
""" + STEADY
    result = lint_text(document)
    assert "BF501" in codes(result)


def test_bf501_unknown_provider():
    document = BASE + """
chaos:
  faults:
    - fault:
        name: ghost
        target: provider:statsd
        during: [canary]
""" + STEADY
    result = lint_text(document)
    assert "BF501" in codes(result)


def test_bf502_schedule_outside_any_phase():
    document = BASE + """
chaos:
  faults:
    - fault:
        name: outage
        target: provider:prometheus
        during: [warp]
""" + STEADY
    result = lint_text(document)
    assert "BF502" in codes(result)


def test_bf502_empty_during():
    document = BASE + """
chaos:
  faults:
    - fault:
        name: outage
        target: provider:prometheus
        during: []
""" + STEADY
    result = lint_text(document)
    assert "BF502" in codes(result)


def test_bf503_missing_steady_state():
    document = BASE + """
chaos:
  faults:
    - fault:
        name: outage
        target: provider:prometheus
        during: [canary]
"""
    result = lint_text(document)
    assert "BF503" in codes(result)


def test_bf5xx_are_blocking():
    from repro.lint.registry import RULES

    for code in ("BF501", "BF502", "BF503"):
        assert RULES[code].blocking, code


def test_strategy_level_lint_gates_enactment():
    """Engine.enact(chaos=...) rejects a campaign with blocking findings
    before anything is wrapped or armed."""
    import pytest

    from repro.clock import VirtualClock
    from repro.core import RecordingController
    from repro.core.engine import Engine, StrategyRejectedError
    from repro.dsl import compile_document

    document = BASE + """
chaos:
  faults:
    - fault:
        name: ghost
        target: provider:statsd
        during: [canary]
""" + STEADY
    compiled = compile_document(document)
    engine = Engine(controller=RecordingController(), clock=VirtualClock())
    with pytest.raises(StrategyRejectedError):
        engine.enact(compiled.strategy, chaos=compiled.chaos)
