"""Per-rule golden tests: every rule fires on a minimal fixture.

Each test lints a minimal document (or strategy) constructed to trip
exactly the rule under test, and asserts the stable code — and, for
document fixtures, the YAML line the diagnostic points at.
"""

from repro.core import (
    RoutingConfig,
    StrategyBuilder,
    TrafficSplit,
    canary_split,
    simple_basic_check,
    single_version,
)
from repro.lint import lint_strategy, lint_text

DEPLOYMENT = """\
deployment:
  services:
    svc:
      proxy: 127.0.0.1:7001
      stable: v1
      versions:
        v1: 127.0.0.1:9001
        v2: 127.0.0.1:9002
"""


def lint(document):
    return lint_text(document, file="test.yaml")


def codes(result):
    return {d.code for d in result.diagnostics}


def line_of(document, needle, occurrence=1):
    """1-based line number of the *occurrence*-th line containing needle."""
    seen = 0
    for number, line in enumerate(document.splitlines(), start=1):
        if needle in line:
            seen += 1
            if seen == occurrence:
                return number
    raise AssertionError(f"{needle!r} not found {occurrence} time(s)")


def by_code(result, code):
    found = [d for d in result.diagnostics if d.code == code]
    assert found, f"{code} not in {[d.code for d in result.diagnostics]}"
    return found


# -- BF1xx structural --------------------------------------------------------


def test_bf101_unreachable_state():
    document = (
        """\
strategy:
  name: t
  phases:
    - phase:
        name: start
        next: done
    - phase:
        name: orphan
        next: done
    - final:
        name: done
"""
        + DEPLOYMENT
    )
    result = lint(document)
    [diagnostic] = by_code(result, "BF101")
    assert diagnostic.state == "orphan"
    assert diagnostic.span.line == line_of(document, "name: orphan")


def test_bf102_no_path_to_final():
    document = (
        """\
strategy:
  name: t
  phases:
    - phase:
        name: stuck
        next: stuck
    - final:
        name: done
"""
        + DEPLOYMENT
    )
    result = lint(document)
    # A pure self-loop is reported as the live-lock shape, not BF102...
    assert "BF103" in codes(result)
    # ...while a dead-end chain (no cycle, no final) is BF102.
    document = (
        """\
strategy:
  name: t
  phases:
    - phase:
        name: a
        next: b
    - phase:
        name: b
        next: ghost
    - final:
        name: done
"""
        + DEPLOYMENT
    )
    result = lint(document)
    bf102 = by_code(result, "BF102")
    assert {d.state for d in bf102} == {"a", "b"}


def test_bf102_strategy_without_final_state():
    document = (
        """\
strategy:
  name: t
  phases:
    - phase:
        name: only
        next: only
"""
        + DEPLOYMENT
    )
    result = lint(document)
    [diagnostic] = by_code(result, "BF102")
    assert "no final state" in diagnostic.message


def test_bf103_live_lock_cycle():
    document = (
        """\
strategy:
  name: t
  phases:
    - phase:
        name: start
        next: ping
    - phase:
        name: ping
        next: pong
    - phase:
        name: pong
        next: ping
    - final:
        name: done
"""
        + DEPLOYMENT
    )
    result = lint(document)
    [diagnostic] = by_code(result, "BF103")
    assert diagnostic.state == "ping"
    assert "['ping', 'pong']" in diagnostic.message
    assert diagnostic.span.line == line_of(document, "name: ping")


def test_bf104_no_rollback_golden():
    document = (
        """\
strategy:
  name: t
  phases:
    - phase:
        name: canary
        routes:
          - route:
              from: svc
              to: v2
              filters:
                - traffic:
                    percentage: 10
        checks:
          - metric:
              name: m
              query: up
              validator: "<5"
              intervalTime: 1
              intervalLimit: 2
        next: done
        onFailure: done
    - final:
        name: done
"""
        + DEPLOYMENT
    )
    result = lint(document)
    [diagnostic] = by_code(result, "BF104")
    assert diagnostic.severity.value == "error"
    assert diagnostic.span.line == line_of(document, "name: canary")
    assert "no rollback state" in diagnostic.message


def test_bf105_unsorted_thresholds_and_target_count():
    document = (
        """\
strategy:
  name: t
  phases:
    - phase:
        name: a
        checks:
          - metric:
              name: m
              query: up
              validator: "<5"
              intervalTime: 1
              intervalLimit: 2
        transitions:
          thresholds: [5, 3]
          targets: [done, a, done]
    - final:
        name: done
"""
        + DEPLOYMENT
    )
    result = lint(document)
    [diagnostic] = by_code(result, "BF105")
    assert "not sorted" in diagnostic.message
    assert diagnostic.span.line == line_of(document, "thresholds: [5, 3]")

    mismatched = document.replace(
        "thresholds: [5, 3]", "thresholds: [3]"
    )
    result = lint(mismatched)
    [diagnostic] = by_code(result, "BF105")
    assert "ranges but 3 targets" in diagnostic.message


def test_bf105_duplicate_output_thresholds():
    document = (
        """\
strategy:
  name: t
  phases:
    - phase:
        name: a
        checks:
          - metric:
              name: m
              query: up
              validator: "<5"
              intervalTime: 1
              intervalLimit: 4
              thresholds: [2, 2]
              outcomes: [-1, 0, 1]
        transitions:
          thresholds: [0]
          targets: [rollback, done]
    - final:
        name: done
    - final:
        name: rollback
        rollback: true
"""
        + DEPLOYMENT
    )
    result = lint(document)
    [diagnostic] = by_code(result, "BF105")
    assert "duplicate threshold" in diagnostic.message
    assert "output mapping" in diagnostic.message


def test_bf106_duration_shorter_than_interval():
    document = (
        """\
strategy:
  name: t
  phases:
    - phase:
        name: a
        duration: 10
        checks:
          - metric:
              name: slow
              query: up
              validator: "<5"
              intervalTime: 30
              intervalLimit: 2
        next: done
        onFailure: rollback
    - final:
        name: done
    - final:
        name: rollback
        rollback: true
"""
        + DEPLOYMENT
    )
    result = lint(document)
    [diagnostic] = by_code(result, "BF106")
    assert "'slow'" in diagnostic.message
    assert diagnostic.state == "a"


def test_bf107_unknown_state_reference():
    document = (
        """\
strategy:
  name: t
  phases:
    - phase:
        name: a
        next: ghost
    - final:
        name: done
"""
        + DEPLOYMENT
    )
    result = lint(document)
    [diagnostic] = by_code(result, "BF107")
    assert "'ghost'" in diagnostic.message


# -- BF2xx routing -----------------------------------------------------------


def test_bf201_split_overflow():
    document = (
        """\
strategy:
  name: t
  phases:
    - phase:
        name: a
        routes:
          - route:
              from: svc
              to: v2
              filters:
                - traffic:
                    percentage: 80
                - traffic:
                    percentage: 30
        next: done
    - final:
        name: done
"""
        + DEPLOYMENT
    )
    result = lint(document)
    [diagnostic] = by_code(result, "BF201")
    assert "110" in diagnostic.message
    assert diagnostic.span.line == line_of(document, "from: svc")


def test_bf202_unknown_version_and_service():
    document = (
        """\
strategy:
  name: t
  phases:
    - phase:
        name: a
        routes:
          - route:
              from: svc
              to: v9
              filters:
                - traffic:
                    percentage: 10
          - route:
              from: ghost-svc
              to: v1
              filters:
                - traffic:
                    percentage: 10
        next: done
    - final:
        name: done
"""
        + DEPLOYMENT
    )
    result = lint(document)
    messages = [d.message for d in by_code(result, "BF202")]
    assert any("no version 'v9'" in m for m in messages)
    assert any("'ghost-svc'" in m for m in messages)


def test_bf203_unroutable_version():
    document = (
        """\
strategy:
  name: t
  phases:
    - phase:
        name: a
        duration: 1
        next: done
    - final:
        name: done
"""
        + DEPLOYMENT
    )
    result = lint(document)
    messages = [d.message for d in by_code(result, "BF203")]
    # Nothing is ever routed, so both declared versions are unroutable.
    assert any("'v1'" in m for m in messages)
    assert any("'v2'" in m for m in messages)


def test_bf204_sticky_discontinuity():
    document = (
        """\
strategy:
  name: t
  phases:
    - phase:
        name: ab
        routes:
          - route:
              from: svc
              to: v2
              filters:
                - traffic:
                    percentage: 50
                    sticky: true
        next: shuffle
    - phase:
        name: shuffle
        routes:
          - route:
              from: svc
              to: v2
              filters:
                - traffic:
                    percentage: 30
        next: done
    - final:
        name: done
"""
        + DEPLOYMENT
    )
    result = lint(document)
    [diagnostic] = by_code(result, "BF204")
    assert diagnostic.state == "ab"
    assert diagnostic.severity.value == "info"
    assert diagnostic.span.line == line_of(document, "from: svc")


def test_bf205_shadow_targets_live_version():
    document = (
        """\
strategy:
  name: t
  phases:
    - phase:
        name: a
        routes:
          - route:
              from: svc
              to: v2
              filters:
                - traffic:
                    percentage: 30
          - route:
              from: svc
              to: v2
              filters:
                - traffic:
                    percentage: 50
                    shadow: true
        next: done
    - final:
        name: done
"""
        + DEPLOYMENT
    )
    result = lint(document)
    [diagnostic] = by_code(result, "BF205")
    assert "duplicated load" in diagnostic.message


# -- BF3xx checks and metrics -------------------------------------------------


def test_bf301_malformed_query_golden():
    document = (
        """\
strategy:
  name: t
  phases:
    - phase:
        name: a
        checks:
          - metric:
              name: m
              query: "rate(http_requests_total"
              validator: "<5"
              intervalTime: 1
              intervalLimit: 2
        next: done
        onFailure: rollback
    - final:
        name: done
    - final:
        name: rollback
        rollback: true
"""
        + DEPLOYMENT
    )
    result = lint(document)
    [diagnostic] = by_code(result, "BF301")
    assert diagnostic.span.line == line_of(document, "query:")
    assert "does not compile" in diagnostic.message


def test_bf301_skips_non_prometheus_providers():
    document = (
        """\
strategy:
  name: t
  phases:
    - phase:
        name: a
        checks:
          - metric:
              name: m
              provider: health
              query: "127.0.0.1:9001"
              validator: ">0.5"
              intervalTime: 1
              intervalLimit: 2
        next: done
        onFailure: rollback
    - final:
        name: done
    - final:
        name: rollback
        rollback: true
"""
        + DEPLOYMENT
    )
    assert "BF301" not in codes(lint(document))


def test_bf302_zero_weight_check():
    document = (
        """\
strategy:
  name: t
  phases:
    - phase:
        name: a
        checks:
          - metric:
              name: useless
              query: up
              validator: "<5"
              intervalTime: 1
              intervalLimit: 2
              weight: 0
          - metric:
              name: carries
              query: up
              validator: "<5"
              intervalTime: 1
              intervalLimit: 2
        next: done
        onFailure: rollback
    - final:
        name: done
    - final:
        name: rollback
        rollback: true
"""
        + DEPLOYMENT
    )
    result = lint(document)
    [diagnostic] = by_code(result, "BF302")
    assert "'useless'" in diagnostic.message


def test_bf303_dead_outcome_range():
    # intervalLimit 4 bounds the aggregated result to [0, 4]; the range
    # (10, +inf) can never fire.
    document = (
        """\
strategy:
  name: t
  phases:
    - phase:
        name: a
        checks:
          - metric:
              name: m
              query: up
              validator: "<5"
              intervalTime: 1
              intervalLimit: 4
              thresholds: [10]
              outcomes: [0, 1]
        next: done
        onFailure: rollback
    - final:
        name: done
    - final:
        name: rollback
        rollback: true
"""
        + DEPLOYMENT
    )
    result = lint(document)
    [diagnostic] = by_code(result, "BF303")
    assert "can never fire" in diagnostic.message


def test_bf304_unguarded_exposure_on_exception_check():
    document = (
        """\
strategy:
  name: t
  phases:
    - phase:
        name: promoted
        routes:
          - route:
              from: svc
              to: v2
              filters:
                - traffic:
                    percentage: 80
        checks:
          - metric:
              name: guard
              type: exception
              fallback: rollback
              query: up
              validator: "<5"
              intervalTime: 1
              intervalLimit: 2
        next: done
    - final:
        name: done
    - final:
        name: rollback
        rollback: true
"""
        + DEPLOYMENT
    )
    result = lint(document)
    [diagnostic] = by_code(result, "BF304")
    assert "80%" in diagnostic.message
    assert diagnostic.fix is not None
    # Declaring a policy silences the rule.
    guarded = document.replace(
        "fallback: rollback", "fallback: rollback\n              onProviderError: tolerate(2)"
    )
    assert "BF304" not in codes(lint(guarded))


def test_bf305_unmonitored_exposure_golden():
    document = (
        """\
strategy:
  name: t
  phases:
    - phase:
        name: blind
        duration: 5
        routes:
          - route:
              from: svc
              to: v2
              filters:
                - traffic:
                    percentage: 25
        next: done
    - final:
        name: done
"""
        + DEPLOYMENT
    )
    result = lint(document)
    [diagnostic] = by_code(result, "BF305")
    assert diagnostic.state == "blind"
    assert "['v2']" in diagnostic.message
    assert diagnostic.span.line == line_of(document, "from: svc")


# -- BF4xx deployment and resilience ------------------------------------------


def test_bf401_safe_routing_unknown_version():
    builder = StrategyBuilder("t")
    builder.service("svc", {"v1": "h:1", "v2": "h:2"})
    builder.state("a").route("svc", canary_split("v1", "v2", 10.0)).dwell(1).goto(
        "done"
    )
    builder.state("done").route("svc", single_version("v2")).final()
    strategy = builder.build()
    bad_safe = {"svc": RoutingConfig(splits=[TrafficSplit("ghost", 100.0)])}
    result = lint_strategy(strategy, safe_routing=bad_safe)
    [diagnostic] = by_code(result, "BF401")
    assert "'ghost'" in diagnostic.message

    unknown_service = {"mystery": RoutingConfig(splits=[TrafficSplit("v1", 100.0)])}
    result = lint_strategy(strategy, safe_routing=unknown_service)
    [diagnostic] = by_code(result, "BF401")
    assert "'mystery'" in diagnostic.message


def test_bf402_final_state_with_checks():
    document = (
        """\
strategy:
  name: t
  phases:
    - phase:
        name: a
        next: done
    - final:
        name: done
        checks:
          - metric:
              name: dead
              query: up
              validator: "<5"
              intervalTime: 1
              intervalLimit: 2
"""
        + DEPLOYMENT
    )
    result = lint(document)
    [diagnostic] = by_code(result, "BF402")
    assert diagnostic.state == "done"
    # The compiler rejects checks on final phases, so BF002 fires too —
    # the document is both smelly and uncompilable.
    assert "BF002" in codes(result)


def test_bf403_shared_proxy_endpoint():
    document = """\
strategy:
  name: t
  phases:
    - phase:
        name: a
        duration: 1
        next: done
    - final:
        name: done
deployment:
  services:
    svc:
      proxy: 127.0.0.1:7001
      stable: v1
      versions:
        v1: 127.0.0.1:9001
    other:
      proxy: 127.0.0.1:7001
      stable: w1
      versions:
        w1: 127.0.0.1:9101
"""
    result = lint(document)
    [diagnostic] = by_code(result, "BF403")
    assert "share proxy endpoint" in diagnostic.message
    assert "'127.0.0.1:7001'" in diagnostic.message
