"""The interval abstract domain (lint/domains.py)."""

import math

from repro.lint.domains import (
    Interval,
    NON_NEGATIVE,
    TOP,
    UNIT,
    always_holds,
    interval_of,
    never_holds,
    selector_interval,
)
from repro.metrics.query import compile_query

INF = float("inf")


def bounds(query):
    interval = interval_of(compile_query(query))
    return interval.lo, interval.hi


# -- selector naming conventions --------------------------------------------


def test_counter_suffixes_are_non_negative():
    for name in ("errors_total", "requests_count", "latency_bucket"):
        assert selector_interval(name) == NON_NEGATIVE


def test_ratio_and_up_are_unit():
    assert selector_interval("saturation_ratio") == UNIT
    assert selector_interval("up") == UNIT


def test_unknown_names_are_unbounded():
    assert selector_interval("queue_depth") == TOP
    assert selector_interval("temperature") == TOP


# -- structural bounds -------------------------------------------------------


def test_rate_and_increase_are_non_negative_for_any_series():
    assert bounds("rate(queue_depth[1m])") == (0.0, INF)
    assert bounds("increase(errors_total[5m])") == (0.0, INF)


def test_count_over_time_is_at_least_one():
    assert bounds("count_over_time(up[1m])") == (1.0, INF)


def test_avg_over_time_preserves_selector_bounds():
    assert bounds("avg_over_time(saturation_ratio[1m])") == (0.0, 1.0)
    assert bounds("max_over_time(queue_depth[1m])") == (-INF, INF)


def test_histogram_quantile_is_non_negative():
    assert bounds("histogram_quantile(0.99, latency_bucket)") == (0.0, INF)


def test_sum_aggregation_keeps_closed_sign_side():
    assert bounds("sum(errors_total)") == (0.0, INF)
    assert bounds("sum(queue_depth)") == (-INF, INF)


def test_count_aggregation_never_sees_empty_vector():
    # An empty vector aggregates to "no data", not 0 — count >= 1.
    assert bounds("count(queue_depth)") == (1.0, INF)


def test_scalar_is_a_point():
    assert bounds("42") == (42.0, 42.0)


# -- interval arithmetic -----------------------------------------------------


def test_arithmetic_follows_the_operands():
    assert bounds("errors_total + 5") == (5.0, INF)
    assert bounds("saturation_ratio * 100") == (0.0, 100.0)
    assert bounds("0 - errors_total") == (-INF, 0.0)


def test_division_by_interval_containing_zero_reaches_inf():
    # The evaluator maps x/0 to +inf, so the bound must include it.
    lo, hi = bounds("errors_total / requests_total")
    assert (lo, hi) == (0.0, INF)


def test_division_by_strictly_positive_scalar_stays_bounded():
    assert bounds("saturation_ratio / 2") == (0.0, 0.5)


def test_zero_times_infinity_is_zero_endpoint():
    # [0, inf) * [0, inf) must be [0, inf), not NaN at the endpoints.
    lo, hi = bounds("errors_total * requests_total")
    assert (lo, hi) == (0.0, INF)
    assert not math.isnan(lo) and not math.isnan(hi)


# -- validator decisions -----------------------------------------------------


def test_never_holds_per_operator():
    nn = NON_NEGATIVE
    assert never_holds(nn, "<", 0.0)          # value < 0 impossible
    assert never_holds(nn, "<=", -1.0)
    assert never_holds(UNIT, ">", 1.0)
    assert never_holds(UNIT, ">=", 1.5)
    assert never_holds(UNIT, "==", 2.0)
    assert never_holds(Interval(3.0, 3.0), "!=", 3.0)
    assert not never_holds(nn, "<", 50.0)
    assert not never_holds(TOP, "<", 0.0)


def test_always_holds_per_operator():
    assert always_holds(UNIT, "<", 50.0)
    assert always_holds(UNIT, "<=", 1.0)
    assert always_holds(NON_NEGATIVE, ">=", 0.0)
    assert always_holds(Interval(2.0, INF), ">", 1.0)
    assert always_holds(Interval(3.0, 3.0), "==", 3.0)
    assert always_holds(UNIT, "!=", 7.0)
    assert not always_holds(NON_NEGATIVE, "<", 50.0)
    assert not always_holds(TOP, "!=", 0.0)


def test_nan_bound_decides_nothing():
    nan = float("nan")
    assert not never_holds(UNIT, "<", nan)
    assert not always_holds(UNIT, "<", nan)


def test_a_validator_is_never_both_unsatisfiable_and_tautological():
    intervals = [TOP, UNIT, NON_NEGATIVE, Interval(3.0, 3.0), Interval(-2.0, 5.0)]
    for interval in intervals:
        for op in ("<", "<=", ">", ">=", "==", "!="):
            for bound in (-1.0, 0.0, 0.5, 1.0, 3.0, 100.0):
                assert not (
                    never_holds(interval, op, bound)
                    and always_holds(interval, op, bound)
                ), (interval, op, bound)


def test_interval_str_is_readable():
    assert str(UNIT) == "[0, 1]"
    assert str(NON_NEGATIVE) == "[0, +inf]"
    assert str(Interval(-INF, 2.5)) == "[-inf, 2.5]"
