"""Unit tests for the diagnostics framework: severities, spans, config."""

import pytest

from repro.lint import Diagnostic, LintConfig, LintConfigError, Severity, SourceSpan
from repro.lint.diagnostics import code_matches


# -- Severity ----------------------------------------------------------------


def test_severity_ordering_by_rank():
    assert Severity.ERROR.rank < Severity.WARNING.rank < Severity.INFO.rank


def test_severity_parse():
    assert Severity.parse("error") is Severity.ERROR
    assert Severity.parse("WARNING") is Severity.WARNING
    with pytest.raises(ValueError, match="unknown severity"):
        Severity.parse("fatal")


# -- SourceSpan / Diagnostic rendering --------------------------------------


def test_span_str_with_and_without_line():
    assert str(SourceSpan(line=7, file="s.yaml")) == "s.yaml:7"
    assert str(SourceSpan(file="s.yaml")) == "s.yaml"
    assert str(SourceSpan(line=3)) == "<strategy>:3"


def test_diagnostic_str_contains_code_name_state_and_location():
    diagnostic = Diagnostic(
        code="BF104",
        name="no-rollback",
        severity=Severity.ERROR,
        message="nowhere safe to go",
        span=SourceSpan(line=12, file="s.yaml"),
        state="canary",
    )
    text = str(diagnostic)
    assert "s.yaml:12" in text
    assert "BF104" in text
    assert "no-rollback" in text
    assert "canary" in text
    assert "nowhere safe to go" in text


def test_diagnostic_to_dict_round_trips_fields():
    diagnostic = Diagnostic(
        code="BF301",
        name="bad-metric-query",
        severity=Severity.ERROR,
        message="m",
        span=SourceSpan(line=4, file="x.yaml"),
        fix="fix the query",
    )
    payload = diagnostic.to_dict()
    assert payload["code"] == "BF301"
    assert payload["severity"] == "error"
    assert payload["line"] == 4
    assert payload["file"] == "x.yaml"
    assert payload["fix"] == "fix the query"
    assert "state" not in payload  # omitted when absent


# -- LintConfig --------------------------------------------------------------


def test_code_matches_exact_and_prefix():
    assert code_matches("BF301", frozenset({"BF301"}))
    assert code_matches("BF301", frozenset({"BF3"}))
    assert not code_matches("BF301", frozenset({"BF302", "BF4"}))


def test_config_select_and_ignore():
    config = LintConfig(select=frozenset({"BF1"}), ignore=frozenset({"BF104"}))
    assert config.enabled("BF101")
    assert not config.enabled("BF104")  # ignored wins inside the selection
    assert not config.enabled("BF301")  # outside the selection


def test_config_from_flags_splits_commas_and_uppercases():
    config = LintConfig.from_flags(select=["bf1,bf301", "BF2"], ignore=None)
    assert config.select == frozenset({"BF1", "BF301", "BF2"})


def test_config_merged_cli_wins():
    document = LintConfig(
        select=frozenset({"BF1"}),
        ignore=frozenset({"BF104"}),
        severities={"BF305": Severity.ERROR},
        max_unguarded_exposure=25.0,
    )
    cli = LintConfig(select=frozenset({"BF3"}), ignore=frozenset({"BF301"}))
    merged = document.merged(cli)
    assert merged.select == frozenset({"BF3"})  # CLI replaces
    assert merged.ignore == frozenset({"BF104", "BF301"})  # ignores union
    assert merged.severities == {"BF305": Severity.ERROR}
    assert merged.max_unguarded_exposure == 25.0


def test_config_from_document_full_section():
    config = LintConfig.from_document(
        {
            "select": ["BF1", "BF305"],
            "ignore": ["BF104"],
            "severity": {"BF305": "error"},
            "options": {"maxUnguardedExposure": 10},
        }
    )
    assert config.enabled("BF101")
    assert not config.enabled("BF104")
    assert config.severity_of("BF305", Severity.WARNING) is Severity.ERROR
    assert config.max_unguarded_exposure == 10.0


@pytest.mark.parametrize(
    "section",
    [
        ["BF1"],  # not a mapping
        {"unknown_key": 1},
        {"select": "BF1"},  # not a list
        {"select": [42]},
        {"severity": {"BF305": "fatal"}},
        {"options": {"maxUnguardedExposure": "high"}},
        {"options": {"bogus": 1}},
    ],
)
def test_config_from_document_rejects_malformed_sections(section):
    with pytest.raises(LintConfigError):
        LintConfig.from_document(section)
