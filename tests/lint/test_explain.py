"""`bifrost explain` and the docs/lint.md catalogue drift test."""

from repro.lint.catalogue import catalogue_path, explain, load_catalogue
from repro.lint.registry import RULES


def test_catalogue_file_exists_and_parses():
    assert catalogue_path().is_file()
    entries = load_catalogue()
    assert entries, "no catalogue rows parsed from docs/lint.md"


def test_every_registered_rule_has_a_catalogue_entry():
    entries = load_catalogue()
    missing = sorted(set(RULES) - set(entries))
    assert not missing, (
        f"rules without a docs/lint.md catalogue row: {missing} — "
        "add them to the rule catalogue tables"
    )


def test_every_catalogue_entry_names_a_registered_rule():
    entries = load_catalogue()
    stale = sorted(set(entries) - set(RULES))
    assert not stale, (
        f"docs/lint.md documents unregistered rules: {stale} — "
        "remove the rows or register the rules"
    )


def test_catalogue_names_and_severities_match_the_registry():
    entries = load_catalogue()
    for code, rule in RULES.items():
        entry = entries[code]
        assert entry.name == rule.name, (
            f"{code}: docs say {entry.name!r}, registry says {rule.name!r}"
        )
        assert rule.severity.value in entry.severity, (
            f"{code}: docs say {entry.severity!r}, registry says "
            f"{rule.severity.value!r}"
        )
        if rule.blocking:
            assert "⛔" in entry.severity, (
                f"{code} is blocking but its docs row lacks the ⛔ marker"
            )


def test_explain_renders_registry_and_docs():
    rendered = explain("bf605")
    assert rendered is not None
    assert rendered.startswith("BF605 — chaos-hypothesis-contradiction")
    assert "blocks enactment" in rendered
    assert "docs:" in rendered
    assert "drift" not in rendered


def test_explain_unknown_code_returns_none():
    assert explain("BF999") is None
    assert explain("nonsense") is None


def test_explain_cli_command():
    from repro.cli.main import main

    assert main(["explain", "BF601"]) == 0
    assert main(["explain", "BF999"]) == 1
