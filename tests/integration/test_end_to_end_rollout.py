"""End-to-end: DSL document -> engine -> proxies -> case-study app.

The full stack at miniature scale: real HTTP between every component
(engine→proxy admin, engine→metrics queries, proxy→services,
services→auth/db), a DSL-defined strategy, and live traffic flowing
throughout the rollout.
"""

import asyncio

from repro.casestudy import build_case_study
from repro.core import Engine, EventKind, ExecutionStatus
from repro.dsl import compile_document
from repro.httpcore import HttpClient
from repro.metrics import HttpPrometheusProvider
from repro.proxy import HttpProxyController

DOC_TEMPLATE = """
strategy:
  name: fastsearch-e2e
  phases:
    - phase:
        name: canary
        routes:
          - route:
              from: search
              to: fastSearch
              filters:
                - traffic:
                    percentage: 20
        checks:
          - metric:
              name: errors
              provider: prometheus
              query: increase(request_errors{{instance="fastSearch"}}[2s])
              intervalTime: 0.5
              intervalLimit: 4
              threshold: 3
              validator: "<3"
        next: ramp
        onFailure: rollback
    - rollout:
        name: ramp
        from: search
        to: fastSearch
        startPercentage: 50
        stepPercentage: 25
        targetPercentage: 100
        intervalTime: 0.4
        next: done
    - final:
        name: done
        routes:
          - route:
              from: search
              to: fastSearch
              filters:
                - traffic:
                    percentage: 100
    - final:
        name: rollback
        rollback: true
        routes:
          - route:
              from: search
              to: search
              filters:
                - traffic:
                    percentage: 100
deployment:
  services:
    search:
      proxy: {proxy}
      stable: search
      versions:
        search: {search}
        fastSearch: {fast}
"""


async def run_stack(break_fast_search: bool = False):
    app = await build_case_study(scrape_interval=0.2)
    token = await app.issue_token()
    if break_fast_search:
        # Failure injection: the new version starts erroring under load.
        fast = app.search_versions["fastSearch"]

        async def broken(request):
            fast.request_errors.inc()
            from repro.httpcore import Response

            return Response.from_json({"error": "broken algorithm"}, 500)

        fast.router._routes = []
        fast.router.set_fallback(broken)

    document = DOC_TEMPLATE.format(
        proxy=app.search_proxy.address,
        search=app.search_versions["search"].address,
        fast=app.search_versions["fastSearch"].address,
    )
    compiled = compile_document(document)

    stop = asyncio.Event()

    async def browse():
        async with HttpClient() as client:
            headers = {"Authorization": f"Bearer {token}"}
            while not stop.is_set():
                await client.get(
                    f"http://{app.entry_address}/search?q=Laptop", headers=headers
                )
                await asyncio.sleep(0.02)

    load = asyncio.ensure_future(browse())

    controller = HttpProxyController(compiled.deployment.proxies())
    engine = Engine(controller=controller)
    engine.register_provider(
        "prometheus", HttpPrometheusProvider(f"http://{app.metrics.address}")
    )
    execution_id = engine.enact(compiled.strategy)
    report = await engine.wait(execution_id)
    stop.set()
    await load
    return app, engine, controller, report


async def teardown(app, engine, controller):
    await engine.shutdown()
    await controller.close()
    await app.stop()


async def test_healthy_rollout_reaches_full_fastsearch():
    app, engine, controller, report = await run_stack()
    try:
        assert report.status is ExecutionStatus.COMPLETED
        assert report.path == ["canary", "ramp-50", "ramp-75", "ramp-100", "done"]
        # The proxy ends up routing 100% to fastSearch.
        config = app.search_proxy.active_config
        assert config is not None
        assert config.splits[0].version == "fastSearch"
        assert config.splits[0].percentage == 100.0
        # fastSearch actually served traffic during the rollout.
        assert app.search_versions["fastSearch"].searches_total.value > 0
        # The event stream covered the whole lifecycle.
        kinds = [event.kind for event in engine.bus.history]
        assert kinds[0] is EventKind.STRATEGY_STARTED
        assert kinds[-1] is EventKind.STRATEGY_COMPLETED
        assert EventKind.CHECK_EXECUTED in kinds
    finally:
        await teardown(app, engine, controller)


async def test_broken_canary_rolls_back_to_stable():
    app, engine, controller, report = await run_stack(break_fast_search=True)
    try:
        assert report.status is ExecutionStatus.ROLLED_BACK
        assert report.path == ["canary", "rollback"]
        config = app.search_proxy.active_config
        assert config.splits[0].version == "search"
        assert config.splits[0].percentage == 100.0
    finally:
        await teardown(app, engine, controller)
