"""Failure injection: the middleware under broken dependencies.

Live testing exists to contain failures; the middleware itself must
behave sanely when its own dependencies break: unreachable metrics
providers, dying proxies, crashing upstreams mid-flight.
"""

import asyncio

import pytest

from repro.core import (
    Engine,
    ExceptionCheck,
    ExecutionStatus,
    MetricCondition,
    StrategyBuilder,
    Timer,
    canary_split,
    simple_basic_check,
    single_version,
)
from repro.httpcore import HttpClient, HttpServer, Response
from repro.metrics import HttpPrometheusProvider, MetricsServer
from repro.proxy import BifrostProxy, HttpProxyController, LocalProxyController


def canary_strategy(endpoints, interval=0.1, repetitions=3):
    builder = StrategyBuilder("failure-test")
    builder.service("svc", endpoints)
    builder.state("canary").route("svc", canary_split("stable", "canary", 10.0)).check(
        simple_basic_check(
            "health", "up_metric", ">0", interval, repetitions, provider="prometheus"
        )
    ).transitions([0.5], ["rollback", "done"])
    builder.state("done").route("svc", single_version("canary")).final()
    builder.state("rollback").route("svc", single_version("stable")).final(
        rollback=True
    )
    return builder.build()


async def test_unreachable_metrics_provider_causes_rollback_not_crash():
    """Checks against a dead Prometheus fail; the strategy rolls back."""
    proxy = BifrostProxy("svc", default_upstream="127.0.0.1:1")
    controller = LocalProxyController({"svc": proxy})
    engine = Engine(controller=controller)
    engine.register_provider(
        "prometheus", HttpPrometheusProvider("http://127.0.0.1:1")
    )
    strategy = canary_strategy({"stable": "h:1", "canary": "h:2"})
    execution_id = engine.enact(strategy)
    report = await engine.wait(execution_id)
    assert report.status is ExecutionStatus.ROLLED_BACK
    assert report.path == ["canary", "rollback"]
    await engine.shutdown()


async def test_metrics_server_dying_mid_strategy_rolls_back():
    metrics = MetricsServer()
    await metrics.start(scrape=False)
    metrics.store.record("up_metric", 1.0, metrics.clock.now())
    proxy = BifrostProxy("svc", default_upstream="127.0.0.1:1")
    controller = LocalProxyController({"svc": proxy})
    engine = Engine(controller=controller)
    engine.register_provider(
        "prometheus", HttpPrometheusProvider(f"http://{metrics.address}")
    )
    strategy = canary_strategy(
        {"stable": "h:1", "canary": "h:2"}, interval=0.15, repetitions=4
    )
    execution_id = engine.enact(strategy)
    await asyncio.sleep(0.2)  # first executions succeed
    await metrics.stop()  # Prometheus dies mid-phase
    report = await engine.wait(execution_id)
    # Remaining executions fail -> aggregated below threshold -> rollback.
    assert report.status is ExecutionStatus.ROLLED_BACK
    await engine.shutdown()


async def test_unreachable_proxy_fails_the_execution():
    """Routing cannot be applied: enactment fails loudly, not silently."""
    controller = HttpProxyController({"svc": "127.0.0.1:1"})
    engine = Engine(controller=controller)
    strategy = canary_strategy({"stable": "h:1", "canary": "h:2"})
    execution_id = engine.enact(strategy)
    report = await engine.wait(execution_id)
    assert report.status is ExecutionStatus.FAILED
    assert "unreachable" in report.error
    await engine.shutdown()
    await controller.close()


async def test_exception_check_fires_when_service_starts_erroring():
    """An exception check reacts to a mid-phase failure within one tick."""
    upstream_healthy = True
    metrics = MetricsServer()
    await metrics.start(scrape=False)

    async def feed_metrics():
        while True:
            metrics.store.record(
                "error_rate",
                0.0 if upstream_healthy else 100.0,
                metrics.clock.now(),
            )
            await asyncio.sleep(0.05)

    feeder = asyncio.ensure_future(feed_metrics())
    proxy = BifrostProxy("svc", default_upstream="127.0.0.1:1")
    controller = LocalProxyController({"svc": proxy})
    engine = Engine(controller=controller)
    engine.register_provider(
        "prometheus", HttpPrometheusProvider(f"http://{metrics.address}")
    )

    builder = StrategyBuilder("guarded")
    builder.service("svc", {"stable": "h:1", "canary": "h:2"})
    builder.state("canary").route("svc", canary_split("stable", "canary", 10.0)).check(
        ExceptionCheck(
            "guard",
            MetricCondition.simple("error_rate", "<50", provider="prometheus"),
            Timer(0.1, 50),  # nominal 5s phase
            fallback_state="rollback",
        )
    ).transitions([0], ["rollback", "done"])
    builder.state("done").route("svc", single_version("canary")).final()
    builder.state("rollback").route("svc", single_version("stable")).final(
        rollback=True
    )
    strategy = builder.build()

    execution_id = engine.enact(strategy)
    await asyncio.sleep(0.4)
    upstream_healthy = False  # the canary melts down mid-phase
    report = await engine.wait(execution_id)
    feeder.cancel()
    assert report.status is ExecutionStatus.ROLLED_BACK
    assert report.visits[0].via_exception
    # Preempted: far sooner than the nominal 5 s phase.
    assert report.duration < 3.0
    await engine.shutdown()
    await metrics.stop()


async def test_proxy_serves_stable_while_upstream_canary_dies():
    """A dead canary instance yields 502s for its share, but the stable
    version keeps serving — the blast radius stays at the canary split."""
    stable = HttpServer()
    stable.router.set_fallback(lambda r: _ok("stable"))
    await stable.start()
    canary = HttpServer()
    canary.router.set_fallback(lambda r: _ok("canary"))
    await canary.start()
    proxy = BifrostProxy("svc", default_upstream=stable.address)
    await proxy.start()
    endpoints = {"stable": stable.address, "canary": canary.address}
    proxy.apply_config(canary_split("stable", "canary", 50.0), endpoints)
    await canary.stop()  # the canary dies

    async with HttpClient() as client:
        statuses = []
        for i in range(60):
            response = await client.get(
                f"http://{proxy.address}/x",
                headers={"Cookie": f"bifrost_client=user-{i}"},
            )
            statuses.append(response.status)
    assert 200 in statuses  # stable share unaffected
    assert 502 in statuses  # canary share fails visibly
    assert statuses.count(200) > 10
    await proxy.stop()
    await stable.stop()


async def _ok(tag):
    return Response.from_json({"version": tag})
