"""Failure injection: the middleware under broken dependencies.

Live testing exists to contain failures; the middleware itself must
behave sanely when its own dependencies break: unreachable metrics
providers, dying proxies, crashing upstreams mid-flight.

The second half of this module drives the resilience layer end-to-end
with the deterministic fault toolkit (:mod:`repro.resilience.faults`)
under a virtual clock: flaky providers ride through retries, dead
providers open the circuit breaker and roll the strategy back, and a
crashing controller still leaves every touched service on its safe
routing.
"""

import asyncio
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.clock import VirtualClock
from repro.core import (
    Engine,
    EventKind,
    ExceptionCheck,
    ExecutionStatus,
    MetricCondition,
    ProviderErrorPolicy,
    RecordingController,
    StrategyBuilder,
    Timer,
    canary_split,
    simple_basic_check,
    single_version,
)
from repro.httpcore import HttpClient, HttpServer, Response
from repro.metrics import HttpPrometheusProvider, MetricsServer, StaticProvider
from repro.proxy import BifrostProxy, HttpProxyController, LocalProxyController
from repro.resilience import (
    BreakerState,
    CircuitBreaker,
    FaultSchedule,
    FaultyController,
    FaultyProvider,
    ResilientProvider,
    RetryPolicy,
)


def canary_strategy(endpoints, interval=0.1, repetitions=3):
    builder = StrategyBuilder("failure-test")
    builder.service("svc", endpoints)
    builder.state("canary").route("svc", canary_split("stable", "canary", 10.0)).check(
        simple_basic_check(
            "health", "up_metric", ">0", interval, repetitions, provider="prometheus"
        )
    ).transitions([0.5], ["rollback", "done"])
    builder.state("done").route("svc", single_version("canary")).final()
    builder.state("rollback").route("svc", single_version("stable")).final(
        rollback=True
    )
    return builder.build()


async def test_unreachable_metrics_provider_causes_rollback_not_crash():
    """Checks against a dead Prometheus fail; the strategy rolls back."""
    proxy = BifrostProxy("svc", default_upstream="127.0.0.1:1")
    controller = LocalProxyController({"svc": proxy})
    engine = Engine(controller=controller)
    engine.register_provider(
        "prometheus", HttpPrometheusProvider("http://127.0.0.1:1")
    )
    strategy = canary_strategy({"stable": "h:1", "canary": "h:2"})
    execution_id = engine.enact(strategy)
    report = await engine.wait(execution_id)
    assert report.status is ExecutionStatus.ROLLED_BACK
    assert report.path == ["canary", "rollback"]
    await engine.shutdown()


async def test_metrics_server_dying_mid_strategy_rolls_back():
    metrics = MetricsServer()
    await metrics.start(scrape=False)
    metrics.store.record("up_metric", 1.0, metrics.clock.now())
    proxy = BifrostProxy("svc", default_upstream="127.0.0.1:1")
    controller = LocalProxyController({"svc": proxy})
    engine = Engine(controller=controller)
    engine.register_provider(
        "prometheus", HttpPrometheusProvider(f"http://{metrics.address}")
    )
    strategy = canary_strategy(
        {"stable": "h:1", "canary": "h:2"}, interval=0.15, repetitions=4
    )
    execution_id = engine.enact(strategy)
    await asyncio.sleep(0.2)  # first executions succeed
    await metrics.stop()  # Prometheus dies mid-phase
    report = await engine.wait(execution_id)
    # Remaining executions fail -> aggregated below threshold -> rollback.
    assert report.status is ExecutionStatus.ROLLED_BACK
    await engine.shutdown()


async def test_unreachable_proxy_fails_the_execution():
    """Routing cannot be applied: enactment fails loudly, not silently."""
    controller = HttpProxyController({"svc": "127.0.0.1:1"})
    engine = Engine(controller=controller)
    strategy = canary_strategy({"stable": "h:1", "canary": "h:2"})
    execution_id = engine.enact(strategy)
    report = await engine.wait(execution_id)
    assert report.status is ExecutionStatus.FAILED
    assert "unreachable" in report.error
    await engine.shutdown()
    await controller.close()


async def test_exception_check_fires_when_service_starts_erroring():
    """An exception check reacts to a mid-phase failure within one tick."""
    upstream_healthy = True
    metrics = MetricsServer()
    await metrics.start(scrape=False)

    async def feed_metrics():
        while True:
            metrics.store.record(
                "error_rate",
                0.0 if upstream_healthy else 100.0,
                metrics.clock.now(),
            )
            await asyncio.sleep(0.05)

    feeder = asyncio.ensure_future(feed_metrics())
    proxy = BifrostProxy("svc", default_upstream="127.0.0.1:1")
    controller = LocalProxyController({"svc": proxy})
    engine = Engine(controller=controller)
    engine.register_provider(
        "prometheus", HttpPrometheusProvider(f"http://{metrics.address}")
    )

    builder = StrategyBuilder("guarded")
    builder.service("svc", {"stable": "h:1", "canary": "h:2"})
    builder.state("canary").route("svc", canary_split("stable", "canary", 10.0)).check(
        ExceptionCheck(
            "guard",
            MetricCondition.simple("error_rate", "<50", provider="prometheus"),
            Timer(0.1, 50),  # nominal 5s phase
            fallback_state="rollback",
        )
    ).transitions([0], ["rollback", "done"])
    builder.state("done").route("svc", single_version("canary")).final()
    builder.state("rollback").route("svc", single_version("stable")).final(
        rollback=True
    )
    strategy = builder.build()

    execution_id = engine.enact(strategy)
    await asyncio.sleep(0.4)
    upstream_healthy = False  # the canary melts down mid-phase
    report = await engine.wait(execution_id)
    feeder.cancel()
    assert report.status is ExecutionStatus.ROLLED_BACK
    assert report.visits[0].via_exception
    # Preempted: far sooner than the nominal 5 s phase.
    assert report.duration < 3.0
    await engine.shutdown()
    await metrics.stop()


async def test_proxy_serves_stable_while_upstream_canary_dies():
    """A dead canary instance yields 502s for its share, but the stable
    version keeps serving — the blast radius stays at the canary split."""
    stable = HttpServer()
    stable.router.set_fallback(lambda r: _ok("stable"))
    await stable.start()
    canary = HttpServer()
    canary.router.set_fallback(lambda r: _ok("canary"))
    await canary.start()
    proxy = BifrostProxy("svc", default_upstream=stable.address)
    await proxy.start()
    endpoints = {"stable": stable.address, "canary": canary.address}
    proxy.apply_config(canary_split("stable", "canary", 50.0), endpoints)
    await canary.stop()  # the canary dies

    async with HttpClient() as client:
        statuses = []
        for i in range(60):
            response = await client.get(
                f"http://{proxy.address}/x",
                headers={"Cookie": f"bifrost_client=user-{i}"},
            )
            statuses.append(response.status)
    assert 200 in statuses  # stable share unaffected
    assert 502 in statuses  # canary share fails visibly
    assert statuses.count(200) > 10
    await proxy.stop()
    await stable.stop()


async def _ok(tag):
    return Response.from_json({"version": tag})


# -- resilience layer end-to-end (virtual clock, fault toolkit) -----------


def guarded_canary(policy=None, repetitions=5):
    """Canary guarded by an exception check; rollback is the safe harbor."""
    builder = StrategyBuilder("resilient-canary")
    builder.service("svc", {"stable": "h:1", "canary": "h:2"})
    check = ExceptionCheck(
        "guard",
        MetricCondition.simple("up_metric", ">0", provider="static"),
        Timer(1.0, repetitions),
        fallback_state="rollback",
        on_provider_error=policy or ProviderErrorPolicy(),
    )
    builder.state("canary").route(
        "svc", canary_split("stable", "canary", 10.0)
    ).check(check).transitions([0], ["rollback", "done"])
    builder.state("done").route("svc", single_version("canary")).final()
    builder.state("rollback").route("svc", single_version("stable")).final(
        rollback=True
    )
    return builder.build()


async def drive(engine, clock, execution_id, step=0.5, limit=400):
    task = asyncio.ensure_future(engine.wait(execution_id))
    for _ in range(limit):
        if task.done():
            break
        await clock.advance(step)
    assert task.done(), "execution did not finish while driving the clock"
    return task.result()


async def test_flaky_provider_canary_completes_under_retry():
    """1-of-3 queries failing is a flaky dependency, not a bad release."""
    started = time.monotonic()
    clock = VirtualClock()
    flaky = FaultyProvider(
        StaticProvider({"up_metric": 1.0}), FaultSchedule.every(3), clock
    )
    engine = Engine(controller=RecordingController(), clock=clock)
    engine.register_provider(
        "static",
        ResilientProvider(flaky, clock, bus=engine.bus, retry=RetryPolicy(seed=7)),
    )
    execution_id = engine.enact(guarded_canary())
    await asyncio.sleep(0)
    report = await drive(engine, clock, execution_id)
    assert report.status is ExecutionStatus.COMPLETED
    assert report.path == ["canary", "done"]
    # The flakiness was real (injections happened, retries fired) ...
    assert flaky.injected
    assert engine.bus.of_kind(EventKind.PROVIDER_RETRY)
    # ... and the whole run cost virtually no wall time.
    assert time.monotonic() - started < 1.0


async def test_dead_provider_opens_breaker_and_rolls_back_to_safe_routing():
    """A permanently dead provider must end ROLLED_BACK with the breaker
    open and the touched service restored to stable — never FAILED."""
    started = time.monotonic()
    clock = VirtualClock()
    dead = FaultyProvider(
        StaticProvider({"up_metric": 1.0}), FaultSchedule.always(), clock
    )
    breaker = CircuitBreaker(
        clock, window=10, failure_rate=0.5, min_calls=3, cooldown=120.0
    )
    controller = RecordingController()
    engine = Engine(controller=controller, clock=clock)
    engine.register_provider(
        "static",
        ResilientProvider(
            dead,
            clock,
            bus=engine.bus,
            retry=RetryPolicy(attempts=2, base_delay=0.2, seed=3),
            breaker=breaker,
        ),
    )
    # Tolerate one blip so the breaker demonstrably opens *before* the
    # exception policy gives up and triggers the rollback.
    strategy = guarded_canary(ProviderErrorPolicy(mode="tolerate", tolerance=1))
    execution_id = engine.enact(strategy)
    await asyncio.sleep(0)
    report = await drive(engine, clock, execution_id)
    assert report.status is ExecutionStatus.ROLLED_BACK
    assert report.path == ["canary", "rollback"]
    assert report.visits[0].via_exception
    assert breaker.state is BreakerState.OPEN
    assert engine.bus.of_kind(EventKind.CIRCUIT_OPENED)
    # The rollback state's routing drove the service back to stable.
    assert controller.latest_for("svc") == single_version("stable")
    assert time.monotonic() - started < 1.0


async def test_controller_death_mid_strategy_restores_safe_routing():
    """The proxy controller crashing mid-enactment must not strand the
    canary split: recovery drives the service to the rollback routing."""
    clock = VirtualClock()
    recording = RecordingController()
    # Apply 1 (canary split) works; apply 2 (the transition after the
    # check phase) crashes; the recovery apply works again.
    controller = FaultyController(recording, FaultSchedule.calls({2}), clock)
    engine = Engine(controller=controller, clock=clock)
    engine.register_provider("static", StaticProvider({"up_metric": 1.0}))
    execution_id = engine.enact(guarded_canary())
    await asyncio.sleep(0)
    report = await drive(engine, clock, execution_id)
    assert report.status is ExecutionStatus.FAILED
    assert recording.latest_for("svc") == single_version("stable")
    applied = engine.bus.of_kind(EventKind.SAFE_ROUTING_APPLIED)
    assert [event.data["service"] for event in applied] == ["svc"]


async def test_breaker_lifecycle_closed_open_half_open_closed():
    """An outage window exercises the full breaker state machine."""
    clock = VirtualClock()
    # Down between t=2 and t=8, healthy before and after.
    outage = FaultyProvider(
        StaticProvider({"up_metric": 1.0}), FaultSchedule.during(2.0, 8.0), clock
    )
    bus_engine = Engine(clock=clock)
    breaker = CircuitBreaker(
        clock, window=4, failure_rate=0.5, min_calls=2, cooldown=5.0
    )
    provider = ResilientProvider(
        outage,
        clock,
        bus=bus_engine.bus,
        retry=RetryPolicy(attempts=1, seed=0),
        breaker=breaker,
    )

    async def poll():
        try:
            return await provider.query("up_metric")
        except Exception:
            return None

    results = []
    for _ in range(16):
        task = asyncio.ensure_future(poll())
        await clock.advance(1.0)
        results.append(task.result() if task.done() else await task)
    kinds = [event.kind for event in bus_engine.bus.history]
    assert EventKind.CIRCUIT_OPENED in kinds
    assert EventKind.CIRCUIT_HALF_OPEN in kinds
    assert EventKind.CIRCUIT_CLOSED in kinds
    assert breaker.state is BreakerState.CLOSED
    assert results[0] == 1.0 and results[-1] == 1.0


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31), key=st.text(max_size=16))
def test_retry_backoff_schedule_is_deterministic_per_seed(seed, key):
    policy = RetryPolicy(attempts=6, base_delay=0.25, jitter=0.5, seed=seed)
    assert policy.schedule(key) == policy.schedule(key)
    replica = RetryPolicy(attempts=6, base_delay=0.25, jitter=0.5, seed=seed)
    assert replica.schedule(key) == policy.schedule(key)
    undithered = RetryPolicy(attempts=6, base_delay=0.25, jitter=0.0, seed=seed)
    for jittered, raw in zip(policy.schedule(key), undithered.schedule(key)):
        assert raw * 0.5 <= jittered <= raw
