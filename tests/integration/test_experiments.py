"""Smoke tests for the experiment harnesses at tiny scale.

The benchmarks run these harnesses at larger scale; here we assert the
structural properties cheaply so `pytest tests/` alone covers them.
"""

import math

from repro.analysis import (
    format_cpu_figure,
    format_delay_figure,
    format_figure6,
    format_table1,
    many_checks_strategy,
    nominal_release_duration,
    release_strategy,
    run_many_checks,
    run_overhead_variant,
    run_parallel_strategies,
    scalability_strategy,
)
from repro.core import ExecutionStatus


ENDPOINTS = {"product": "h:1", "product_a": "h:2", "product_b": "h:3"}


def test_release_strategy_structure():
    strategy = release_strategy(ENDPOINTS, scale=1.0)
    automaton = strategy.automaton
    # canary + dark + ab + 2x20 rollout states + 3 final states.
    assert len(automaton.states) == 3 + 40 + 3
    assert automaton.start == "canary"
    assert automaton.final_states == {"done-a", "done-b", "abort"}
    assert automaton.state("abort").rollback
    # Canary has the two error checks re-executed 5 times over the phase.
    canary = automaton.state("canary")
    assert len(canary.checks) == 2
    assert canary.checks[0].timer.repetitions == 5
    # The dark state duplicates traffic to both candidates.
    dark = automaton.state("dark")
    assert len(dark.routing["product"].shadows) == 2
    # Nominal duration matches the paper's 380 s.
    assert nominal_release_duration(1.0) == 380.0


def test_scalability_strategy_structure():
    strategy = scalability_strategy(
        {"product": "h:1", "product_a": "h:2"}, scale=1.0
    )
    automaton = strategy.automaton
    # canary + dark + ab + 10 rollout + done + abort = 15 states.
    assert len(automaton.states) == 15
    happy_path = ["canary", "dark", "ab-test"] + [
        f"rollout-{p:g}" for p in range(10, 101, 10)
    ] + ["done"]
    assert automaton.nominal_path_duration(happy_path) == 280.0


def test_many_checks_strategy_structure():
    strategy = many_checks_strategy(
        {"product": "h:1"}, replication=3, scale=1.0
    )
    automaton = strategy.automaton
    for phase in ("phase-1", "phase-2"):
        checks = automaton.state(phase).checks
        assert len(checks) == 24  # 8 * 3
        health = [c for c in checks if c.condition.queries[0].provider == "health"]
        prometheus = [
            c for c in checks if c.condition.queries[0].provider == "prometheus"
        ]
        assert len(health) == 9  # 3 per block
        assert len(prometheus) == 15  # 5 per block


def test_release_strategy_is_dsl_expressible():
    """The whole evaluation strategy survives serialize -> compile, so it
    could be version-controlled as a document like the paper advocates."""
    from repro.dsl import DeployedService, Deployment, compile_document, serialize

    strategy = release_strategy(ENDPOINTS, scale=1.0)
    deployment = Deployment()
    deployment.services["product"] = DeployedService(
        name="product", proxy="127.0.0.1:7001", stable="product",
        versions=dict(ENDPOINTS),
    )
    compiled = compile_document(serialize(strategy, deployment))
    restored = compiled.strategy.automaton
    assert set(restored.states) == set(strategy.automaton.states)
    ab = restored.state("ab-test")
    assert ab.checks[0].condition.comparison is not None
    assert ab.transitions.targets == ("rollout-b-5", "rollout-a-5")


async def test_overhead_baseline_variant_smoke():
    run = await run_overhead_variant("baseline", scale=0.008, rate=40.0)
    assert run.report is None
    assert len(run.log) > 20
    stats = run.phase_stats_ms()
    assert set(stats) == {"canary", "dark", "ab-test", "rollout"}
    assert all(s.count > 0 for s in stats.values())
    assert all(not math.isnan(s.mean) for s in stats.values())


async def test_overhead_active_variant_smoke():
    run = await run_overhead_variant("active", scale=0.008, rate=40.0)
    assert run.report is not None
    assert run.report.status is ExecutionStatus.COMPLETED
    assert run.report.path[0] == "canary"
    assert run.report.path[-1] in ("done-a", "done-b")
    assert len(run.series_ms()) > 3
    # Render paths exercised.
    table = format_table1({"active": [run]})
    assert "active" in table
    assert "mean" in table
    assert "active" in format_figure6({"active": [run]})


async def test_parallel_strategies_smoke():
    point = await run_parallel_strategies(2, scale=0.008)
    assert point.x == 2
    assert point.failed == 0
    assert point.completed == 2
    assert point.delay.count == 2
    assert point.delay.mean >= 0
    assert point.cpu.count > 0
    rendered = format_cpu_figure([point], xlabel="strategies")
    assert "strategies" in rendered
    rendered = format_delay_figure([point], xlabel="strategies")
    assert "delay" in rendered


async def test_many_checks_smoke():
    point = await run_many_checks(1, scale=0.008)
    assert point.x == 8
    assert point.failed == 0
    assert point.delay.count == 1
