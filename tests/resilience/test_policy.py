"""Unit tests for retry, timeout, and circuit-breaker policies."""

import asyncio

import pytest
from hypothesis import given, strategies as st

from repro.clock import VirtualClock
from repro.resilience import (
    BreakerState,
    CircuitBreaker,
    ResilienceError,
    RetryPolicy,
    Timeout,
    TimeoutExceeded,
)


# -- RetryPolicy ----------------------------------------------------------


def test_retry_schedule_is_deterministic():
    policy = RetryPolicy(attempts=5, base_delay=1.0, seed=42)
    assert policy.schedule("q") == policy.schedule("q")
    assert RetryPolicy(attempts=5, base_delay=1.0, seed=42).schedule("q") == policy.schedule("q")


def test_retry_schedule_varies_by_key_and_seed():
    policy = RetryPolicy(attempts=4, base_delay=1.0, seed=0)
    assert policy.schedule("a") != policy.schedule("b")
    assert policy.schedule("a") != RetryPolicy(attempts=4, base_delay=1.0, seed=1).schedule("a")


def test_retry_delays_grow_and_cap():
    policy = RetryPolicy(
        attempts=10, base_delay=1.0, multiplier=2.0, max_delay=8.0, jitter=0.0
    )
    assert policy.schedule() == (1.0, 2.0, 4.0, 8.0, 8.0, 8.0, 8.0, 8.0, 8.0)


def test_retry_jitter_shaves_at_most_the_fraction():
    policy = RetryPolicy(attempts=6, base_delay=2.0, jitter=0.25, seed=3)
    for attempt in range(policy.retries):
        raw = min(2.0 * 2.0**attempt, policy.max_delay)
        delay = policy.delay(attempt, "key")
        assert raw * 0.75 <= delay <= raw


@given(
    seed=st.integers(min_value=0, max_value=2**32),
    key=st.text(max_size=20),
    attempts=st.integers(min_value=1, max_value=8),
)
def test_retry_schedule_property_deterministic_and_bounded(seed, key, attempts):
    policy = RetryPolicy(attempts=attempts, base_delay=0.5, jitter=0.3, seed=seed)
    first = policy.schedule(key)
    assert first == policy.schedule(key)
    assert len(first) == attempts - 1
    for delay in first:
        assert 0.0 <= delay <= policy.max_delay


def test_retry_policy_validation():
    with pytest.raises(ResilienceError):
        RetryPolicy(attempts=0)
    with pytest.raises(ResilienceError):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ResilienceError):
        RetryPolicy(multiplier=0.5)


# -- Timeout --------------------------------------------------------------


async def test_timeout_fires_on_virtual_clock():
    clock = VirtualClock()

    async def hung():
        await clock.sleep(1000.0)

    guard = asyncio.ensure_future(Timeout(5.0).guard(clock, hung()))
    await clock.advance(5.0)
    with pytest.raises(TimeoutExceeded):
        await guard


async def test_timeout_passes_fast_calls_through():
    clock = VirtualClock()

    async def quick():
        await clock.sleep(1.0)
        return 7.0

    guard = asyncio.ensure_future(Timeout(5.0).guard(clock, quick()))
    await clock.advance(1.0)
    assert await guard == 7.0
    assert clock.pending_sleepers == 0  # the timer sleeper was cancelled


async def test_timeout_propagates_call_exceptions():
    clock = VirtualClock()

    async def broken():
        raise ValueError("boom")

    with pytest.raises(ValueError):
        await Timeout(5.0).guard(clock, broken())


def test_timeout_validation():
    with pytest.raises(ResilienceError):
        Timeout(0.0)


# -- CircuitBreaker -------------------------------------------------------


def make_breaker(clock, **overrides):
    settings = dict(window=10, failure_rate=0.5, min_calls=3, cooldown=30.0, probes=1)
    settings.update(overrides)
    return CircuitBreaker(clock, **settings)


def test_breaker_opens_on_failure_rate():
    clock = VirtualClock()
    breaker = make_breaker(clock)
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state is BreakerState.CLOSED  # only 2 calls, min is 3
    breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    assert not breaker.allow()


async def test_breaker_half_open_probe_closes_on_success():
    clock = VirtualClock()
    breaker = make_breaker(clock, cooldown=10.0)
    for _ in range(3):
        breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    await clock.advance(9.0)
    assert not breaker.allow()  # cool-down not elapsed
    await clock.advance(1.0)
    assert breaker.allow()
    assert breaker.state is BreakerState.HALF_OPEN
    assert not breaker.allow()  # only one probe at a time
    breaker.record_success()
    assert breaker.state is BreakerState.CLOSED
    assert breaker.failure_fraction == 0.0  # window cleared


async def test_breaker_half_open_probe_failure_reopens():
    clock = VirtualClock()
    breaker = make_breaker(clock, cooldown=10.0)
    for _ in range(3):
        breaker.record_failure()
    await clock.advance(10.0)
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    assert not breaker.allow()
    # The cool-down restarted at the probe failure.
    await clock.advance(10.0)
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state is BreakerState.CLOSED


def test_breaker_sliding_window_forgets_old_failures():
    clock = VirtualClock()
    breaker = make_breaker(clock, window=4, min_calls=4, failure_rate=0.5)
    breaker.record_failure()
    breaker.record_failure()
    for _ in range(4):  # pushes the failures out of the window
        breaker.record_success()
    breaker.record_failure()
    assert breaker.state is BreakerState.CLOSED


def test_breaker_records_transitions():
    clock = VirtualClock()
    breaker = make_breaker(clock)
    for _ in range(3):
        breaker.record_failure()
    assert [(old.value, new.value) for _, old, new in breaker.transitions] == [
        ("closed", "open")
    ]


def test_breaker_validation():
    clock = VirtualClock()
    with pytest.raises(ResilienceError):
        CircuitBreaker(clock, failure_rate=0.0)
    with pytest.raises(ResilienceError):
        CircuitBreaker(clock, cooldown=0.0)
    with pytest.raises(ResilienceError):
        CircuitBreaker(clock, window=0)
