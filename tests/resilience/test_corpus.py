"""The generative soak corpus: invariants, determinism, shard-invariance."""

from repro.resilience.corpus import (
    CorpusReport,
    generate_scenario,
    run_corpus,
    run_scenario,
    trace_signature,
)


def test_generation_is_pure():
    assert generate_scenario(42) == generate_scenario(42)
    assert generate_scenario(42) != generate_scenario(43)


async def test_small_corpus_is_green():
    report = await run_corpus(count=12, base_seed=0)
    assert report.ok, [
        (result.seed, result.error) for result in report.failures
    ]
    # The generator covers the outcome space, not just happy paths.
    statuses = {result.status for result in report.results}
    assert len(statuses) >= 2, statuses


async def test_same_seed_same_signature():
    first = await run_scenario(generate_scenario(5))
    second = await run_scenario(generate_scenario(5))
    assert first.signature == second.signature
    assert first.status == second.status
    assert first.path == second.path


async def test_shard_count_does_not_change_the_trace():
    """Sharding is a storage layout, not a semantic: the event trace is
    identical whether the metric store runs 1 shard or 3."""
    for seed in (3, 11, 17):
        single = await run_scenario(generate_scenario(seed, shard_count=1))
        sharded = await run_scenario(generate_scenario(seed, shard_count=3))
        assert single.signature == sharded.signature, seed


async def test_failure_is_captured_not_raised(monkeypatch):
    import repro.resilience.corpus as corpus_module

    async def boom(scenario):
        raise RuntimeError("scripted crash")

    monkeypatch.setattr(corpus_module, "run_scenario", boom)
    report = await corpus_module.run_corpus(count=3, base_seed=9)
    assert len(report.failures) == 3
    assert all("scripted crash" in result.error for result in report.failures)
    assert [result.seed for result in report.failures] == [9, 10, 11]
    assert not report.ok


def test_report_json_round_trips():
    import json

    report = CorpusReport()
    assert json.loads(report.to_json())["scenarios"] == 0


class _Event:
    def __init__(self, at, strategy, kind_value, data):
        self.at = at
        self.strategy = strategy
        self.data = data
        self.kind = type("K", (), {"value": kind_value})()


def test_trace_signature_sensitivity():
    base = [_Event(1.0, "s", "state_entered", {"state": "canary"})]
    assert trace_signature(base) == trace_signature(list(base))
    other = [_Event(1.0, "s", "state_entered", {"state": "phase2"})]
    assert trace_signature(base) != trace_signature(other)
