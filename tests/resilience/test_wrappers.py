"""Unit tests for ResilientProvider / ResilientController."""

import asyncio

import pytest

from repro.clock import VirtualClock
from repro.core import EventBus, EventKind, RecordingController, single_version
from repro.metrics import StaticProvider
from repro.metrics.provider import ProviderError
from repro.resilience import (
    BreakerState,
    CircuitBreaker,
    ErrorFault,
    FaultSchedule,
    FaultyController,
    FaultyProvider,
    ResilientController,
    ResilientProvider,
    RetryPolicy,
    Timeout,
)


async def drive(clock, awaitable, step=1.0, limit=500):
    """Advance the virtual clock until the awaitable resolves."""
    task = asyncio.ensure_future(awaitable)
    for _ in range(limit):
        if task.done():
            break
        await clock.advance(step)
    assert task.done(), "task did not finish within the drive limit"
    return task.result()


def resilient(inner, clock, **kwargs):
    kwargs.setdefault("retry", RetryPolicy(attempts=3, base_delay=1.0, seed=1))
    return ResilientProvider(inner, clock, **kwargs)


async def test_provider_retries_transient_failures():
    clock = VirtualClock()
    flaky = FaultyProvider(
        StaticProvider({"m": 3.0}), FaultSchedule.first(2), clock
    )
    bus = EventBus()
    provider = resilient(flaky, clock, bus=bus)
    assert await drive(clock, provider.query("m")) == 3.0
    assert flaky.calls == 3
    retries = bus.of_kind(EventKind.PROVIDER_RETRY)
    assert len(retries) == 2
    assert retries[0].strategy == "provider:static"
    assert retries[0].data["query"] == "m"


async def test_provider_exhausted_retries_raise_provider_error():
    clock = VirtualClock()
    dead = FaultyProvider(StaticProvider({"m": 1.0}), FaultSchedule.always(), clock)
    provider = resilient(dead, clock)
    with pytest.raises(ProviderError):
        await drive(clock, provider.query("m"))
    assert dead.calls == 3


async def test_provider_wraps_unexpected_exception_types():
    clock = VirtualClock()
    weird = FaultyProvider(
        StaticProvider({"m": 1.0}),
        FaultSchedule.always(ErrorFault("refused", ConnectionError)),
        clock,
    )
    provider = resilient(weird, clock)
    with pytest.raises(ProviderError) as excinfo:
        await drive(clock, provider.query("m"))
    assert isinstance(excinfo.value.__cause__, ConnectionError)


async def test_provider_breaker_short_circuits_calls():
    clock = VirtualClock()
    dead = FaultyProvider(StaticProvider({"m": 1.0}), FaultSchedule.always(), clock)
    bus = EventBus()
    breaker = CircuitBreaker(
        clock, window=10, failure_rate=0.5, min_calls=3, cooldown=60.0
    )
    provider = resilient(dead, clock, breaker=breaker, bus=bus)
    with pytest.raises(ProviderError):
        await drive(clock, provider.query("m"))
    assert breaker.state is BreakerState.OPEN
    assert len(bus.of_kind(EventKind.CIRCUIT_OPENED)) == 1
    calls_before = dead.calls
    with pytest.raises(ProviderError):
        await drive(clock, provider.query("m"))
    assert dead.calls == calls_before  # refused without touching the backend


async def test_provider_breaker_recovers_through_half_open():
    clock = VirtualClock()
    # Down for the first 3 calls, healthy afterwards.
    flaky = FaultyProvider(StaticProvider({"m": 9.0}), FaultSchedule.first(3), clock)
    bus = EventBus()
    breaker = CircuitBreaker(
        clock, window=10, failure_rate=0.5, min_calls=3, cooldown=30.0
    )
    provider = resilient(flaky, clock, breaker=breaker, bus=bus)
    with pytest.raises(ProviderError):
        await drive(clock, provider.query("m"))
    assert breaker.state is BreakerState.OPEN
    await clock.advance(30.0)  # cool-down elapses
    assert await drive(clock, provider.query("m")) == 9.0
    assert breaker.state is BreakerState.CLOSED
    kinds = [event.kind for event in bus.history]
    assert EventKind.CIRCUIT_HALF_OPEN in kinds
    assert EventKind.CIRCUIT_CLOSED in kinds


async def test_provider_timeout_bounds_hung_backend():
    clock = VirtualClock()

    class Hung(StaticProvider):
        def __init__(self):
            super().__init__({"m": 1.0})
            self.clock = clock

        async def query(self, query):
            await self.clock.sleep(10_000.0)
            return await super().query(query)

    provider = ResilientProvider(
        Hung(),
        clock,
        retry=RetryPolicy(attempts=2, base_delay=1.0, seed=0),
        timeout=Timeout(5.0),
    )
    with pytest.raises(ProviderError):
        await drive(clock, provider.query("m"))


async def test_controller_retries_and_emits_events():
    clock = VirtualClock()
    recording = RecordingController()
    flaky = FaultyController(recording, FaultSchedule.first(2), clock)
    bus = EventBus()
    controller = ResilientController(
        flaky, clock, retry=RetryPolicy(attempts=3, base_delay=1.0, seed=1), bus=bus
    )
    config = single_version("stable")
    await drive(clock, controller.apply("svc", config, {"stable": "h:1"}))
    assert recording.latest_for("svc") == config
    retried = bus.of_kind(EventKind.ROUTING_RETRIED)
    assert len(retried) == 2
    assert retried[0].data["service"] == "svc"


async def test_controller_exhausted_retries_keep_original_exception():
    clock = VirtualClock()
    dead = FaultyController(
        RecordingController(), FaultSchedule.always(ErrorFault("proxy down")), clock
    )
    controller = ResilientController(
        dead, clock, retry=RetryPolicy(attempts=2, base_delay=1.0, seed=0)
    )
    with pytest.raises(RuntimeError, match="proxy down"):
        await drive(
            clock, controller.apply("svc", single_version("stable"), {"stable": "h:1"})
        )
