"""Unit tests for the deterministic fault-injection toolkit."""

import asyncio

import pytest

from repro.clock import VirtualClock
from repro.core import RecordingController, single_version
from repro.metrics import StaticProvider
from repro.metrics.provider import ProviderError
from repro.resilience import (
    ErrorFault,
    FaultSchedule,
    FaultyController,
    FaultyProvider,
    LatencyFault,
)


def test_schedule_every_matches_one_in_n():
    schedule = FaultSchedule.every(3)
    fired = [index for index in range(1, 10) if schedule.fault_for(index, 0.0)]
    assert fired == [3, 6, 9]


def test_schedule_shapes():
    assert FaultSchedule.never().fault_for(1, 0.0) is None
    assert FaultSchedule.always().fault_for(999, 0.0) is not None
    first = FaultSchedule.first(2)
    assert first.fault_for(2, 0.0) is not None
    assert first.fault_for(3, 0.0) is None
    calls = FaultSchedule.calls({2, 5})
    assert [i for i in range(1, 7) if calls.fault_for(i, 0.0)] == [2, 5]
    outage = FaultSchedule.during(10.0, 20.0)
    assert outage.fault_for(1, 9.9) is None
    assert outage.fault_for(1, 10.0) is not None
    assert outage.fault_for(1, 20.0) is None


def test_schedule_first_matching_rule_wins():
    schedule = FaultSchedule()
    schedule.add(lambda index, now: index == 1, ErrorFault("first"))
    schedule.add(lambda index, now: True, ErrorFault("rest"))
    assert schedule.fault_for(1, 0.0).message == "first"
    assert schedule.fault_for(2, 0.0).message == "rest"


async def test_faulty_provider_injects_on_schedule():
    clock = VirtualClock()
    provider = FaultyProvider(
        StaticProvider({"m": 1.0}), FaultSchedule.every(2), clock
    )
    assert await provider.query("m") == 1.0
    with pytest.raises(ProviderError):
        await provider.query("m")
    assert await provider.query("m") == 1.0
    assert provider.calls == 3
    assert [index for index, _ in provider.injected] == [2]


async def test_faulty_provider_can_raise_arbitrary_exception_types():
    provider = FaultyProvider(
        StaticProvider({"m": 1.0}),
        FaultSchedule.always(ErrorFault("refused", ConnectionError)),
        VirtualClock(),
    )
    with pytest.raises(ConnectionError):
        await provider.query("m")


async def test_latency_fault_delays_by_clock_time():
    clock = VirtualClock()
    provider = FaultyProvider(
        StaticProvider({"m": 2.0}),
        FaultSchedule.always(LatencyFault(7.5)),
        clock,
    )
    task = asyncio.ensure_future(provider.query("m"))
    await clock.advance(7.4)
    assert not task.done()
    await clock.advance(0.1)
    assert await task == 2.0


async def test_faulty_controller_defaults_to_runtime_error():
    clock = VirtualClock()
    controller = FaultyController(
        RecordingController(), FaultSchedule.calls({1}), clock
    )
    with pytest.raises(RuntimeError):
        await controller.apply("svc", single_version("stable"), {"stable": "h:1"})
    await controller.apply("svc", single_version("stable"), {"stable": "h:1"})
    assert controller.calls == 2


async def test_outage_window_under_virtual_clock_is_deterministic():
    clock = VirtualClock()
    provider = FaultyProvider(
        StaticProvider({"m": 1.0}),
        FaultSchedule.during(5.0, 10.0),
        clock,
    )
    assert await provider.query("m") == 1.0
    await clock.advance(5.0)
    with pytest.raises(ProviderError):
        await provider.query("m")
    await clock.advance(5.0)
    assert await provider.query("m") == 1.0
