"""Chaos campaigns: target grammar, enactment, game days, abort paths."""

import asyncio

import pytest

from repro.clock import VirtualClock
from repro.core import (
    EventKind,
    RecordingController,
    StrategyBuilder,
    canary_split,
    simple_basic_check,
    single_version,
)
from repro.core.engine import Engine, ExecutionStatus
from repro.metrics import StaticProvider
from repro.metrics.provider import LocalPrometheusProvider
from repro.metrics.store import MetricStore
from repro.proxy import BifrostProxy
from repro.resilience import (
    BreakerState,
    ChaosCampaign,
    ChaosError,
    CircuitBreaker,
    FaultSpec,
    FaultyUpstream,
    ResilientProvider,
    parse_target,
    run_game_day,
)


def canary_strategy(check_validator="< 50", interval=5.0, repetitions=3):
    builder = StrategyBuilder("chaos-test")
    builder.service("svc", {"v1": "127.0.0.1:8081", "v2": "127.0.0.1:8082"})
    builder.state("canary").route("svc", canary_split("v1", "v2", 10.0)).check(
        simple_basic_check(
            "errors_ok",
            "errors_total",
            check_validator,
            interval,
            repetitions,
            provider="prometheus",
        )
    ).transitions([0.5], ["rollback", "done"])
    builder.state("done").route("svc", single_version("v2")).final()
    builder.state("rollback").route("svc", single_version("v1")).final(
        rollback=True
    )
    return builder.build()


def steady_check(interval=4.0, repetitions=2):
    return simple_basic_check(
        "steady_errors", "errors_total", "< 50", interval, repetitions,
        provider="prometheus",
    )


def campaign(specs, steady=None, seed=7):
    return ChaosCampaign(
        name="test-chaos",
        specs=specs,
        steady_state=steady if steady is not None else [steady_check()],
        seed=seed,
    )


def engine_with_metrics(value=3.0):
    clock = VirtualClock()
    store = MetricStore()
    for second in range(0, 600, 2):
        store.record("errors_total", value, float(second))
    engine = Engine(controller=RecordingController(), clock=clock)
    engine.register_provider("prometheus", LocalPrometheusProvider(store, clock))
    return engine, clock, store


# -- target grammar ---------------------------------------------------------


def test_parse_target_grammar():
    assert parse_target("provider:prometheus") == ("provider", "prometheus")
    assert parse_target("controller") == ("controller", "")
    assert parse_target("upstream:search") == ("upstream", "search")
    assert parse_target("endpoint:search/v2") == ("endpoint", "search/v2")
    # Breaker labels may themselves contain colons.
    assert parse_target("breaker:provider:prometheus") == (
        "breaker",
        "provider:prometheus",
    )


@pytest.mark.parametrize(
    "bad",
    ["", "provider:", "controller:extra", "endpoint:search", "widget:x"],
)
def test_parse_target_rejects_malformed(bad):
    with pytest.raises(ChaosError):
        parse_target(bad)


def test_fault_spec_validation():
    with pytest.raises(ChaosError):
        FaultSpec(name="f", target="provider:p", mode="explode", phases=("a",))
    with pytest.raises(ChaosError):
        FaultSpec(name="f", target="provider:p", rate=1.5, phases=("a",))
    with pytest.raises(ChaosError):
        # 'open' only makes sense for breaker targets.
        FaultSpec(name="f", target="provider:p", mode="open", phases=("a",))
    with pytest.raises(ChaosError):
        # latency mode needs a positive latency.
        FaultSpec(name="f", target="provider:p", mode="latency", phases=("a",))


def test_campaign_validate_against_strategy():
    strategy = canary_strategy()
    spec = FaultSpec(name="f", target="provider:p", phases=("canary",))
    campaign([spec]).validate(strategy)  # fine
    with pytest.raises(ChaosError, match="unknown phase"):
        campaign(
            [FaultSpec(name="f", target="provider:p", phases=("warp",))]
        ).validate(strategy)
    with pytest.raises(ChaosError, match="no steady-state"):
        campaign([spec], steady=[]).validate(strategy)
    with pytest.raises(ChaosError, match="duplicate"):
        campaign([spec, spec]).validate(strategy)
    with pytest.raises(ChaosError, match="not scoped"):
        campaign(
            [FaultSpec(name="f", target="provider:p", phases=())]
        ).validate(strategy)


# -- game days under the virtual clock --------------------------------------


async def test_latency_chaos_campaign_completes():
    """Latency faults slow checks down but the rollout still lands."""
    engine, clock, _store = engine_with_metrics()
    spec = FaultSpec(
        name="slow-metrics",
        target="provider:prometheus",
        mode="latency",
        latency=1.5,
        rate=0.5,
        phases=("canary",),
    )
    report = await run_game_day(canary_strategy(), campaign([spec]), engine)
    assert report.status == "completed"
    assert report.execution.path == ["canary", "done"]
    assert report.injections and not report.aborted
    await engine.shutdown()
    assert clock.pending_sleepers == 0
    assert engine.scheduler.pending_checks == 0


async def test_faults_fire_only_during_declared_phase():
    """CHAOS_INJECTED events all land inside the armed phase window."""
    engine, clock, _store = engine_with_metrics()
    spec = FaultSpec(
        name="slow-metrics",
        target="provider:prometheus",
        mode="latency",
        latency=0.5,
        rate=1.0,
        phases=("canary",),
    )
    await run_game_day(canary_strategy(), campaign([spec]), engine)
    kinds = [event.kind for event in engine.bus.history]
    armed = kinds.index(EventKind.CHAOS_ARMED)
    disarmed = kinds.index(EventKind.CHAOS_DISARMED)
    injected = [
        index
        for index, kind in enumerate(kinds)
        if kind is EventKind.CHAOS_INJECTED
    ]
    assert injected, "no injections recorded"
    assert all(armed < index < disarmed for index in injected)
    await engine.shutdown()


async def test_steady_state_violation_aborts_and_restores_safe_routing():
    """The acceptance path: outage -> hypothesis falsified -> abort ->
    safe routing lands the touched service back on stable."""
    engine, clock, _store = engine_with_metrics()
    spec = FaultSpec(
        name="metrics-outage",
        target="provider:prometheus",
        mode="error",
        rate=0.4,
        phases=("canary",),
    )
    report = await run_game_day(canary_strategy(), campaign([spec]), engine)
    assert report.aborted
    assert report.violations and report.violations[0]["check"] == "steady_errors"
    assert report.execution.status is ExecutionStatus.FAILED
    kinds = [event.kind for event in engine.bus.history]
    for kind in (
        EventKind.CHAOS_CAMPAIGN_STARTED,
        EventKind.CHAOS_ARMED,
        EventKind.CHAOS_INJECTED,
        EventKind.CHAOS_STEADY_STATE_VIOLATED,
        EventKind.CHAOS_ABORTED,
        EventKind.SAFE_ROUTING_APPLIED,
        EventKind.CHAOS_CAMPAIGN_FINISHED,
    ):
        assert kind in kinds, f"missing {kind}"
    # The violation disarms before recovery, so the safe-routing apply
    # ran un-faulted and the service ended on the stable version.
    assert engine.controller.latest_for("svc") == single_version("v1")
    await engine.shutdown()
    assert clock.pending_sleepers == 0
    assert engine.scheduler.pending_checks == 0


async def test_game_day_is_deterministic_per_seed():
    async def trace(seed):
        engine, _clock, _store = engine_with_metrics()
        spec = FaultSpec(
            name="outage",
            target="provider:prometheus",
            mode="error",
            rate=0.4,
            phases=("canary",),
        )
        report = await run_game_day(
            canary_strategy(), campaign([spec], seed=seed), engine
        )
        await engine.shutdown()
        return [(i.spec, i.call_index, i.fault, i.at) for i in report.injections]

    assert await trace(7) == await trace(7)
    assert await trace(7) != await trace(8)


async def test_controller_fault_fails_execution_but_recovers_routing():
    engine, clock, _store = engine_with_metrics()
    spec = FaultSpec(
        name="flaky-control-plane",
        target="controller",
        mode="error",
        rate=1.0,
        phases=("canary",),
    )
    report = await run_game_day(canary_strategy(), campaign([spec]), engine)
    assert report.status == "failed"
    # A rate-1.0 control-plane outage is total: even the safe-routing
    # recovery attempt faults, and the engine says so instead of
    # pretending the rollback landed.
    kinds = [event.kind for event in engine.bus.history]
    assert EventKind.SAFE_ROUTING_FAILED in kinds
    # The campaign still tore down cleanly: the wrapper is gone.
    assert isinstance(engine.controller, RecordingController)
    await engine.shutdown()


async def test_breaker_fault_forces_open_then_restores():
    engine, clock, _store = engine_with_metrics()
    breaker = CircuitBreaker(clock, window=8, min_calls=3, cooldown=30.0)
    inner = engine.providers["prometheus"]
    engine.register_provider(
        "prometheus", ResilientProvider(inner, clock, bus=engine.bus, breaker=breaker)
    )
    spec = FaultSpec(
        name="trip-breaker",
        target="breaker:provider:prometheus",
        mode="open",
        phases=("canary",),
    )
    # Tolerant hypothesis: the campaign itself should survive the forcing.
    report = await run_game_day(
        canary_strategy(), campaign([spec], steady=[steady_check(20.0, 40)]), engine
    )
    assert any(
        old is BreakerState.CLOSED and new is BreakerState.OPEN
        for _at, old, new in breaker.transitions
    )
    # Torn down: unforced and CLOSED again, whatever the outcome was.
    assert not breaker.forced
    assert breaker.state is BreakerState.CLOSED
    assert report.status in ("completed", "rolled_back", "failed")
    await engine.shutdown()


async def test_unbound_targets_are_tolerated_and_reported():
    engine, _clock, _store = engine_with_metrics()
    specs = [
        FaultSpec(
            name="ghost-upstream", target="upstream:svc", phases=("canary",)
        ),
        FaultSpec(
            name="ghost-breaker",
            target="breaker:nope",
            mode="open",
            phases=("canary",),
        ),
    ]
    report = await run_game_day(canary_strategy(), campaign(specs), engine)
    assert set(report.unbound_targets) == {"upstream:svc", "breaker:nope"}
    assert report.status in ("completed", "rolled_back")
    await engine.shutdown()


# -- the upstream shim ------------------------------------------------------


class _ScriptedClient:
    def __init__(self):
        self.sent = []

    async def send(self, request, host, port, timeout=None, stream=False):
        self.sent.append((host, port))
        return "ok"

    async def close(self):
        pass


async def test_faulty_upstream_injects_and_filters_endpoints():
    from repro.resilience import ErrorFault, FaultSchedule

    clock = VirtualClock()
    inner = _ScriptedClient()
    shim = FaultyUpstream(
        inner,
        FaultSchedule.always(),
        clock,
        endpoints=frozenset({"10.0.0.2:80"}),
    )
    # Non-matching endpoint: passes straight through.
    assert await shim.send(None, "10.0.0.1", 80) == "ok"
    # Matching endpoint: the default ErrorFault surfaces as the
    # connection-level failure the proxy data plane turns into a 502.
    with pytest.raises(ConnectionError):
        await shim.send(None, "10.0.0.2", 80)
    assert inner.sent == [("10.0.0.1", 80)]
    assert [index for index, _fault in shim.injected] == [2]


async def test_chaos_binds_and_restores_proxy_upstream_client():
    engine, _clock, _store = engine_with_metrics()
    proxy = BifrostProxy("svc", default_upstream="127.0.0.1:1")
    original = proxy._client
    spec = FaultSpec(name="kill-upstream", target="upstream:svc", phases=("canary",))
    report = await run_game_day(
        canary_strategy(),
        campaign([spec]),
        engine,
        proxies={"svc": proxy},
    )
    assert report.unbound_targets == []
    # Torn down: the shim is gone, the original client is back.
    assert proxy._client is original
    await engine.shutdown()
