"""Integration tests: HttpServer and HttpClient talking over localhost."""

import asyncio

import pytest

from repro.httpcore import (
    ConnectionClosed,
    Headers,
    HttpClient,
    HttpServer,
    RequestTimeout,
    Response,
)


def make_server() -> HttpServer:
    server = HttpServer(name="test")

    @server.router.get("/ping")
    async def ping(request):
        return Response.text("pong")

    @server.router.post("/echo")
    async def echo(request):
        return Response(body=request.body)

    @server.router.get("/json")
    async def json_route(request):
        return Response.from_json({"n": 1})

    @server.router.get("/slow")
    async def slow(request):
        await asyncio.sleep(0.5)
        return Response.text("late")

    @server.router.get("/boom")
    async def boom(request):
        raise RuntimeError("kaboom")

    @server.router.get("/items/{id}")
    async def item(request):
        return Response.from_json({"id": request.path_params["id"]})

    return server


async def test_basic_get():
    async with make_server() as server, HttpClient() as client:
        response = await client.get(f"http://{server.address}/ping")
        assert response.status == 200
        assert response.body == b"pong"


async def test_post_echo_body():
    async with make_server() as server, HttpClient() as client:
        response = await client.post(f"http://{server.address}/echo", body=b"hello")
        assert response.body == b"hello"


async def test_json_request_and_response():
    async with make_server() as server, HttpClient() as client:
        response = await client.get(f"http://{server.address}/json")
        assert response.json() == {"n": 1}


async def test_json_body_sets_content_type():
    server = HttpServer()

    @server.router.post("/check")
    async def check(request):
        assert request.headers.get("content-type") == "application/json"
        return Response.from_json(request.json())

    async with server, HttpClient() as client:
        response = await client.post(
            f"http://{server.address}/check", json_body={"a": [1, 2]}
        )
        assert response.json() == {"a": [1, 2]}


async def test_path_params_reach_handler():
    async with make_server() as server, HttpClient() as client:
        response = await client.get(f"http://{server.address}/items/42")
        assert response.json() == {"id": "42"}


async def test_unknown_route_is_404():
    async with make_server() as server, HttpClient() as client:
        response = await client.get(f"http://{server.address}/nope")
        assert response.status == 404


async def test_handler_exception_is_500():
    async with make_server() as server, HttpClient() as client:
        response = await client.get(f"http://{server.address}/boom")
        assert response.status == 500


async def test_keep_alive_reuses_connection():
    async with make_server() as server, HttpClient(pool_size=1) as client:
        for _ in range(5):
            response = await client.get(f"http://{server.address}/ping")
            assert response.status == 200
        # Five sequential requests over a pooled connection: the server saw
        # five requests but only one TCP connection carried them.
        assert server.requests_handled == 5


async def test_concurrent_requests():
    async with make_server() as server, HttpClient() as client:
        responses = await asyncio.gather(
            *[client.get(f"http://{server.address}/ping") for _ in range(20)]
        )
        assert all(r.status == 200 for r in responses)


async def test_request_timeout():
    async with make_server() as server, HttpClient() as client:
        with pytest.raises(RequestTimeout):
            await client.get(f"http://{server.address}/slow", timeout=0.05)


async def test_client_close_rejects_further_use():
    async with make_server() as server:
        client = HttpClient()
        await client.close()
        with pytest.raises(ConnectionClosed):
            await client.get(f"http://{server.address}/ping")


async def test_connection_close_header_honored():
    async with make_server() as server, HttpClient() as client:
        response = await client.get(
            f"http://{server.address}/ping", headers={"Connection": "close"}
        )
        assert response.status == 200
        assert response.headers.get("connection") == "close"
        # Next request must open a fresh connection and still work.
        response = await client.get(f"http://{server.address}/ping")
        assert response.status == 200


async def test_retry_on_stale_pooled_connection():
    server = make_server()
    await server.start()
    client = HttpClient()
    try:
        address = server.address
        assert (await client.get(f"http://{address}/ping")).status == 200
        # Restart the server on the same port: the pooled connection is dead.
        await server.stop()
        server2 = HttpServer(host="127.0.0.1", port=int(address.split(":")[1]))

        @server2.router.get("/ping")
        async def ping(request):
            return Response.text("pong2")

        await server2.start()
        try:
            response = await client.get(f"http://{address}/ping")
            assert response.body == b"pong2"
        finally:
            await server2.stop()
    finally:
        await client.close()
        await server.stop()


async def test_malformed_request_gets_400():
    async with make_server() as server:
        reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
        writer.write(b"NOT A REQUEST\r\n\r\n")
        await writer.drain()
        data = await reader.read(100)
        assert b"400" in data.split(b"\r\n")[0]
        writer.close()


async def test_middleware_wraps_handlers_in_order():
    server = make_server()
    order = []

    async def outer(request, handler):
        order.append("outer-in")
        response = await handler(request)
        order.append("outer-out")
        return response

    async def inner(request, handler):
        order.append("inner-in")
        response = await handler(request)
        order.append("inner-out")
        return response

    server.add_middleware(outer)
    server.add_middleware(inner)
    async with server, HttpClient() as client:
        await client.get(f"http://{server.address}/ping")
    assert order == ["outer-in", "inner-in", "inner-out", "outer-out"]


async def test_middleware_can_short_circuit():
    server = make_server()

    async def deny(request, handler):
        return Response.text("denied", status=403)

    server.add_middleware(deny)
    async with server, HttpClient() as client:
        response = await client.get(f"http://{server.address}/ping")
        assert response.status == 403


async def test_server_start_twice_raises():
    server = make_server()
    await server.start()
    try:
        with pytest.raises(RuntimeError):
            await server.start()
    finally:
        await server.stop()


async def test_server_stop_idempotent():
    server = make_server()
    await server.start()
    await server.stop()
    await server.stop()
    assert not server.running


def test_split_url_variants():
    from repro.httpcore.client import _split_url

    assert _split_url("http://h:81/p?q=1") == ("h", 81, "/p?q=1")
    assert _split_url("h:81") == ("h", 81, "/")
    assert _split_url("http://h/p") == ("h", 80, "/p")
    with pytest.raises(ValueError):
        _split_url("https://secure")
    with pytest.raises(ValueError):
        _split_url("http://:80/")


async def test_idle_connections_observability():
    async with make_server() as server, HttpClient() as client:
        key = server.address
        assert client.idle_connections() == 0
        await client.get(f"http://{server.address}/ping")
        assert client.idle_connections() == 1
        assert client.idle_connections(key) == 1
        assert client.idle_connections("other:80") == 0


async def test_stale_idle_connection_evicted_on_acquire():
    async with make_server() as server, HttpClient(idle_timeout=60.0) as client:
        await client.get(f"http://{server.address}/ping")
        pool = client._pools[server.address]
        reader, old_writer, released_at = pool.connections[0]
        # Backdate the idle instant past the keep-alive budget.
        pool.connections[0] = (reader, old_writer, released_at - 120.0)
        response = await client.get(f"http://{server.address}/ping")
        assert response.status == 200
        assert old_writer.is_closing()  # the stale socket was retired
        assert client.idle_connections() == 1  # a fresh one was pooled
        assert pool.connections[0][1] is not old_writer


async def test_stale_acquire_drains_older_stack_entries():
    """Everything below a stale LIFO top is older still — all must go."""
    async with make_server() as server, HttpClient(idle_timeout=60.0) as client:
        await asyncio.gather(
            *[client.get(f"http://{server.address}/ping") for _ in range(3)]
        )
        pool = client._pools[server.address]
        assert len(pool.connections) == 3
        old_writers = [writer for _, writer, _ in pool.connections]
        pool.connections[:] = [
            (reader, writer, released_at - 120.0)
            for reader, writer, released_at in pool.connections
        ]
        await client.get(f"http://{server.address}/ping")
        assert all(writer.is_closing() for writer in old_writers)
        assert client.idle_connections() == 1


async def test_release_ages_out_oldest_idler():
    """A burst then a quiet period must not pin sockets open forever."""
    async with make_server() as server, HttpClient(idle_timeout=60.0) as client:
        await asyncio.gather(
            *[client.get(f"http://{server.address}/ping") for _ in range(3)]
        )
        pool = client._pools[server.address]
        reader, oldest_writer, released_at = pool.connections[0]
        pool.connections[0] = (reader, oldest_writer, released_at - 120.0)
        # The next request reuses the fresh LIFO top; releasing it back
        # sweeps the expired connection off the bottom of the stack.
        await client.get(f"http://{server.address}/ping")
        assert oldest_writer.is_closing()
        assert client.idle_connections() == 2
        assert all(not w.is_closing() for _, w, _ in pool.connections)


async def test_fresh_connections_survive_idle_sweeps():
    async with make_server() as server, HttpClient(idle_timeout=60.0) as client:
        for _ in range(4):
            await client.get(f"http://{server.address}/ping")
        # Sequential keep-alive traffic: one warm connection, never evicted.
        assert client.idle_connections() == 1
        assert server.requests_handled == 4
