"""Unit tests for the case-insensitive header multimap."""

from repro.httpcore import Headers


def test_get_is_case_insensitive():
    headers = Headers([("Content-Type", "application/json")])
    assert headers.get("content-type") == "application/json"
    assert headers.get("CONTENT-TYPE") == "application/json"


def test_get_returns_default_when_absent():
    assert Headers().get("X-Missing", "fallback") == "fallback"
    assert Headers().get("X-Missing") is None


def test_add_keeps_duplicates_and_get_all_returns_them_in_order():
    headers = Headers()
    headers.add("Set-Cookie", "a=1")
    headers.add("Set-Cookie", "b=2")
    assert headers.get_all("set-cookie") == ["a=1", "b=2"]
    assert headers.get("Set-Cookie") == "a=1"


def test_set_replaces_all_duplicates():
    headers = Headers([("X-Tag", "one"), ("x-tag", "two")])
    headers.set("X-TAG", "three")
    assert headers.get_all("x-tag") == ["three"]


def test_setdefault_only_sets_when_absent():
    headers = Headers([("Host", "a")])
    assert headers.setdefault("host", "b") == "a"
    assert headers.setdefault("X-New", "c") == "c"
    assert headers.get("x-new") == "c"


def test_remove_is_case_insensitive_and_ignores_missing():
    headers = Headers([("A", "1"), ("a", "2"), ("B", "3")])
    headers.remove("A")
    headers.remove("never-there")
    assert headers.items() == [("B", "3")]


def test_mapping_protocol():
    headers = Headers()
    headers["X-One"] = "1"
    assert "x-one" in headers
    assert headers["X-ONE"] == "1"
    del headers["x-one"]
    assert "X-One" not in headers
    assert len(headers) == 0


def test_getitem_raises_keyerror():
    import pytest

    with pytest.raises(KeyError):
        Headers()["gone"]


def test_delitem_raises_keyerror_when_absent():
    import pytest

    with pytest.raises(KeyError):
        del Headers()["gone"]


def test_copy_is_independent():
    original = Headers([("A", "1")])
    clone = original.copy()
    clone.add("B", "2")
    assert "B" not in original
    assert "B" in clone


def test_init_from_dict():
    headers = Headers({"Host": "example", "Accept": "*/*"})
    assert headers.get("host") == "example"
    assert headers.get("accept") == "*/*"


def test_equality_ignores_name_case_but_not_order():
    assert Headers([("A", "1")]) == Headers([("a", "1")])
    assert Headers([("A", "1"), ("B", "2")]) != Headers([("B", "2"), ("A", "1")])


def test_iteration_preserves_insertion_order():
    headers = Headers([("Z", "26"), ("A", "1")])
    assert list(headers) == [("Z", "26"), ("A", "1")]


def test_values_are_coerced_to_strings():
    headers = Headers()
    headers.add("Content-Length", 42)  # type: ignore[arg-type]
    assert headers.get("content-length") == "42"
