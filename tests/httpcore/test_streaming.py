"""Streaming bodies: chunked framing, BodyStream, tee, end-to-end relay."""

import asyncio

import pytest

from repro.httpcore import (
    BodyStream,
    HttpClient,
    HttpServer,
    ProtocolError,
    Request,
    Response,
    StreamAborted,
    StreamTee,
    encode_chunk,
)
from repro.httpcore.errors import BodyTooLarge, IncompleteMessage
from repro.httpcore.stream import CHUNKED_EOF, iter_chunked, relay_body


def reader_for(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


async def collect(iterator) -> bytes:
    return b"".join([chunk async for chunk in iterator])


# -- chunked wire framing ---------------------------------------------------


async def test_chunked_decode_basic():
    wire = encode_chunk(b"hello ") + encode_chunk(b"world") + CHUNKED_EOF
    assert await collect(iter_chunked(reader_for(wire))) == b"hello world"


async def test_chunked_decode_ignores_extensions_and_trailers():
    wire = (
        b"6;ext=1\r\nhello \r\n"
        b"5\r\nworld\r\n"
        b"0\r\nTrailer: ignored\r\nAnother: one\r\n\r\n"
    )
    assert await collect(iter_chunked(reader_for(wire))) == b"hello world"


async def test_chunked_decode_rejects_bad_size():
    with pytest.raises(ProtocolError):
        await collect(iter_chunked(reader_for(b"zz\r\n")))


async def test_chunked_decode_rejects_missing_crlf():
    wire = b"5\r\nhelloXX" + CHUNKED_EOF
    with pytest.raises(ProtocolError):
        await collect(iter_chunked(reader_for(wire)))


async def test_chunked_decode_truncated_body():
    with pytest.raises(IncompleteMessage):
        await collect(iter_chunked(reader_for(b"10\r\nonly-this")))


async def test_giant_chunk_is_resplit():
    wire = encode_chunk(b"x" * 100) + CHUNKED_EOF
    pieces = [chunk async for chunk in iter_chunked(reader_for(wire), chunk_size=32)]
    assert b"".join(pieces) == b"x" * 100
    assert all(len(piece) <= 32 for piece in pieces)


# -- BodyStream -------------------------------------------------------------


async def test_body_stream_read_and_flags():
    stream = BodyStream.from_bytes(b"payload")
    assert stream.length == 7
    assert not stream.started
    assert await stream.read() == b"payload"
    assert stream.started and stream.consumed


async def test_body_stream_max_buffer_enforced_on_read():
    stream = BodyStream.from_iterable([b"x" * 10] * 10)
    stream.max_buffer = 50
    with pytest.raises(BodyTooLarge):
        await stream.read()


async def test_body_stream_on_complete_clean_and_abort():
    outcomes = []
    stream = BodyStream.from_bytes(b"data")
    stream.set_on_complete(outcomes.append)
    await stream.drain()
    assert outcomes == [True]

    aborted = BodyStream.from_bytes(b"data")
    aborted.set_on_complete(outcomes.append)
    aborted.abort()
    aborted.abort()  # idempotent: the hook fires exactly once
    assert outcomes == [True, False]


# -- StreamTee --------------------------------------------------------------


async def test_tee_duplicates_chunks_to_branch():
    tee = StreamTee(BodyStream.from_iterable([b"one", b"two", b"three"]))
    primary = await collect(tee.primary)
    branch = await collect(tee.branch)
    assert primary == b"onetwothree"
    assert branch == b"onetwothree"


async def test_tee_overflow_aborts_branch_not_primary():
    drops = []
    chunks = [b"c%d" % i for i in range(10)]
    tee = StreamTee(
        BodyStream.from_iterable(chunks), capacity=2, on_drop=lambda: drops.append(1)
    )
    # Consume the primary without touching the branch: it must never block
    # and must see every byte.
    assert await collect(tee.primary) == b"".join(chunks)
    assert drops == [1]
    with pytest.raises(StreamAborted):
        await collect(tee.branch)


async def test_tee_finalized_branch_stops_buffering_silently():
    drops = []
    tee = StreamTee(
        BodyStream.from_iterable([b"x"] * 10),
        capacity=2,
        on_drop=lambda: drops.append(1),
    )
    tee.branch.abort()  # the duplicate was dropped before sending
    assert await collect(tee.primary) == b"x" * 10
    assert drops == []  # a consumer-side abandon is not a tee drop


# -- relay_body -------------------------------------------------------------


class _SinkWriter:
    def __init__(self):
        self.data = bytearray()

    def write(self, data: bytes) -> None:
        self.data += data

    async def drain(self) -> None:
        await asyncio.sleep(0)


async def test_relay_known_length_is_raw():
    writer = _SinkWriter()
    await relay_body(writer, BodyStream.from_bytes(b"abcdef"))
    assert bytes(writer.data) == b"abcdef"


async def test_relay_unknown_length_is_chunk_encoded():
    writer = _SinkWriter()
    await relay_body(writer, BodyStream.from_iterable([b"ab", b"cd"]))
    assert await collect(iter_chunked(reader_for(bytes(writer.data)))) == b"abcd"


async def test_relay_length_mismatch_raises():
    writer = _SinkWriter()
    stream = BodyStream.from_iterable([b"ab"], length=5)
    with pytest.raises(IncompleteMessage):
        await relay_body(writer, stream)


# -- end-to-end: streaming server + client ----------------------------------


def make_streaming_server(**kwargs) -> HttpServer:
    server = HttpServer(name="streaming", stream_bodies=True, **kwargs)

    @server.router.post("/echo")
    async def echo(request):
        return Response(body=await request.aread())

    @server.router.post("/relay")
    async def relay(request):
        # True relay: the response body is the request stream itself.
        return Response.streaming(request.iter_body())

    @server.router.get("/ignore-body")
    async def ignore(request):
        return Response.text("ignored")

    return server


async def test_streamed_request_buffered_by_handler():
    async with make_streaming_server() as server, HttpClient() as client:
        response = await client.post(f"http://{server.address}/echo", body=b"hi" * 500)
        assert response.body == b"hi" * 500


async def test_chunked_request_end_to_end():
    async with make_streaming_server() as server, HttpClient() as client:
        chunks = [b"alpha-", b"beta-", b"gamma"]
        request = Request(
            method="POST",
            target="/echo",
            stream=BodyStream.from_iterable(chunks),  # unknown length -> chunked
        )
        request.headers.set("Host", server.address)
        response = await client.send(request, server.host, server.port)
        assert response.body == b"alpha-beta-gamma"


async def test_streamed_response_end_to_end_keeps_connection():
    async with make_streaming_server() as server, HttpClient() as client:
        request = Request(
            method="POST",
            target="/relay",
            stream=BodyStream.from_iterable([b"x" * 100] * 8),
        )
        request.headers.set("Host", server.address)
        response = await client.send(request, server.host, server.port, stream=True)
        assert response.stream is not None
        assert await response.aread() == b"x" * 800
        # Drain rule satisfied on both sides: the connection is pooled again.
        assert client.idle_connections(server.address) == 1
        again = await client.post(f"http://{server.address}/echo", body=b"ok")
        assert again.body == b"ok"


async def test_first_response_bytes_before_last_request_bytes():
    """The relay pipeline property: duplex streaming through one request."""
    fed: asyncio.Queue = asyncio.Queue()
    got_first = asyncio.Event()

    async def producer():
        yield b"head"
        await got_first.wait()  # only produce the tail after the response began
        yield b"tail"

    async with make_streaming_server() as server, HttpClient() as client:
        request = Request(
            method="POST", target="/relay", stream=BodyStream.from_iterable(producer())
        )
        request.headers.set("Host", server.address)
        response = await client.send(request, server.host, server.port, stream=True)
        first = await response.stream.__anext__()
        assert first == b"head"
        got_first.set()
        rest = await response.aread()
        assert rest == b"tail"
        del fed


async def test_unconsumed_request_stream_is_drained_for_keepalive():
    async with make_streaming_server() as server, HttpClient() as client:
        # The handler never reads the body; the server must drain it before
        # parsing the next request off the same connection.
        first = await client.request(
            "GET", f"http://{server.address}/ignore-body", body=b"leftover" * 100
        )
        assert first.body == b"ignored"
        assert client.idle_connections(server.address) == 1
        second = await client.post(f"http://{server.address}/echo", body=b"next")
        assert second.body == b"next"


async def test_buffered_chunked_message_reserializes_length_framed():
    """A chunked message buffered by a hop must not re-emit the stale
    Transfer-Encoding header next to its new Content-Length — a reader
    would trust TE (RFC 7230 section 3.3.3) and wait for framing that is
    not there."""
    response = Response(body=b"decoded")
    response.headers.set("Transfer-Encoding", "chunked")
    wire = response.serialize()
    assert b"Transfer-Encoding" not in wire
    assert b"Content-Length: 7" in wire

    request = Request(method="POST", target="/x", body=b"decoded")
    request.headers.set("Transfer-Encoding", "chunked")
    wire = request.serialize()
    assert b"Transfer-Encoding" not in wire


async def test_buffered_proxy_hop_relays_chunked_upstream():
    """End-to-end shape of the bug above: streaming upstream answers
    chunked, a buffered hop re-serializes, a streaming reader consumes."""
    async with make_streaming_server() as origin:
        hop = HttpServer(name="hop")  # buffered middle hop

        @hop.router.post("/via")
        async def via(request):
            async with HttpClient() as client:
                inner = Request(
                    method="POST",
                    target="/relay",
                    stream=BodyStream.from_iterable([request.body]),
                )
                inner.headers.set("Host", origin.address)
                # Buffered read of the chunked reply: TE decoded away.
                upstream = await client.send(inner, origin.host, origin.port)
            return Response(status=upstream.status, headers=upstream.headers,
                            body=upstream.body)

        async with hop:
            async with HttpClient() as client:
                request = Request(method="POST", target="/via")
                request.headers.set("Host", hop.address)
                request.body = b"through-the-hop"
                request.headers.set("Content-Length", "15")
                response = await client.send(
                    request, hop.host, hop.port, stream=True
                )
                assert await response.aread() == b"through-the-hop"


# -- max-body limits --------------------------------------------------------


async def test_server_answers_413_when_handler_buffers_too_much():
    async with make_streaming_server(max_body_bytes=64) as server:
        async with HttpClient() as client:
            response = await client.post(
                f"http://{server.address}/echo", body=b"x" * 1000
            )
            assert response.status == 413
            # The oversized connection was closed, not reused.
            assert client.idle_connections(server.address) == 0


async def test_buffered_server_rejects_declared_oversize():
    server = HttpServer(name="buffered", max_body_bytes=64)

    @server.router.post("/echo")
    async def echo(request):
        return Response(body=request.body)

    async with server, HttpClient() as client:
        response = await client.post(f"http://{server.address}/echo", body=b"y" * 100)
        assert response.status == 413


async def test_client_rejects_oversized_buffered_response():
    server = HttpServer(name="big")

    @server.router.get("/big")
    async def big(request):
        return Response(body=b"z" * 1000)

    async with server:
        async with HttpClient(max_body_bytes=100) as client:
            with pytest.raises(BodyTooLarge):
                await client.get(f"http://{server.address}/big")


async def test_client_streams_oversized_response_but_caps_aread():
    server = HttpServer(name="big-stream")

    @server.router.get("/big")
    async def big(request):
        return Response(body=b"z" * 1000)

    async with server:
        async with HttpClient(max_body_bytes=100) as client:
            request = Request(method="GET", target="/big")
            request.headers.set("Host", server.address)
            response = await client.send(
                request, server.host, server.port, stream=True
            )
            # Relaying (iterating) is fine at any size...
            total = 0
            async for chunk in response.iter_body():
                total += len(chunk)
            assert total == 1000
