"""Unit tests for path-pattern routing."""

import pytest

from repro.httpcore import Request, Response, RouteNotFound, Router, compile_pattern


async def ok_handler(request):
    return Response.text("ok")


def test_compile_pattern_static():
    pattern = compile_pattern("/products")
    assert pattern.match("/products")
    assert not pattern.match("/products/1")
    assert not pattern.match("/product")


def test_compile_pattern_with_params():
    pattern = compile_pattern("/products/{id}/reviews/{review_id}")
    match = pattern.match("/products/42/reviews/7")
    assert match is not None
    assert match.groupdict() == {"id": "42", "review_id": "7"}


def test_compile_pattern_param_does_not_cross_segments():
    pattern = compile_pattern("/products/{id}")
    assert pattern.match("/products/1/extra") is None


def test_compile_pattern_requires_leading_slash():
    with pytest.raises(ValueError):
        compile_pattern("products")


def test_resolve_matches_method_and_path():
    router = Router()
    router.add("GET", "/a", ok_handler)
    request = Request("GET", "/a")
    assert router.resolve(request) is ok_handler


def test_resolve_fills_path_params():
    router = Router()
    router.add("GET", "/products/{id}", ok_handler)
    request = Request("GET", "/products/42")
    router.resolve(request)
    assert request.path_params == {"id": "42"}


def test_resolve_wrong_method_raises():
    router = Router()
    router.add("POST", "/a", ok_handler)
    with pytest.raises(RouteNotFound):
        router.resolve(Request("GET", "/a"))


def test_resolve_uses_fallback_when_set():
    router = Router()

    async def fallback(request):
        return Response.text("fallback")

    router.set_fallback(fallback)
    assert router.resolve(Request("GET", "/anything")) is fallback


def test_resolve_prefers_registered_route_over_fallback():
    router = Router()

    async def fallback(request):
        return Response.text("fallback")

    router.add("GET", "/a", ok_handler)
    router.set_fallback(fallback)
    assert router.resolve(Request("GET", "/a")) is ok_handler


def test_first_matching_route_wins():
    router = Router()

    async def second(request):
        return Response.text("second")

    router.add("GET", "/x/{p}", ok_handler)
    router.add("GET", "/x/static", second)
    assert router.resolve(Request("GET", "/x/static")) is ok_handler


def test_decorator_registration():
    router = Router()

    @router.get("/g")
    async def get_handler(request):
        return Response.text("g")

    @router.post("/p")
    async def post_handler(request):
        return Response.text("p")

    @router.put("/u")
    async def put_handler(request):
        return Response.text("u")

    @router.delete("/d")
    async def delete_handler(request):
        return Response.text("d")

    assert len(router) == 4
    assert router.resolve(Request("GET", "/g")) is get_handler
    assert router.resolve(Request("POST", "/p")) is post_handler
    assert router.resolve(Request("PUT", "/u")) is put_handler
    assert router.resolve(Request("DELETE", "/d")) is delete_handler


def test_resolve_ignores_query_string():
    router = Router()
    router.add("GET", "/a", ok_handler)
    assert router.resolve(Request("GET", "/a?x=1")) is ok_handler
