"""Unit tests for HTTP message parsing and serialization."""

import asyncio

import pytest

from repro.httpcore import (
    Headers,
    IncompleteMessage,
    ProtocolError,
    Request,
    Response,
    read_request,
    read_response,
)
from repro.httpcore.errors import BodyTooLarge


def feed(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


async def test_read_request_basic():
    reader = feed(b"GET /products?limit=2 HTTP/1.1\r\nHost: shop\r\n\r\n")
    request = await read_request(reader)
    assert request is not None
    assert request.method == "GET"
    assert request.path == "/products"
    assert request.query == {"limit": "2"}
    assert request.headers.get("host") == "shop"
    assert request.body == b""


async def test_read_request_with_body():
    payload = b'{"name": "tv"}'
    raw = b"POST /buy HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s" % (len(payload), payload)
    request = await read_request(feed(raw))
    assert request is not None
    assert request.body == payload
    assert request.json() == {"name": "tv"}


async def test_read_request_clean_eof_returns_none():
    assert await read_request(feed(b"")) is None


async def test_read_request_mid_header_eof_raises():
    with pytest.raises(IncompleteMessage):
        await read_request(feed(b"GET / HTTP/1.1\r\nHost: x"))


async def test_read_request_mid_body_eof_raises():
    raw = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"
    with pytest.raises(IncompleteMessage):
        await read_request(feed(raw))


async def test_read_request_malformed_request_line():
    with pytest.raises(ProtocolError):
        await read_request(feed(b"GARBAGE\r\n\r\n"))


async def test_read_request_bad_version():
    with pytest.raises(ProtocolError):
        await read_request(feed(b"GET / SPDY/99\r\n\r\n"))


async def test_read_request_bad_content_length():
    with pytest.raises(ProtocolError):
        await read_request(feed(b"GET / HTTP/1.1\r\nContent-Length: ten\r\n\r\n"))


async def test_read_request_negative_content_length():
    with pytest.raises(ProtocolError):
        await read_request(feed(b"GET / HTTP/1.1\r\nContent-Length: -5\r\n\r\n"))


async def test_read_request_huge_declared_body_rejected():
    raw = b"POST / HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n"
    with pytest.raises(BodyTooLarge):
        await read_request(feed(raw))


async def test_read_request_rejects_space_before_colon():
    with pytest.raises(ProtocolError):
        await read_request(feed(b"GET / HTTP/1.1\r\nHost : x\r\n\r\n"))


async def test_request_serialize_parse_round_trip():
    request = Request(
        method="POST",
        target="/search?q=tv",
        headers=Headers([("Host", "shop"), ("X-User", "u1")]),
        body=b"hello",
    )
    parsed = await read_request(feed(request.serialize()))
    assert parsed is not None
    assert parsed.method == "POST"
    assert parsed.target == "/search?q=tv"
    assert parsed.headers.get("x-user") == "u1"
    assert parsed.body == b"hello"


async def test_response_serialize_parse_round_trip():
    response = Response.from_json({"ok": True}, status=201)
    parsed = await read_response(feed(response.serialize()))
    assert parsed.status == 201
    assert parsed.json() == {"ok": True}
    assert parsed.headers.get("content-type") == "application/json"


async def test_read_response_eof_raises():
    with pytest.raises(IncompleteMessage):
        await read_response(feed(b""))


async def test_read_response_malformed_status_line():
    with pytest.raises(ProtocolError):
        await read_response(feed(b"HTTP/1.1 abc OK\r\n\r\n"))


def test_request_copy_is_deep_enough_for_shadowing():
    request = Request("GET", "/x", Headers([("A", "1")]), b"body")
    clone = request.copy()
    clone.headers.set("A", "2")
    clone.path_params["id"] = "7"
    assert request.headers.get("A") == "1"
    assert request.path_params == {}


def test_response_helpers():
    assert Response.text("hi").body == b"hi"
    assert Response.text("hi").headers.get("content-type").startswith("text/plain")
    assert Response.html("<p>x</p>").headers.get("content-type").startswith("text/html")
    assert Response(status=204).ok
    assert not Response(status=404).ok
    assert Response(status=404).reason == "Not Found"
    assert Response(status=299).reason == "Unknown"


def test_response_json_invalid_body_raises():
    with pytest.raises(ProtocolError):
        Response(body=b"{not json").json()


def test_request_path_defaults_to_root():
    assert Request("GET", "").path == "/"


async def test_pipelined_requests_parse_sequentially():
    raw = (
        b"GET /a HTTP/1.1\r\n\r\n"
        b"GET /b HTTP/1.1\r\n\r\n"
    )
    reader = feed(raw)
    first = await read_request(reader)
    second = await read_request(reader)
    third = await read_request(reader)
    assert first is not None and first.path == "/a"
    assert second is not None and second.path == "/b"
    assert third is None
