"""Unit tests for cookie parsing and Set-Cookie formatting."""

from repro.httpcore import SetCookie, format_cookie_header, parse_cookie_header


def test_parse_simple_pair():
    assert parse_cookie_header("session=abc") == {"session": "abc"}


def test_parse_multiple_pairs_with_spacing():
    parsed = parse_cookie_header("a=1; b=2;  c = 3 ")
    assert parsed == {"a": "1", "b": "2", "c": "3"}


def test_parse_none_and_empty_header():
    assert parse_cookie_header(None) == {}
    assert parse_cookie_header("") == {}


def test_parse_skips_malformed_pairs():
    assert parse_cookie_header("good=1; malformed; =alsobad") == {"good": "1"}


def test_parse_strips_quoted_values():
    assert parse_cookie_header('q="hello world"') == {"q": "hello world"}


def test_parse_later_duplicate_wins():
    assert parse_cookie_header("x=1; x=2") == {"x": "2"}


def test_parse_value_containing_equals():
    assert parse_cookie_header("token=a=b=c") == {"token": "a=b=c"}


def test_set_cookie_default_format():
    rendered = SetCookie("bifrost_uid", "u-123").format()
    assert rendered.startswith("bifrost_uid=u-123")
    assert "Path=/" in rendered
    assert "HttpOnly" in rendered
    assert "Secure" not in rendered


def test_set_cookie_all_attributes():
    rendered = SetCookie(
        "s", "v", path="/app", max_age=3600, http_only=False, secure=True, same_site="Lax"
    ).format()
    assert "Path=/app" in rendered
    assert "Max-Age=3600" in rendered
    assert "HttpOnly" not in rendered
    assert "Secure" in rendered
    assert "SameSite=Lax" in rendered


def test_format_cookie_header_round_trips():
    cookies = {"a": "1", "b": "2"}
    assert parse_cookie_header(format_cookie_header(cookies)) == cookies
