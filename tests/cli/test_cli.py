"""Tests for the bifrost CLI."""

import asyncio
import threading

import pytest

from repro.cli import build_parser, main

VALID_DOC = """
strategy:
  name: cli-demo
  phases:
    - phase:
        name: wait
        duration: 0.02
        routes:
          - route:
              from: svc
              to: v2
              filters:
                - traffic:
                    percentage: 50
        next: done
    - final:
        name: done
deployment:
  services:
    svc:
      proxy: {proxy}
      stable: v1
      versions:
        v1: 127.0.0.1:9001
        v2: 127.0.0.1:9002
"""


@pytest.fixture
def valid_file(tmp_path):
    path = tmp_path / "strategy.yaml"
    path.write_text(VALID_DOC.format(proxy="127.0.0.1:7001"))
    return path


@pytest.fixture
def invalid_file(tmp_path):
    path = tmp_path / "bad.yaml"
    path.write_text("strategy:\n  name: broken\n")
    return path


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_validate_ok(valid_file, capsys):
    assert main(["validate", str(valid_file)]) == 0
    out = capsys.readouterr().out
    assert "OK: strategy 'cli-demo'" in out
    assert "states: 2" in out


def test_validate_invalid(invalid_file, capsys):
    """Machine-relevant verdicts (INVALID included) go to stdout."""
    captured_before = main(["validate", str(invalid_file)])
    streams = capsys.readouterr()
    assert captured_before == 1
    assert "INVALID" in streams.out
    assert streams.err == ""


def test_validate_missing_file(tmp_path):
    with pytest.raises(SystemExit):
        main(["validate", str(tmp_path / "ghost.yaml")])


def test_validate_with_verify_and_forecast(valid_file, capsys):
    assert main(["validate", str(valid_file), "--verify", "--forecast", "0.9"]) == 0
    out = capsys.readouterr().out
    assert "forecast" in out
    assert "expected rollout time" in out


def test_validate_verify_flags_errors(tmp_path, capsys):
    """A checked strategy without any rollback state exits 3."""
    document = """
strategy:
  name: risky
  phases:
    - phase:
        name: canary
        routes:
          - route:
              from: svc
              to: v2
              filters:
                - traffic:
                    percentage: 10
        checks:
          - metric:
              name: m
              query: q
              intervalTime: 1
              intervalLimit: 2
              validator: "<5"
        next: done
        onFailure: done
    - final:
        name: done
deployment:
  services:
    svc:
      proxy: 127.0.0.1:7001
      stable: v1
      versions:
        v1: 127.0.0.1:9001
        v2: 127.0.0.1:9002
"""
    path = tmp_path / "risky.yaml"
    path.write_text(document)
    assert main(["validate", str(path), "--verify"]) == 3
    assert "no-rollback" in capsys.readouterr().out


def test_lint_clean_file_exits_zero(valid_file, capsys):
    # VALID_DOC routes 50% unchecked, so ignore the advisory exposure
    # warning to get a clean strict run.
    assert (
        main(["lint", str(valid_file), "--strict", "--ignore", "BF305,BF203"])
        == 0
    )
    assert "no findings" in capsys.readouterr().out


def test_lint_warnings_exit_four_only_with_strict(valid_file, capsys):
    assert main(["lint", str(valid_file)]) == 0
    assert main(["lint", str(valid_file), "--strict"]) == 4
    out = capsys.readouterr().out
    assert "BF305" in out  # unmonitored exposure of v2


def test_lint_errors_exit_three_and_json_reports_lines(tmp_path, capsys):
    import json

    path = tmp_path / "broken.yaml"
    path.write_text(
        VALID_DOC.format(proxy="127.0.0.1:7001").replace(
            "next: done", "next: ghost"
        )
    )
    assert main(["lint", str(path), "--format", "json"]) == 3
    payload = json.loads(capsys.readouterr().out)
    codes = {d["code"] for d in payload["diagnostics"]}
    assert "BF107" in codes  # unknown state 'ghost'
    assert all(
        d["line"] is not None
        for d in payload["diagnostics"]
        if d["code"] == "BF107"
    )


def test_lint_multiple_files_aggregates(tmp_path, valid_file, capsys):
    import json

    bad = tmp_path / "bad.yaml"
    bad.write_text("a:\n\tb: 1\n")
    assert (
        main(["lint", str(valid_file), str(bad), "--format", "json"]) == 3
    )
    payload = json.loads(capsys.readouterr().out)
    assert len(payload["files"]) == 2
    assert payload["summary"]["error"] >= 1


def test_lint_sarif_output(valid_file, capsys):
    import json

    assert main(["lint", str(valid_file), "--format", "sarif"]) == 0
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0"
    assert log["runs"][0]["tool"]["driver"]["name"] == "bifrost-lint"


def test_render_text(valid_file, capsys):
    assert main(["render", str(valid_file)]) == 0
    out = capsys.readouterr().out
    assert "strategy cli-demo" in out
    assert "state wait" in out


def test_render_mermaid(valid_file, capsys):
    assert main(["render", str(valid_file), "--mermaid"]) == 0
    assert "stateDiagram-v2" in capsys.readouterr().out


def test_run_local_enacts_strategy(tmp_path, capsys):
    """`bifrost run` configures a real proxy and completes the strategy."""
    from repro.proxy import BifrostProxy

    holder = {}
    ready = threading.Event()
    release = threading.Event()

    def proxy_thread():
        async def body():
            proxy = BifrostProxy("svc", default_upstream="127.0.0.1:9001")
            await proxy.start()
            holder["address"] = proxy.address
            holder["proxy"] = proxy
            ready.set()
            while not release.is_set():
                await asyncio.sleep(0.01)
            holder["configured"] = proxy.active_config is not None
            await proxy.stop()

        asyncio.run(body())

    thread = threading.Thread(target=proxy_thread)
    thread.start()
    assert ready.wait(5)
    path = tmp_path / "strategy.yaml"
    path.write_text(VALID_DOC.format(proxy=holder["address"]))
    try:
        code = main(["run", str(path)])
    finally:
        release.set()
        thread.join(5)
    assert code == 0
    out = capsys.readouterr().out
    assert "cli-demo: completed" in out
    assert "wait -> done" in out
    assert "strategy_started" in out  # event stream printed
    assert holder["configured"]


def test_run_quiet_suppresses_events(tmp_path, capsys):
    from repro.proxy import BifrostProxy

    holder = {}
    ready = threading.Event()
    release = threading.Event()

    def proxy_thread():
        async def body():
            proxy = BifrostProxy("svc", default_upstream="127.0.0.1:9001")
            await proxy.start()
            holder["address"] = proxy.address
            ready.set()
            while not release.is_set():
                await asyncio.sleep(0.01)
            await proxy.stop()

        asyncio.run(body())

    thread = threading.Thread(target=proxy_thread)
    thread.start()
    assert ready.wait(5)
    path = tmp_path / "strategy.yaml"
    path.write_text(VALID_DOC.format(proxy=holder["address"]))
    try:
        code = main(["run", str(path), "--quiet"])
    finally:
        release.set()
        thread.join(5)
    assert code == 0
    out = capsys.readouterr().out
    assert "strategy_started" not in out


def test_status_events_cancel_against_running_engine(tmp_path, capsys):
    """Drive the remote-control commands against a live engine API."""
    from repro.core import Engine
    from repro.dashboard import EngineApiServer
    from repro.proxy import BifrostProxy, HttpProxyController

    holder = {}
    ready = threading.Event()
    release = threading.Event()

    def engine_thread():
        async def body():
            proxy = BifrostProxy("svc", default_upstream="127.0.0.1:9001")
            await proxy.start()
            controller = HttpProxyController({})
            engine = Engine(controller=controller)
            api = EngineApiServer(engine)
            await api.start()
            holder["api"] = api.address
            holder["proxy"] = proxy.address
            ready.set()
            while not release.is_set():
                await asyncio.sleep(0.01)
            await api.stop()
            await engine.shutdown()
            await controller.close()
            await proxy.stop()

        asyncio.run(body())

    thread = threading.Thread(target=engine_thread)
    thread.start()
    assert ready.wait(5)
    try:
        # Submit a long-running strategy via raw HTTP (what CI scripts do).
        import json
        import urllib.request

        document = VALID_DOC.format(proxy=holder["proxy"]).replace(
            "duration: 0.02", "duration: 60"
        )
        request = urllib.request.Request(
            f"http://{holder['api']}/api/strategies",
            data=document.encode(),
            method="POST",
        )
        with urllib.request.urlopen(request) as response:
            execution_id = json.loads(response.read())["execution"]

        assert main(["status", "--engine", holder["api"]]) == 0
        out = capsys.readouterr().out
        assert "cli-demo" in out
        assert "running" in out

        assert main(["events", "--engine", holder["api"]]) == 0
        out = capsys.readouterr().out
        assert "strategy_started" in out

        assert main(["cancel", "--engine", holder["api"], execution_id]) == 0
        assert "cancelled" in capsys.readouterr().out

        assert main(["cancel", "--engine", holder["api"], "ghost#9"]) == 1
    finally:
        release.set()
        thread.join(5)
