"""``bifrost chaos run``: game days from the command line."""

import pytest

from repro.cli import main


def test_chaos_run_example_rehearsal_surfaces_the_abort(capsys):
    # The shipped example is a red game day by design: the brownout
    # falsifies the steady-state hypothesis, the campaign aborts, and
    # the exit code says so.
    code = main(["chaos", "run", "examples/chaos_canary.yaml", "--rehearse"])
    out = capsys.readouterr().out
    assert code == 2
    assert "chaos_campaign_started" in out
    assert "chaos_injected" in out
    assert "chaos_steady_state_violated" in out
    assert "safe_routing_applied" in out
    assert "aborted: True" in out


def test_chaos_run_is_seed_reproducible(capsys):
    main(["chaos", "run", "examples/chaos_canary.yaml", "--rehearse"])
    first = capsys.readouterr().out
    main(["chaos", "run", "examples/chaos_canary.yaml", "--rehearse"])
    second = capsys.readouterr().out
    assert first == second
    # A different seed produces a different trace.
    main(
        ["chaos", "run", "examples/chaos_canary.yaml", "--rehearse", "--seed", "8"]
    )
    third = capsys.readouterr().out
    assert third != first


def test_chaos_run_survivable_campaign_exits_zero(tmp_path, capsys):
    text = (
        open("examples/chaos_canary.yaml", encoding="utf-8")
        .read()
        .replace("        mode: error\n", "        mode: latency\n        latency: 1.5\n")
    )
    path = tmp_path / "latency.yaml"
    path.write_text(text)
    code = main(["chaos", "run", str(path), "--rehearse", "--quiet"])
    out = capsys.readouterr().out
    assert code == 0
    assert "completed" in out
    assert "aborted: False" in out


def test_chaos_run_without_chaos_section_exits_two(tmp_path, capsys):
    path = tmp_path / "plain.yaml"
    path.write_text(
        """
strategy:
  name: plain
  phases:
    - phase:
        name: wait
        duration: 1
        next: done
    - final:
        name: done
deployment:
  services:
    svc:
      proxy: 127.0.0.1:7001
      stable: v1
      versions:
        v1: 127.0.0.1:9001
"""
    )
    code = main(["chaos", "run", str(path), "--rehearse"])
    err = capsys.readouterr().err
    assert code == 2
    assert "no chaos section" in err


def test_chaos_run_metric_override_changes_outcome(tmp_path, capsys):
    # Fixture value 80 makes even the un-faulted checks fail: the
    # strategy rolls back on its own, which is not a completed campaign.
    code = main(
        [
            "chaos",
            "run",
            "examples/chaos_canary.yaml",
            "--rehearse",
            "--quiet",
            "--metric",
            "errors_total=80",
        ]
    )
    out = capsys.readouterr().out
    assert code == 2
    assert "rolled_back" in out or "failed" in out


def test_chaos_run_bad_metric_flag(capsys):
    code = main(
        [
            "chaos",
            "run",
            "examples/chaos_canary.yaml",
            "--rehearse",
            "--metric",
            "errors_total=lots",
        ]
    )
    assert code == 1
    assert "bad --metric" in capsys.readouterr().err


def test_chaos_run_invalid_file(tmp_path, capsys):
    path = tmp_path / "broken.yaml"
    path.write_text("strategy:\n  name: broken\n")
    code = main(["chaos", "run", str(path), "--rehearse"])
    assert code == 1
    assert "INVALID" in capsys.readouterr().err
