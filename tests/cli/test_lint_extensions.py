"""CLI surface of the lint extensions: --format github, --fix, baselines."""

import json

import pytest

from repro.cli import main

VALID_DOC = """
strategy:
  name: cli-demo
  phases:
    - phase:
        name: wait
        duration: 0.02
        routes:
          - route:
              from: svc
              to: v2
              filters:
                - traffic:
                    percentage: 50
        next: done
    - final:
        name: done
deployment:
  services:
    svc:
      proxy: 127.0.0.1:7001
      stable: v1
      versions:
        v1: 127.0.0.1:9001
        v2: 127.0.0.1:9002
"""


@pytest.fixture
def broken_file(tmp_path):
    path = tmp_path / "broken.yaml"
    path.write_text(VALID_DOC.replace("next: done", "next: doen"))
    return path


def test_github_format_emits_workflow_commands(broken_file, capsys):
    assert main(["lint", str(broken_file), "--format", "github"]) == 3
    out = capsys.readouterr().out
    lines = [line for line in out.splitlines() if line.startswith("::")]
    assert lines, out
    [bf107] = [line for line in lines if "BF107" in line]
    assert bf107.startswith("::error ")
    assert f"file={broken_file}" in bf107
    assert "line=" in bf107
    assert "::state" not in bf107  # message newlines/colons are escaped


def test_github_format_escapes_message_payload(tmp_path, capsys):
    path = tmp_path / "odd.yaml"
    path.write_text(VALID_DOC.replace("next: done", "next: 100%odd"))
    main(["lint", str(path), "--format", "github"])
    out = capsys.readouterr().out
    assert "%25odd" in out  # '%' in the message arrives escaped


def test_github_format_clean_run_prints_nothing(tmp_path, capsys):
    path = tmp_path / "ok.yaml"
    path.write_text(VALID_DOC)
    assert (
        main(
            ["lint", str(path), "--format", "github", "--ignore", "BF305,BF203"]
        )
        == 0
    )
    assert capsys.readouterr().out.strip() == ""


def test_fix_flag_rewrites_file_then_lints(broken_file, capsys):
    assert (
        main(
            [
                "lint",
                str(broken_file),
                "--fix",
                "--format",
                "json",
                "--ignore",
                "BF305,BF203",
            ]
        )
        == 0
    )
    captured = capsys.readouterr()
    assert "next: done" in broken_file.read_text()
    assert "fixed" in captured.err
    payload = json.loads(captured.out)
    assert payload["summary"]["error"] == 0


def test_fix_twice_is_a_noop(broken_file, capsys):
    main(["lint", str(broken_file), "--fix"])
    first = broken_file.read_text()
    main(["lint", str(broken_file), "--fix"])
    assert broken_file.read_text() == first
    assert "fixed" not in capsys.readouterr().err.splitlines()[-1:]


def test_baseline_update_then_filter(tmp_path, capsys):
    strategy = tmp_path / "strategy.yaml"
    strategy.write_text(VALID_DOC)  # carries BF305/BF203 warnings
    baseline = tmp_path / "baseline.json"
    assert (
        main(
            [
                "lint",
                str(strategy),
                "--baseline",
                str(baseline),
                "--update-baseline",
            ]
        )
        == 0
    )
    assert "recorded" in capsys.readouterr().out
    # With the baseline applied, the same warnings no longer fail --strict.
    assert (
        main(
            [
                "lint",
                str(strategy),
                "--strict",
                "--baseline",
                str(baseline),
            ]
        )
        == 0
    )


def test_baseline_does_not_hide_new_errors(tmp_path, capsys):
    strategy = tmp_path / "strategy.yaml"
    strategy.write_text(VALID_DOC)
    baseline = tmp_path / "baseline.json"
    main(["lint", str(strategy), "--baseline", str(baseline), "--update-baseline"])
    capsys.readouterr()
    strategy.write_text(VALID_DOC.replace("next: done", "next: ghost"))
    assert (
        main(["lint", str(strategy), "--baseline", str(baseline)]) == 3
    )
    assert "BF107" in capsys.readouterr().out


def test_update_baseline_requires_baseline_path(tmp_path, capsys):
    strategy = tmp_path / "strategy.yaml"
    strategy.write_text(VALID_DOC)
    assert main(["lint", str(strategy), "--update-baseline"]) == 2
    assert "--baseline" in capsys.readouterr().err


def test_missing_baseline_file_is_a_usage_error(tmp_path, capsys):
    strategy = tmp_path / "strategy.yaml"
    strategy.write_text(VALID_DOC)
    assert (
        main(
            ["lint", str(strategy), "--baseline", str(tmp_path / "nope.json")]
        )
        == 2
    )
    assert "cannot read baseline" in capsys.readouterr().err
