"""Property tests for the query fast path.

Two equivalences back the optimizations:

* the compiled-query cache is invisible — a cached parse yields the exact
  same AST (frozen dataclasses compare structurally) and the same
  ``evaluate_scalar`` result as a fresh parse;
* the name-indexed, selector-cached ``MetricStore.select`` returns the same
  series set as the seed's reference linear scan over *all* series, for
  randomized label sets and every matcher operator.
"""

from hypothesis import given, settings, strategies as st

from repro.metrics import LabelMatcher, MetricStore, evaluate_scalar, parse
from repro.metrics.compile import compile_query

metric_names = st.sampled_from(["requests", "errors", "latency", "m_a", "m_b"])
label_names = st.sampled_from(["instance", "zone", "code", "v"])
# Values double as =~/!~ patterns, so keep them valid (if boring) regexes.
label_values = st.from_regex(r"[a-z][a-z0-9]{0,6}", fullmatch=True)
matcher_ops = st.sampled_from(["=", "!=", "=~", "!~"])

series_defs = st.lists(
    st.tuples(metric_names, st.dictionaries(label_names, label_values, max_size=3)),
    min_size=1,
    max_size=30,
)
matcher_defs = st.lists(
    st.tuples(label_names, matcher_ops, label_values), max_size=3
)


def _build_store(definitions):
    store = MetricStore()
    recorded = []
    for index, (name, labels) in enumerate(definitions):
        store.record(name, float(index), float(index), labels)
        recorded.append((name, labels))
    return store, recorded


def _reference_select(recorded, store, name, matchers):
    """The seed implementation: linear scan over every series in the store."""
    found = []
    seen = set()
    for series_name, labels in recorded:
        key = (series_name, tuple(sorted(labels.items())))
        if key in seen:
            continue
        seen.add(key)
        if series_name != name:
            continue
        if all(matcher.matches(labels) for matcher in matchers):
            found.append(key)
    return found


@settings(max_examples=200)
@given(series_defs, metric_names, matcher_defs)
def test_indexed_select_matches_linear_scan(definitions, name, raw_matchers):
    store, recorded = _build_store(definitions)
    matchers = [LabelMatcher(label, op, value) for label, op, value in raw_matchers]
    expected = sorted(_reference_select(recorded, store, name, matchers))
    for _ in range(2):  # second call exercises the selector cache
        selected = sorted(
            (series.key.name, series.key.labels) for series in store.select(name, matchers)
        )
        assert selected == expected


@settings(max_examples=100)
@given(series_defs, metric_names, matcher_defs, st.dictionaries(label_names, label_values, max_size=2))
def test_selector_cache_invalidation_keeps_equivalence(definitions, name, raw_matchers, extra_labels):
    store, recorded = _build_store(definitions)
    matchers = [LabelMatcher(label, op, value) for label, op, value in raw_matchers]
    store.select(name, matchers)  # populate the cache
    store.record(name, 1.0, float(len(recorded)), extra_labels)  # maybe a new series
    recorded.append((name, extra_labels))
    expected = sorted(_reference_select(recorded, store, name, matchers))
    selected = sorted(
        (series.key.name, series.key.labels) for series in store.select(name, matchers)
    )
    assert selected == expected


# -- cached parse vs fresh parse ----------------------------------------------------

range_functions = st.sampled_from(
    ["rate", "increase", "avg_over_time", "max_over_time", "count_over_time"]
)
aggregations = st.sampled_from(["sum", "avg", "min", "max", "count"])


@st.composite
def query_strings(draw):
    name = draw(metric_names)
    matchers = draw(matcher_defs)
    rendered = ""
    if matchers:
        rendered = "{" + ", ".join(
            f'{label}{op}"{value}"' for label, op, value in matchers
        ) + "}"
    shape = draw(st.sampled_from(["selector", "range", "aggregated", "arith"]))
    if shape == "selector":
        return f"{name}{rendered}"
    if shape == "range":
        function = draw(range_functions)
        window = draw(st.sampled_from(["30s", "2m", "1h"]))
        return f"{function}({name}{rendered}[{window}])"
    if shape == "aggregated":
        aggregation = draw(aggregations)
        return f"{aggregation}({name}{rendered})"
    scalar = draw(st.integers(min_value=1, max_value=100))
    return f"{name}{rendered} * {scalar}"


@settings(max_examples=200)
@given(query_strings())
def test_cached_parse_equals_fresh_parse(query):
    assert compile_query(query) == parse(query)


@settings(max_examples=100)
@given(series_defs, query_strings())
def test_cached_and_fresh_parse_evaluate_identically(definitions, query):
    store, recorded = _build_store(definitions)
    at = float(len(recorded))
    fresh = evaluate_scalar(store, parse(query), at)
    cached = evaluate_scalar(store, compile_query(query), at)
    via_string = evaluate_scalar(store, query, at)
    assert fresh == cached == via_string
