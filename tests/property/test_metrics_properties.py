"""Property-based tests for the metrics substrate."""

from hypothesis import given, settings, strategies as st

from repro.loadgen import SummaryStats, percentile
from repro.metrics import MetricPoint, MetricStore, evaluate_scalar, parse_exposition, render_exposition
from repro.analysis.timeseries import BoxplotStats

label_values = st.text(
    alphabet=st.characters(codec="ascii", categories=("L", "N", "P", "Z"),
                           exclude_characters='\n\r'),
    max_size=20,
)
metric_names = st.from_regex(r"[a-zA-Z_][a-zA-Z0-9_]{0,15}", fullmatch=True)


@settings(max_examples=100)
@given(
    st.lists(
        st.tuples(
            metric_names,
            st.dictionaries(metric_names, label_values, max_size=3),
            st.floats(allow_nan=False, allow_infinity=True, width=32),
        ),
        max_size=10,
    )
)
def test_exposition_round_trip(points_data):
    points = [MetricPoint(name, labels, value) for name, labels, value in points_data]
    assert parse_exposition(render_exposition(points)) == points


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=50,
    )
)
def test_monotone_samples_evaluate_consistently(values):
    """An instant query returns exactly the latest recorded value."""
    store = MetricStore()
    for t, value in enumerate(sorted(values)):
        store.record("m", value, float(t))
    assert evaluate_scalar(store, "m", at=float(len(values))) == sorted(values)[-1]


@given(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=100,
    )
)
def test_summary_stats_invariants(values):
    stats = SummaryStats.of(values)
    assert stats.count == len(values)
    # Allow for float summation error: mean([0.2]*3) > 0.2 by one ulp.
    epsilon = 1e-9 * max(1.0, abs(stats.maximum), abs(stats.minimum))
    assert stats.minimum - epsilon <= stats.mean <= stats.maximum + epsilon
    assert stats.minimum <= stats.median <= stats.maximum
    assert stats.sd >= 0.0


@given(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=100,
    ),
    st.floats(min_value=0, max_value=100),
)
def test_percentile_is_an_element_within_bounds(values, q):
    result = percentile(values, q)
    assert result in values
    assert min(values) <= result <= max(values)


@given(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=100,
    )
)
def test_boxplot_stats_ordering(values):
    box = BoxplotStats.of(values)
    assert box.minimum <= box.q1 <= box.median <= box.q3 <= box.maximum
    assert box.count == len(values)
