"""Property-based equivalence: ShardedMetricStore ≡ MetricStore.

A sharded store is an implementation detail, not a semantic change: for
any interleaving of records and clears, at any shard count, every query
must answer exactly what the monolithic store answers, and the facade's
invalidation signal (generation movement) must fire under exactly the
same operations.
"""

from hypothesis import given, settings, strategies as st

from repro.metrics import (
    MetricStore,
    ShardedMetricStore,
    evaluate,
    shard_index_for,
)
from repro.metrics.compile import compile_query
from repro.metrics.query import expression_generation

NAME_POOL = [f"metric_{index}_total" for index in range(12)]
INSTANCE_POOL = ["inst-0", "inst-1", "inst-2"]

# An operation stream: records (name, instance, value) with monotonically
# increasing timestamps assigned by position, with occasional clears.
operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("record"),
            st.sampled_from(NAME_POOL),
            st.sampled_from(INSTANCE_POOL),
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        ),
        st.just(("clear",)),
    ),
    max_size=60,
)

shard_counts = st.integers(min_value=1, max_value=8)


def _apply(store, ops):
    for timestamp, op in enumerate(ops):
        if op[0] == "clear":
            store.clear()
        else:
            _, name, instance, value = op
            store.record(name, value, float(timestamp), {"instance": instance})


def _vector(store, query, at):
    return sorted(
        ((tuple(sorted(sample.labels.items())), sample.value)
         for sample in evaluate(store, query, at)),
    )


@settings(max_examples=60, deadline=None)
@given(operations, shard_counts)
def test_queries_answer_identically(ops, shards):
    mono = MetricStore()
    sharded = ShardedMetricStore(shard_count=shards)
    _apply(mono, ops)
    _apply(sharded, ops)

    at = float(len(ops) + 1)
    assert len(sharded) == len(mono)
    assert sharded.names() == mono.names()
    for name in NAME_POOL:
        assert _vector(sharded, name, at) == _vector(mono, name, at)
        assert _vector(sharded, f"sum({name})", at) == _vector(
            mono, f"sum({name})", at
        )
        assert _vector(
            sharded, f'rate({name}{{instance="inst-0"}}[30s])', at
        ) == _vector(mono, f'rate({name}{{instance="inst-0"}}[30s])', at)


@settings(max_examples=60, deadline=None)
@given(operations, shard_counts)
def test_retention_prunes_identically(ops, shards):
    mono = MetricStore(retention=10.0)
    sharded = ShardedMetricStore(shard_count=shards, retention=10.0)
    _apply(mono, ops)
    _apply(sharded, ops)
    at = float(len(ops) + 1)
    assert len(sharded) == len(mono)
    for name in NAME_POOL:
        assert _vector(sharded, name, at) == _vector(mono, name, at)


@settings(max_examples=60, deadline=None)
@given(operations, shard_counts)
def test_generation_moves_under_the_same_operations(ops, shards):
    """Invalidation equivalence, as deltas: after every operation the
    sharded facade's generation moved iff the monolithic store's did.
    (Absolute values differ — ``clear()`` bumps every shard's counter —
    but cache keys only care about *movement*.)"""
    mono = MetricStore()
    sharded = ShardedMetricStore(shard_count=shards)
    for timestamp, op in enumerate(ops):
        mono_before, sharded_before = mono.generation, sharded.generation
        if op[0] == "clear":
            mono.clear()
            sharded.clear()
        else:
            _, name, instance, value = op
            mono.record(name, value, float(timestamp), {"instance": instance})
            sharded.record(name, value, float(timestamp), {"instance": instance})
        assert (mono.generation != mono_before) == (
            sharded.generation != sharded_before
        )
        assert sharded.generation >= sharded_before  # monotonic facade


@settings(max_examples=80, deadline=None)
@given(
    st.sampled_from(NAME_POOL),
    st.sampled_from(NAME_POOL),
    shard_counts,
)
def test_expression_generation_scopes_to_owning_shard(queried, recorded, shards):
    """Recording into a shard moves the stamps of exactly the expressions
    whose metric names live in that shard."""
    store = ShardedMetricStore(shard_count=shards)
    store.record(queried, 1.0, 0.0)
    expression = compile_query(f"sum({queried})")
    before = expression_generation(store, expression)
    store.record(recorded, 2.0, 1.0)
    moved = expression_generation(store, expression) != before
    same_shard = shard_index_for(queried, shards) == shard_index_for(
        recorded, shards
    )
    assert moved == same_shard
    if queried == recorded:
        assert moved  # a query always sees writes to its own metric
