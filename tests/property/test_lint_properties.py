"""Property-based tests for the lint engine.

The two invariants the engine promises:

* **total** — lint never raises, whatever document or strategy it is
  given (malformations become diagnostics, not exceptions);
* **deterministic** — the same input yields the same diagnostics in the
  same order.
"""

from hypothesis import given, settings, strategies as st

from repro.core import (
    StrategyBuilder,
    canary_split,
    simple_basic_check,
    single_version,
)
from repro.dsl import dumps
from repro.lint import lint_document, lint_strategy, lint_text

keys = st.sampled_from(
    [
        "strategy",
        "deployment",
        "lint",
        "phases",
        "phase",
        "rollout",
        "final",
        "name",
        "next",
        "onFailure",
        "routes",
        "route",
        "checks",
        "metric",
        "query",
        "thresholds",
        "targets",
        "transitions",
        "outcomes",
        "weight",
        "duration",
        "services",
        "versions",
        "stable",
        "proxy",
        "filters",
        "traffic",
        "percentage",
        "shadow",
        "sticky",
        "x",
    ]
)

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**6), max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(
        alphabet=st.characters(codec="ascii", categories=("L", "N", "P")),
        max_size=20,
    ),
)


def documents(depth=4):
    if depth == 0:
        return scalars
    return st.one_of(
        scalars,
        st.lists(documents(depth - 1), max_size=4),
        st.dictionaries(keys, documents(depth - 1), max_size=5),
    )


@settings(max_examples=150, deadline=None)
@given(documents())
def test_lint_document_never_raises_and_is_deterministic(document):
    first = lint_document(document, file="random.yaml")
    second = lint_document(document, file="random.yaml")
    assert [str(d) for d in first.diagnostics] == [
        str(d) for d in second.diagnostics
    ]


@settings(max_examples=75, deadline=None)
@given(documents())
def test_lint_text_never_raises_on_serialized_documents(document):
    try:
        text = dumps(document)
    except Exception:
        # Not every random structure serializes (nested sequences); the
        # parser can then never produce it either — skip quietly.
        return
    result = lint_text(text, file="random.yaml")
    assert all(d.code.startswith("BF") for d in result.diagnostics)


@settings(max_examples=60, deadline=None)
@given(st.text(max_size=200))
def test_lint_text_never_raises_on_arbitrary_text(text):
    result = lint_text(text, file="noise.yaml")
    result.exit_code(strict=True)  # summary math never raises either


# -- random strategies -------------------------------------------------------


@st.composite
def strategies(draw):
    """Small random automata over one service with optional defects."""
    state_count = draw(st.integers(min_value=1, max_value=5))
    names = [f"s{i}" for i in range(state_count)]
    builder = StrategyBuilder("random")
    builder.service("svc", {"stable": "h:1", "canary": "h:2"})
    has_final = draw(st.booleans())
    for index, name in enumerate(names):
        state = builder.state(name)
        if draw(st.booleans()):
            state.route(
                "svc",
                canary_split(
                    "stable",
                    "canary",
                    draw(st.floats(min_value=0.0, max_value=100.0)),
                ),
            )
        make_final = (index == state_count - 1 and has_final) or draw(
            st.booleans()
        )
        if make_final:
            state.final(rollback=draw(st.booleans()))
            continue
        if draw(st.booleans()):
            state.check(
                simple_basic_check(
                    f"c{index}",
                    draw(st.sampled_from(["up", "rate(x[1m])", "nonsense(("])),
                    "<5",
                    1,
                    3,
                )
            )
            state.transitions(
                [0.5],
                [draw(st.sampled_from(names)), draw(st.sampled_from(names))],
            )
        else:
            state.dwell(1).goto(draw(st.sampled_from(names)))
    return builder.build_unchecked() if hasattr(builder, "build_unchecked") else builder


@settings(max_examples=60, deadline=None)
@given(strategies())
def test_lint_strategy_never_raises_and_is_deterministic(builder_or_strategy):
    # StrategyBuilder.build() validates; lint must handle strategies the
    # builder refuses too, so feed it the raw (possibly invalid) object.
    if isinstance(builder_or_strategy, StrategyBuilder):
        try:
            strategy = builder_or_strategy.build()
        except Exception:
            return
    else:
        strategy = builder_or_strategy
    first = lint_strategy(strategy)
    second = lint_strategy(strategy)
    assert [str(d) for d in first.diagnostics] == [
        str(d) for d in second.diagnostics
    ]
    for diagnostic in first.diagnostics:
        assert diagnostic.code.startswith("BF")
        assert diagnostic.message
