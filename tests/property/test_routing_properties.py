"""Property-based tests for routing configs, selection, and filters."""

import random

from hypothesis import given, settings, strategies as st

from repro.core import RoutingConfig, TrafficSplit, stable_fraction
from repro.core.selection import VersionAssigner
from repro.httpcore import Headers, Request
from repro.proxy import CLIENT_COOKIE, FilterChain


def split_configs():
    """Valid traffic splits: 1-4 versions whose shares sum to 100."""

    @st.composite
    def build(draw):
        count = draw(st.integers(min_value=1, max_value=4))
        if count == 1:
            shares = [100.0]
        else:
            cuts = sorted(
                draw(
                    st.lists(
                        st.floats(min_value=0.5, max_value=99.5),
                        min_size=count - 1,
                        max_size=count - 1,
                        unique=True,
                    )
                )
            )
            bounds = [0.0] + cuts + [100.0]
            shares = [bounds[i + 1] - bounds[i] for i in range(count)]
        sticky = draw(st.booleans())
        return RoutingConfig(
            splits=[TrafficSplit(f"v{i}", share) for i, share in enumerate(shares)],
            sticky=sticky,
        )

    return build()


@given(split_configs())
def test_valid_configs_survive_wire_round_trip(config):
    config.validate()
    restored = RoutingConfig.from_wire(config.to_wire())
    assert [s.version for s in restored.splits] == [s.version for s in config.splits]
    assert restored.sticky == config.sticky


@given(split_configs(), st.text(min_size=1, max_size=30))
def test_assignment_always_yields_declared_version(config, user_id):
    assigner = VersionAssigner(config)
    version = assigner.assign(user_id)
    assert version in {split.version for split in config.splits}


@given(split_configs(), st.text(min_size=1, max_size=30))
def test_assignment_is_deterministic(config, user_id):
    first = VersionAssigner(config).assign(user_id)
    second = VersionAssigner(config).assign(user_id)
    assert first == second


@given(st.text(min_size=1, max_size=50), st.text(min_size=1, max_size=20))
def test_stable_fraction_in_unit_interval(user_id, seed):
    fraction = stable_fraction(user_id, seed)
    assert 0.0 <= fraction < 1.0


@settings(max_examples=50)
@given(split_configs(), st.lists(st.uuids(), min_size=1, max_size=20, unique=True))
def test_filter_chain_decisions_match_splits(config, client_ids):
    chain = FilterChain(config, rng=random.Random(0))
    for client_id in client_ids:
        request = Request(
            "GET", "/x", Headers([("Cookie", f"{CLIENT_COOKIE}={client_id}")])
        )
        decision = chain.decide(request)
        assert decision.version in {split.version for split in config.splits}
        assert decision.client_id == str(client_id)
        assert not decision.set_cookie  # cookie was supplied


@settings(max_examples=30)
@given(split_configs())
def test_sticky_chains_never_move_a_client(config):
    chain = FilterChain(config, rng=random.Random(1))
    request = Request(
        "GET", "/x", Headers([("Cookie", f"{CLIENT_COOKIE}=client-fixed")])
    )
    versions = {chain.decide(request).version for _ in range(10)}
    assert len(versions) == 1
