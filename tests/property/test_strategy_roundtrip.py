"""Property-based round trip of the whole DSL pipeline.

Generates random (but valid) strategies with the builder, serializes them
to DSL text, compiles the text back, and asserts the automaton survived:
states, transitions, checks, timers, validators, routing shares, sticky
flags, and rollback markers.
"""

from hypothesis import given, settings, strategies as st

from repro.core import (
    ExceptionCheck,
    RoutingConfig,
    StrategyBuilder,
    TrafficSplit,
    simple_basic_check,
    single_version,
)
from repro.core.checks import BasicCheck, MetricCondition, Timer
from repro.dsl import DeployedService, Deployment, compile_document, serialize

VERSIONS = ["stable", "v1", "v2"]


def make_deployment() -> Deployment:
    deployment = Deployment()
    deployment.services["svc"] = DeployedService(
        name="svc",
        proxy="127.0.0.1:7001",
        stable="stable",
        versions={name: f"127.0.0.1:{9000 + i}" for i, name in enumerate(VERSIONS)},
    )
    return deployment


@st.composite
def routing_configs(draw):
    version = draw(st.sampled_from(VERSIONS[1:]))
    share = draw(st.integers(min_value=1, max_value=99))
    sticky = draw(st.booleans())
    return RoutingConfig(
        splits=[
            TrafficSplit("stable", float(100 - share)),
            TrafficSplit(version, float(share)),
        ],
        sticky=sticky,
    )


@st.composite
def basic_checks(draw, name):
    interval = draw(st.sampled_from([0.5, 1.0, 5.0, 12.0]))
    repetitions = draw(st.integers(min_value=1, max_value=12))
    threshold = draw(st.integers(min_value=1, max_value=repetitions))
    op = draw(st.sampled_from(["<", "<=", ">", ">="]))
    bound = draw(st.integers(min_value=-100, max_value=100))
    return simple_basic_check(
        name,
        f'metric_{name.replace("-", "_")}{{instance="svc"}}',
        f"{op}{bound}",
        interval,
        repetitions,
        threshold=threshold,
    )


@st.composite
def strategies(draw):
    builder = StrategyBuilder("generated")
    builder.service(
        "svc", {name: f"127.0.0.1:{9000 + i}" for i, name in enumerate(VERSIONS)}
    )
    phase_count = draw(st.integers(min_value=1, max_value=4))
    names = [f"phase-{i}" for i in range(phase_count)]
    for index, name in enumerate(names):
        state = builder.state(name)
        state.route("svc", draw(routing_configs()))
        check_count = draw(st.integers(min_value=0, max_value=2))
        for check_index in range(check_count):
            state.check(
                draw(basic_checks(f"check-{index}-{check_index}")),
                weight=float(draw(st.integers(min_value=1, max_value=3))),
            )
        if draw(st.booleans()):
            state.check(
                ExceptionCheck(
                    f"guard-{index}",
                    MetricCondition.simple(f'errors{{instance="svc"}}', "<100"),
                    Timer(1.0, 5),
                    fallback_state="rollback",
                ),
                weight=0.0,
            )
        if not state._checks:
            state.dwell(float(draw(st.integers(min_value=1, max_value=60))))
        follower = names[index + 1] if index + 1 < len(names) else "done"
        boundary = float(draw(st.integers(min_value=0, max_value=5)))
        state.transitions([boundary], ["rollback", follower])
    builder.state("done").route("svc", single_version(VERSIONS[-1])).final()
    builder.state("rollback").route("svc", single_version("stable")).final(
        rollback=True
    )
    return builder.build()


@settings(max_examples=40, deadline=None)
@given(strategies())
def test_serialize_compile_round_trip(strategy):
    text = serialize(strategy, make_deployment())
    compiled = compile_document(text)
    original = strategy.automaton
    restored = compiled.strategy.automaton

    assert set(restored.states) == set(original.states)
    assert restored.start == original.start
    assert restored.final_states == original.final_states

    for name, original_state in original.states.items():
        restored_state = restored.states[name]
        assert restored_state.final == original_state.final
        assert restored_state.rollback == original_state.rollback

        if original_state.transitions is not None:
            assert restored_state.transitions is not None
            assert (
                restored_state.transitions.ranges.thresholds
                == original_state.transitions.ranges.thresholds
            )
            assert (
                restored_state.transitions.targets
                == original_state.transitions.targets
            )

        # Checks: names, timers, validators, thresholds, weights.
        original_checks = {c.name: c for c in original_state.checks}
        restored_checks = {c.name: c for c in restored_state.checks}
        assert set(restored_checks) == set(original_checks)
        original_weights = dict(
            zip((c.name for c in original_state.checks), original_state.weights)
        )
        restored_weights = dict(
            zip((c.name for c in restored_state.checks), restored_state.weights)
        )
        for check_name, original_check in original_checks.items():
            restored_check = restored_checks[check_name]
            assert restored_check.timer == original_check.timer
            assert str(restored_check.condition.validator) == str(
                original_check.condition.validator
            )
            assert restored_weights[check_name] == original_weights[check_name]
            if isinstance(original_check, ExceptionCheck):
                assert isinstance(restored_check, ExceptionCheck)
                assert (
                    restored_check.fallback_state == original_check.fallback_state
                )
            else:
                assert isinstance(restored_check, BasicCheck)
                assert restored_check.output.ranges == original_check.output.ranges
                assert restored_check.output.results == original_check.output.results

        # Routing: per-version shares, stickiness, shadows.
        for service, original_config in original_state.routing.items():
            restored_config = restored_state.routing[service]
            original_shares = {
                s.version: s.percentage
                for s in original_config.splits
                if s.percentage > 0
            }
            restored_shares = {
                s.version: s.percentage
                for s in restored_config.splits
                if s.percentage > 0
            }
            assert restored_shares == original_shares
            assert restored_config.sticky == original_config.sticky
