"""Property-based tests: yaml_lite round trip over arbitrary documents."""

from hypothesis import given, settings, strategies as st

from repro.dsl import dumps, loads

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**12), max_value=10**12),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(
        alphabet=st.characters(
            codec="ascii", categories=("L", "N", "P", "S", "Z"), exclude_characters="\r"
        ),
        max_size=40,
    ),
)

keys = st.text(
    alphabet=st.characters(codec="ascii", categories=("L", "N")), min_size=1, max_size=15
)


def documents(depth=3):
    if depth == 0:
        return scalars
    return st.one_of(
        scalars,
        st.lists(
            st.one_of(scalars, st.dictionaries(keys, documents(depth - 1), max_size=3)),
            max_size=4,
        ),
        st.dictionaries(keys, documents(depth - 1), max_size=4),
    )


def normalize(value):
    """floats that are integral may round-trip as ints via repr? (they do
    not: repr keeps the .0) — but -0.0 loads as 0.0; normalize that."""
    if isinstance(value, float) and value == 0.0:
        return 0.0
    if isinstance(value, list):
        return [normalize(item) for item in value]
    if isinstance(value, dict):
        return {key: normalize(item) for key, item in value.items()}
    return value


@settings(max_examples=150)
@given(documents())
def test_dumps_loads_round_trip(document):
    assert normalize(loads(dumps(document))) == normalize(document)


@given(st.dictionaries(keys, scalars, min_size=1, max_size=8))
def test_flat_mapping_round_trip(mapping):
    assert normalize(loads(dumps(mapping))) == normalize(mapping)


@given(st.lists(scalars, min_size=1, max_size=10))
def test_scalar_list_round_trip(items):
    assert normalize(loads(dumps(items))) == normalize(items)
