"""Properties of the semantic pass (BF6xx) and the autofix engine.

* the semantic rules are **total** and **deterministic** over every
  strategy the resilience corpus can generate, and report **zero
  findings** on them — lints-clean still implies compiles-and-enacts
  for the whole soak corpus;
* `fix_text` is **idempotent** and never changes a clean document;
* fixing a defective document converges and the fixed text re-lints
  clean of the defects the fixers own.
"""

from hypothesis import given, settings, strategies as st

from repro.lint import fix_text, lint_strategy, lint_text
from repro.resilience.corpus import (
    _build_campaign,
    _build_strategy,
    generate_scenario,
)

CORPUS_SIZE = 200


def corpus_lint(seed):
    scenario = generate_scenario(seed)
    return lint_strategy(
        _build_strategy(scenario), campaign=_build_campaign(scenario)
    )


def test_semantic_pass_reports_zero_findings_on_whole_corpus():
    offending = {}
    for seed in range(CORPUS_SIZE):
        findings = [
            d
            for d in corpus_lint(seed).diagnostics
            if d.code.startswith("BF6")
        ]
        if findings:
            offending[seed] = [str(d) for d in findings]
    assert not offending, offending


@given(st.integers(min_value=0, max_value=CORPUS_SIZE - 1))
@settings(max_examples=30, deadline=None)
def test_semantic_pass_is_deterministic_over_corpus(seed):
    first = corpus_lint(seed)
    second = corpus_lint(seed)
    assert [str(d) for d in first.diagnostics] == [
        str(d) for d in second.diagnostics
    ]


BASE = """\
strategy:
  name: demo
  phases:
    - phase:
        name: canary
        duration: 30
        routes:
          - route:
              from: search
              to: v2
              filters:
                - traffic:
                    percentage: {percentage}
        checks:
          - metric:
              name: errors_ok
              provider: prometheus
              query: errors_total
              validator: "< 50"
              intervalTime: 5
              intervalLimit: 3
              threshold: 2
        transitions:
          thresholds: [{thresholds}]
          targets: [{targets}]
    - final:
        name: done
    - final:
        name: rollback
        rollback: true
deployment:
  services:
    search:
      proxy: 127.0.0.1:9000
      stable: v1
      versions:
        v1: 127.0.0.1:8081
        v2: 127.0.0.1:8082
{chaos}"""

CHAOS = """\
chaos:
  faults:
    - fault:
        name: outage
        target: provider:prometheus
        rate: 0.5
        during: [canary]
"""

names = st.sampled_from(["done", "doen", "rollback", "rolback", "elsewhere"])


@st.composite
def documents(draw):
    count = draw(st.integers(min_value=1, max_value=3))
    thresholds = draw(
        st.lists(
            st.integers(min_value=0, max_value=9),
            min_size=count,
            max_size=count,
        )
    )
    targets = draw(st.lists(names, min_size=count + 1, max_size=count + 1))
    percentage = draw(st.sampled_from([10, 50, 120, 250]))
    chaos = draw(st.sampled_from(["", CHAOS]))
    return BASE.format(
        percentage=percentage,
        thresholds=", ".join(str(t) for t in thresholds),
        targets=", ".join(targets),
        chaos=chaos,
    )


@given(documents())
@settings(max_examples=60, deadline=None)
def test_fix_is_idempotent_and_total(document):
    once = fix_text(document)
    twice = fix_text(once.text)
    assert twice.text == once.text
    assert not twice.changed


@given(documents())
@settings(max_examples=60, deadline=None)
def test_fix_never_touches_clean_documents(document):
    result = lint_text(document)
    if result.diagnostics:
        return  # only clean documents carry the byte-identity guarantee
    assert fix_text(document).text == document


@given(documents())
@settings(max_examples=60, deadline=None)
def test_fix_clears_every_fixer_owned_defect_it_can(document):
    fixed = fix_text(document)
    if not fixed.changed:
        return
    before = {d.code for d in lint_text(document).diagnostics}
    after = {d.code for d in lint_text(fixed.text).diagnostics}
    # Fixing must never introduce defects of the classes the fixers own.
    for code in ("BF105", "BF201", "BF503"):
        assert not (code in after and code not in before)
