"""Property proof: the compiled RoutingPlan ≡ the interpreted filter chain.

``FilterChain.decide()`` runs on the plan compiled at config-apply time;
``FilterChain.decide_interpreted()`` is the original per-request
implementation kept as the executable spec.  Two chains over the same
hypothesis-generated configuration — one per path, with independent sticky
stores and identically-seeded RNGs — must make identical decisions for
identical request streams, shadows included.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core import FilterKind, RoutingConfig, ShadowRoute, TrafficSplit
from repro.httpcore import Headers, Request
from repro.proxy import CLIENT_COOKIE, FilterChain, StickyStore

_CLIENT_POOL = [f"client-{i}" for i in range(6)]


@st.composite
def routing_configs(draw):
    """Valid configs over 1-4 versions, optionally sticky/shadowed."""
    count = draw(st.integers(min_value=1, max_value=4))
    if count == 1:
        shares = [100.0]
    else:
        cuts = sorted(
            draw(
                st.lists(
                    st.floats(min_value=0.5, max_value=99.5),
                    min_size=count - 1,
                    max_size=count - 1,
                    unique=True,
                )
            )
        )
        bounds = [0.0] + cuts + [100.0]
        shares = [bounds[i + 1] - bounds[i] for i in range(count)]
    versions = [f"v{i}" for i in range(count)]
    shadows = [
        ShadowRoute(
            source_version=draw(st.sampled_from(versions)),
            target_version=draw(st.sampled_from(versions)),
            percentage=draw(
                st.one_of(
                    st.just(100.0),
                    st.floats(min_value=0.0, max_value=99.9),
                )
            ),
        )
        for _ in range(draw(st.integers(min_value=0, max_value=3)))
    ]
    return RoutingConfig(
        splits=[TrafficSplit(v, share) for v, share in zip(versions, shares)],
        shadows=shadows,
        sticky=draw(st.booleans()),
        filter_kind=draw(st.sampled_from([FilterKind.COOKIE, FilterKind.HEADER])),
    )


def _request_for(config, token):
    """One request per drawn token, shaped for the config's filter mode."""
    if config.filter_kind is FilterKind.HEADER:
        if token is None:
            return Request("GET", "/x")
        # Both known groups and an unknown one exercise the fallback.
        return Request("GET", "/x", Headers([(config.header_name, token)]))
    # Cookie mode: always supply the cookie — an absent cookie makes the
    # chain mint a fresh uuid4, which would trivially diverge between the
    # two chains for reasons unrelated to the plan.
    return Request("GET", "/x", Headers([("Cookie", f"{CLIENT_COOKIE}={token}")]))


@settings(max_examples=80, deadline=None)
@given(
    routing_configs(),
    st.lists(
        st.one_of(st.none(), st.sampled_from(_CLIENT_POOL + ["unknown-group"])),
        min_size=1,
        max_size=25,
    ),
    st.integers(min_value=0, max_value=2**31),
)
def test_plan_decisions_match_interpreter(config, tokens, rng_seed):
    fast = FilterChain(
        config, sticky_store=StickyStore(), rng=random.Random(rng_seed)
    )
    slow = FilterChain(
        config, sticky_store=StickyStore(), rng=random.Random(rng_seed)
    )
    for token in tokens:
        if config.filter_kind is not FilterKind.HEADER and token is None:
            token = "client-none"
        planned = fast.decide(_request_for(config, token))
        interpreted = slow.decide_interpreted(_request_for(config, token))
        assert planned.version == interpreted.version
        assert planned.client_id == interpreted.client_id
        assert planned.set_cookie == interpreted.set_cookie
        assert planned.shadows == interpreted.shadows


@settings(max_examples=50, deadline=None)
@given(routing_configs(), st.sampled_from(_CLIENT_POOL))
def test_plan_bucket_matches_interpreted_bucket(config, client_id):
    chain = FilterChain(config)
    assert chain.plan.bucket(client_id) == chain._bucket_interpreted(client_id)
