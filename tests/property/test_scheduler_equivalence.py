"""Shared scheduler vs per-task runner: observational equivalence.

The engine now runs every check through one :class:`CheckScheduler` heap
instead of one asyncio task per check.  These properties generate random
check populations — mixed basic/exception checks, random intervals and
repetition counts, random pass/fail/no-data value sequences, and random
``onProviderError`` policies — and run the same population through both
enactment paths under a :class:`VirtualClock`.  Execution timestamps,
observer streams, aggregation, and trigger instants must be identical.
"""

import asyncio

from hypothesis import given, settings, strategies as st

from repro.clock import VirtualClock
from repro.core import (
    CheckResult,
    CheckRunner,
    CheckScheduler,
    ExceptionCheck,
    ExceptionTriggered,
    MetricCondition,
    ProviderErrorPolicy,
    Timer,
    simple_basic_check,
)
from repro.metrics import StaticProvider

# Value sequences: 1.0 passes "<5", 99.0 fails it, None is "no data".
tick_values = st.lists(
    st.sampled_from([1.0, 99.0, None]), min_size=1, max_size=6
)

policies = st.one_of(
    st.just(ProviderErrorPolicy(mode="trigger")),
    st.just(ProviderErrorPolicy(mode="hold")),
    st.builds(
        ProviderErrorPolicy,
        mode=st.just("tolerate"),
        tolerance=st.integers(min_value=1, max_value=3),
    ),
)

check_specs = st.lists(
    st.tuples(
        st.booleans(),  # exception check?
        st.sampled_from([1.0, 2.0, 3.0, 5.0]),  # interval
        st.integers(min_value=1, max_value=6),  # repetitions
        tick_values,
        policies,
    ),
    min_size=1,
    max_size=5,
)


def build_checks(specs):
    """One check per spec, each reading its own provider key so the two
    runs consume identical value sequences regardless of interleaving."""
    checks, data = [], {}
    for index, (exceptional, interval, repetitions, values, policy) in enumerate(specs):
        query = f"q{index}"
        data[query] = list(values)
        if exceptional:
            checks.append(
                ExceptionCheck(
                    name=f"check{index}",
                    condition=MetricCondition.simple(query, "<5", provider="static"),
                    timer=Timer(interval, repetitions),
                    fallback_state="rollback",
                    on_provider_error=policy,
                )
            )
        else:
            checks.append(
                simple_basic_check(
                    f"check{index}", query, "<5", interval, repetitions,
                    threshold=1, provider="static",
                )
            )
    return checks, data


def normalize(outcome):
    if isinstance(outcome, ExceptionTriggered):
        return ("triggered", outcome.check.name, outcome.at)
    assert isinstance(outcome, CheckResult)
    return (
        "completed",
        outcome.aggregated,
        outcome.mapped,
        [(e.at, e.result) for e in outcome.executions],
    )


def observer_into(stream):
    def observer(check, execution):
        stream.setdefault(check.name, []).append((execution.at, execution.result))
    return observer


async def run_sequential_population(checks, data, horizon):
    clock = VirtualClock()
    providers = {"static": StaticProvider(dict(data))}
    observed: dict[str, list] = {}
    tasks = [
        asyncio.ensure_future(
            CheckRunner(check, providers, clock, observer_into(observed)).run_sequential()
        )
        for check in checks
    ]
    await asyncio.sleep(0)
    await clock.advance(horizon)
    outcomes = await asyncio.gather(*tasks, return_exceptions=True)
    return [normalize(outcome) for outcome in outcomes], observed


async def run_scheduled_population(checks, data, horizon):
    clock = VirtualClock()
    providers = {"static": StaticProvider(dict(data))}
    observed: dict[str, list] = {}
    scheduler = CheckScheduler(clock)
    try:
        futures = [
            scheduler.schedule(check, providers, observer=observer_into(observed))
            for check in checks
        ]
        await asyncio.sleep(0)
        await clock.advance(horizon)
        outcomes = await asyncio.gather(*futures, return_exceptions=True)
    finally:
        await scheduler.close()
    return [normalize(outcome) for outcome in outcomes], observed


@settings(max_examples=60, deadline=None)
@given(check_specs)
def test_scheduler_equivalent_to_per_task_runner(specs):
    checks, data = build_checks(specs)
    horizon = max(check.timer.duration for check in checks) + 1.0

    async def scenario():
        sequential = await run_sequential_population(checks, data, horizon)
        scheduled = await run_scheduled_population(checks, data, horizon)
        assert scheduled == sequential

    asyncio.run(scenario())


@settings(max_examples=30, deadline=None)
@given(check_specs)
def test_scheduler_single_check_matches_runner_run(specs):
    """CheckRunner.run (scheduler path) ≡ run_sequential, check by check."""
    checks, data = build_checks(specs[:1])
    check = checks[0]
    horizon = check.timer.duration + 1.0

    async def one(method_name):
        clock = VirtualClock()
        providers = {"static": StaticProvider(dict(data))}
        observed: dict[str, list] = {}
        runner = CheckRunner(check, providers, clock, observer_into(observed))
        task = asyncio.ensure_future(getattr(runner, method_name)())
        await asyncio.sleep(0)
        await clock.advance(horizon)
        outcomes = await asyncio.gather(task, return_exceptions=True)
        return normalize(outcomes[0]), observed

    async def scenario():
        assert await one("run") == await one("run_sequential")

    asyncio.run(scenario())
