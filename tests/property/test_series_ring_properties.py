"""Ring-buffer ``TimeSeries`` vs a list-backed reference model.

The ring buffer in :mod:`repro.metrics.series` earns its keep through
physical-index arithmetic (wrap-aware bisect, two-piece slices, start
pointer trims).  These properties drive random interleavings of the whole
public API against a trivially-correct list model and demand identical
observable behavior at every step — if the index math is off by one
anywhere, some interleaving here finds it.
"""

import bisect

from hypothesis import given, settings, strategies as st

from repro.metrics.series import Sample, SeriesKey, TimeSeries, _MIN_CAPACITY


class ListSeries:
    """The obviously-correct reference: a plain sorted list of samples."""

    def __init__(self):
        self.samples: list[tuple[float, float]] = []

    def append(self, timestamp, value):
        if self.samples and timestamp < self.samples[-1][0]:
            raise ValueError("out of order")
        self.samples.append((timestamp, value))

    def __len__(self):
        return len(self.samples)

    def latest(self):
        return self.samples[-1] if self.samples else None

    @property
    def oldest_timestamp(self):
        return self.samples[0][0] if self.samples else None

    def at(self, timestamp, staleness=float("inf")):
        index = bisect.bisect_right([s[0] for s in self.samples], timestamp) - 1
        if index < 0:
            return None
        found, value = self.samples[index]
        if timestamp - found > staleness:
            return None
        return (found, value)

    def window(self, start, end):
        return [s for s in self.samples if start < s[0] <= end]

    def drop_before(self, timestamp):
        kept = [s for s in self.samples if s[0] >= timestamp]
        dropped = len(self.samples) - len(kept)
        self.samples = kept
        return dropped


timestamps = st.floats(min_value=-5.0, max_value=120.0, allow_nan=False)
values = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False)
staleness = st.one_of(st.just(float("inf")), st.floats(min_value=0.0, max_value=30.0))

operations = st.lists(
    st.one_of(
        st.tuples(st.just("append"), st.floats(min_value=0.0, max_value=3.0), values),
        st.tuples(st.just("drop_before"), timestamps),
        st.tuples(st.just("at"), timestamps, staleness),
        st.tuples(st.just("value_at"), timestamps, staleness),
        st.tuples(st.just("window"), timestamps, st.floats(min_value=0.0, max_value=40.0)),
    ),
    max_size=150,
)


@settings(max_examples=200, deadline=None)
@given(operations)
def test_ring_series_matches_list_model(ops):
    ring = TimeSeries(SeriesKey.make("m"))
    model = ListSeries()
    now = 0.0
    for op in ops:
        if op[0] == "append":
            # Non-negative deltas keep timestamps monotone; zero deltas
            # exercise duplicate-timestamp bisects.
            _, delta, value = op
            now += delta
            ring.append(now, value)
            model.append(now, value)
        elif op[0] == "drop_before":
            assert ring.drop_before(op[1]) == model.drop_before(op[1])
        elif op[0] == "at":
            _, t, stale = op
            found = ring.at(t, staleness=stale)
            expected = model.at(t, staleness=stale)
            assert (found and (found.timestamp, found.value)) == (expected or None)
        elif op[0] == "value_at":
            _, t, stale = op
            expected = model.at(t, staleness=stale)
            assert ring.value_at(t, staleness=stale) == (expected and expected[1])
        else:
            _, start, width = op
            end = start + width
            expected = model.window(start, end)
            assert [(s.timestamp, s.value) for s in ring.window(start, end)] == expected
            lo, hi = ring.window_bounds(start, end)
            assert hi - lo == len(expected)
            ts, vs = ring.window_arrays(start, end)
            assert list(ts) == [s[0] for s in expected]
            assert list(vs) == [s[1] for s in expected]
        # Invariants checked after every single operation.
        assert len(ring) == len(model)
        assert ring.oldest_timestamp == model.oldest_timestamp
        latest = ring.latest()
        assert (latest and (latest.timestamp, latest.value)) == (model.latest() or None)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.floats(min_value=0.0, max_value=2.0, allow_nan=False), max_size=100),
    st.integers(min_value=0, max_value=100),
)
def test_drop_then_refill_keeps_order_checks(deltas, drop_at_step):
    """Appends after trims must still reject out-of-order timestamps."""
    ring = TimeSeries(SeriesKey.make("m"))
    model = ListSeries()
    now = 0.0
    for step, delta in enumerate(deltas):
        now += delta
        ring.append(now, float(step))
        model.append(now, float(step))
        if step == drop_at_step:
            cutoff = now / 2.0
            assert ring.drop_before(cutoff) == model.drop_before(cutoff)
    assert [(s.timestamp, s.value) for s in ring.window(-1.0, now + 1.0)] == model.samples


def test_trim_shrinks_capacity_back_down():
    """A retention-style workload must not pin the grown buffer forever."""
    ring = TimeSeries(SeriesKey.make("m"))
    for t in range(10_000):
        ring.append(float(t), 1.0)
    grown = len(ring._ts)
    assert grown >= 10_000
    ring.drop_before(9_990.0)
    assert len(ring) == 10
    # Shrink hysteresis: capacity follows occupancy back down.
    assert len(ring._ts) <= max(_MIN_CAPACITY, 4 * len(ring))
    # The survivors are intact and ordered.
    assert [s.timestamp for s in ring.window(-1.0, 1e6)] == [
        float(t) for t in range(9_990, 10_000)
    ]


def test_steady_state_retention_capacity_is_bounded():
    """append+drop_before cycling (the scraper's pattern) stays O(window)."""
    ring = TimeSeries(SeriesKey.make("m"))
    for t in range(50_000):
        ring.append(float(t), 1.0)
        if t >= 100:
            ring.drop_before(float(t - 100))
    assert len(ring) == 101
    assert len(ring._ts) <= 1024  # far below the 50k samples ever appended


def test_wrapped_ring_window_returns_samples():
    """Force physical wrap-around, then read windows spanning the seam."""
    ring = TimeSeries(SeriesKey.make("m"))
    for t in range(12):
        ring.append(float(t), float(t * 10))
    ring.drop_before(8.0)  # start pointer advances, no shrink at this size
    for t in range(12, 22):
        ring.append(float(t), float(t * 10))  # writes wrap physically
    window = ring.window(9.0, 20.0)
    assert [s.timestamp for s in window] == [float(t) for t in range(10, 21)]
    assert [s.value for s in window] == [float(t * 10) for t in range(10, 21)]
    assert ring.at(13.5) == Sample(13.0, 130.0)
    assert ring.value_at(8.0) == 80.0
