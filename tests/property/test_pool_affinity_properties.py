"""Property-based tests for worker-pool client affinity.

The pool's sticky guarantee rests on two facts: ``worker_index`` is a
pure deterministic function of (client, count, seed), and the pool's
dispatch honours it for every cookie-carrying request.  Together they
mean a client's sticky assignment lives in exactly one worker's store —
no cross-worker coordination, no split-brain assignments.
"""

import asyncio

from hypothesis import given, settings, strategies as st

from repro.core import canary_split
from repro.httpcore import Headers, Request, Response
from repro.proxy import CLIENT_COOKIE, ProxyWorkerPool, RoutingPlan, worker_index

client_ids = st.text(
    alphabet=st.characters(codec="ascii", min_codepoint=33, max_codepoint=126,
                           exclude_characters=";,="),
    min_size=1,
    max_size=36,
)


@given(client_ids, st.integers(min_value=1, max_value=8), st.text(max_size=10))
def test_worker_index_is_deterministic_and_bounded(client_id, count, seed):
    index = worker_index(client_id, count, seed)
    assert 0 <= index < count
    assert index == worker_index(client_id, count, seed)


@given(client_ids, st.integers(min_value=2, max_value=8))
def test_worker_index_varies_with_seed(client_id, count):
    """Different seeds shuffle the mapping independently of the split
    hash; at minimum the function must depend on its seed input for
    *some* client (smoke-checked via two fixed seeds over many ids)."""
    indices = {
        worker_index(f"{client_id}-{i}", count, "seed-a") for i in range(16)
    } | {worker_index(f"{client_id}-{i}", count, "seed-b") for i in range(16)}
    assert indices <= set(range(count))


class InstantStubClient:
    """Upstream stub answering immediately; records nothing."""

    async def send(self, request, host, port, timeout=None, stream=False):
        return Response(
            status=200,
            headers=Headers.from_raw([("Content-Type", "application/json")]),
            body=b'{"ok": true}',
        )

    async def close(self):
        pass


def _request(client_id: str) -> Request:
    return Request(
        "GET",
        "/items",
        Headers.from_raw(
            [("Host", "shop.example"), ("Cookie", f"{CLIENT_COOKIE}={client_id}")]
        ),
        body=b"",
    )


ENDPOINTS = {"stable": "upstream-a:8001", "canary": "upstream-b:8002"}


@settings(max_examples=25, deadline=None)
@given(
    st.lists(client_ids, min_size=1, max_size=8, unique=True),
    st.integers(min_value=1, max_value=6),
)
def test_cookie_pinned_requests_land_on_one_worker(ids, workers):
    """Every request for a client hits worker_index(client); repeats are
    sticky-consistent; the served version equals the compiled plan's
    bucket for that client."""
    config = canary_split("stable", "canary", 30.0)
    plan = RoutingPlan(config, seed="bifrost")

    async def drive():
        pool = ProxyWorkerPool("svc", "upstream-default:8000", workers=workers)
        for member in pool.workers:
            member._client = InstantStubClient()
            member._owns_client = False
        pool.apply_config(config, ENDPOINTS)
        try:
            for client_id in ids:
                seen_workers = set()
                seen_versions = set()
                for _ in range(3):
                    response = await pool._handle_proxy(_request(client_id))
                    seen_workers.add(response.headers.get("X-Bifrost-Worker"))
                    seen_versions.add(response.headers.get("X-Bifrost-Version"))
                assert seen_workers == {
                    str(worker_index(client_id, workers, pool.seed))
                }
                assert seen_versions == {plan.bucket(client_id)}
        finally:
            await pool.stop()

    asyncio.run(drive())
