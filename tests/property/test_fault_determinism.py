"""Seeded fault schedules are pure functions of (seed, key, index).

The chaos layer's whole reproducibility story rests on this: a fault
trace must be identical run-to-run, across fresh schedule instances,
and regardless of how many workers or shards the calls are spread over
— the schedule keys on the *call index*, never on wall time, object
identity, or global state.
"""

import asyncio

from hypothesis import given, settings, strategies as st

from repro.clock import VirtualClock
from repro.metrics import StaticProvider
from repro.resilience import FaultSchedule, FaultyProvider, FaultyUpstream
from repro.resilience.faults import _seeded_fraction


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    key=st.text(min_size=1, max_size=12),
    rate=st.floats(min_value=0.05, max_value=0.95),
)
def test_seeded_schedule_trace_is_reproducible(seed, key, rate):
    def trace():
        schedule = FaultSchedule.seeded(rate, seed, key=key)
        return [
            index
            for index in range(1, 60)
            if schedule.fault_for(index, float(index)) is not None
        ]

    assert trace() == trace()  # fresh instances, same trace


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    key=st.text(min_size=1, max_size=12),
)
def test_seeded_fraction_is_pure_and_uniformish(seed, key):
    values = [_seeded_fraction(seed, key, index) for index in range(1, 200)]
    assert values == [_seeded_fraction(seed, key, index) for index in range(1, 200)]
    assert all(0.0 <= value < 1.0 for value in values)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_faulty_provider_trace_identical_across_runs(seed):
    async def run():
        clock = VirtualClock()
        provider = FaultyProvider(
            StaticProvider({"m": 1.0}),
            FaultSchedule.seeded(0.4, seed, key="prov"),
            clock,
        )
        trace = []
        for _ in range(40):
            try:
                await provider.query("m")
                trace.append("ok")
            except Exception as exc:
                trace.append(type(exc).__name__)
        return trace

    assert asyncio.run(run()) == asyncio.run(run())


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    workers=st.integers(min_value=1, max_value=4),
)
def test_upstream_trace_is_per_worker_deterministic(seed, workers):
    """Each worker's shim sees its own call sequence; spreading the same
    per-worker call counts over 1 or N workers yields the same traces."""

    class _Client:
        async def send(self, request, host, port, timeout=None, stream=False):
            return "ok"

        async def close(self):
            pass

    async def worker_trace():
        clock = VirtualClock()
        shim = FaultyUpstream(
            _Client(), FaultSchedule.seeded(0.5, seed, key="up"), clock
        )
        trace = []
        for _ in range(30):
            try:
                await shim.send(None, "h", 80)
                trace.append("ok")
            except ConnectionError:
                trace.append("fault")
        return trace

    async def run_all():
        return [await worker_trace() for _ in range(workers)]

    traces = asyncio.run(run_all())
    # Every worker reproduces the identical trace, worker count be damned.
    assert all(trace == traces[0] for trace in traces)
