"""Batched ingest vs per-point recording, over random op interleavings.

Random sequences of single-sample ``record`` calls and multi-sample
``record_batch`` calls (some deliberately invalid) are applied to a store
under test and mirrored point-by-point onto a reference store.  A batch
that would fail validation must raise and leave the store byte-identical
to before the call (atomicity); a valid batch must leave the store in
exactly the state per-point recording produces.  The same sequence is run
against a :class:`ShardedMetricStore` to prove the facade preserves both
properties across shards.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics import MetricStore, SeriesKey, ShardedMetricStore

NAMES = ["alpha_total", "beta_total", "gamma_seconds", "delta_bytes"]
LABELS = [None, {"instance": "a"}, {"instance": "b", "zone": "z1"}]

samples = st.tuples(
    st.sampled_from(NAMES),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    st.sampled_from(LABELS),
)

ops = st.lists(
    st.one_of(
        st.tuples(st.just("record"), samples),
        st.tuples(st.just("batch"), st.lists(samples, max_size=8)),
    ),
    max_size=30,
)


def _snapshot(store):
    state = {}
    for name in store.names():
        for series in store.select(name):
            timestamps, values = series.window_arrays(float("-inf"), float("inf"))
            state[str(series.key)] = (list(timestamps), list(values))
    return state


def _batch_is_valid(store, batch):
    """Pure pre-check mirroring record_batch's plan phase."""
    floors = {}
    for name, value, timestamp, labels in batch:
        key = SeriesKey.make(name, labels)
        if key not in floors:
            series = store.series(key)
            latest = series.latest() if series is not None else None
            floors[key] = latest.timestamp if latest is not None else None
        floor = floors[key]
        if floor is not None and timestamp < floor:
            return False
        floors[key] = timestamp
    return True


def _drive(store, ops_list):
    """Apply *ops_list*; returns how many samples actually landed."""
    landed = 0
    for op in ops_list:
        if op[0] == "record":
            name, value, timestamp, labels = op[1]
            try:
                store.record(name, value, timestamp, labels)
                landed += 1
            except ValueError:
                pass
        else:
            batch = op[1]
            before = _snapshot(store)
            if _batch_is_valid(store, batch):
                assert store.record_batch(batch) == len(batch)
                landed += len(batch)
            else:
                with pytest.raises(ValueError):
                    store.record_batch(batch)
                assert _snapshot(store) == before  # atomic: nothing landed
    return landed


@settings(max_examples=150, deadline=None)
@given(ops_list=ops)
def test_batched_equals_per_point_on_monolithic_store(ops_list):
    batched = MetricStore()
    reference = MetricStore()
    _drive(batched, ops_list)
    # Reference: same accepted samples, recorded one at a time.
    for op in ops_list:
        entries = [op[1]] if op[0] == "record" else op[1]
        if op[0] == "batch" and not _batch_is_valid_replay(reference, entries):
            continue
        for name, value, timestamp, labels in entries:
            try:
                reference.record(name, value, timestamp, labels)
            except ValueError:
                pass
    assert _snapshot(batched) == _snapshot(reference)
    assert batched.series_generation == reference.series_generation


def _batch_is_valid_replay(store, batch):
    return _batch_is_valid(store, batch)


@settings(max_examples=150, deadline=None)
@given(ops_list=ops, shard_count=st.sampled_from([2, 3, 5]))
def test_sharded_equals_monolithic_under_batched_ingest(ops_list, shard_count):
    sharded = ShardedMetricStore(shard_count=shard_count)
    flat = MetricStore()
    landed_sharded = _drive(sharded, ops_list)
    landed_flat = _drive(flat, ops_list)
    assert landed_sharded == landed_flat
    assert _snapshot(sharded) == _snapshot(flat)
