"""Property suite for the streaming data plane.

Two families of invariants:

* the chunked encoder/decoder are inverses — under arbitrary payload
  splits, torn reads (the wire arriving in adversarially-sized pieces),
  chunk extensions, and trailer fields;
* relaying a body through the proxy is representation-independent —
  a streamed relay and a buffered relay produce byte-for-byte identical
  bodies on both sides of the proxy.
"""

import asyncio

from hypothesis import given, settings, strategies as st

from repro.httpcore import BodyStream, HttpClient, HttpServer, Request, Response
from repro.httpcore.stream import CHUNKED_EOF, encode_chunk, iter_chunked, relay_body
from repro.proxy import BifrostProxy

chunk_lists = st.lists(
    st.binary(min_size=1, max_size=200), min_size=0, max_size=12
)

#: ASCII-safe chunk-extension and trailer-name alphabets (no CR/LF/;/:).
ext_text = st.text(
    alphabet=st.characters(codec="ascii", categories=("L", "N")), min_size=1, max_size=8
)


def encode_wire(chunks, extensions, trailers) -> bytes:
    """Hand-rolled chunked encoding with optional extensions + trailers."""
    wire = bytearray()
    for index, chunk in enumerate(chunks):
        ext = extensions[index % len(extensions)] if extensions else None
        size = b"%x" % len(chunk)
        if ext is not None:
            size += b";" + ext.encode("ascii") + b"=1"
        wire += size + b"\r\n" + chunk + b"\r\n"
    wire += b"0\r\n"
    for name in trailers:
        wire += name.encode("ascii") + b": ignored\r\n"
    wire += b"\r\n"
    return bytes(wire)


def feed_torn(data: bytes, tears: list[int]) -> asyncio.StreamReader:
    """A reader whose buffer was fed in adversarially torn pieces."""
    reader = asyncio.StreamReader()
    position = 0
    index = 0
    while position < len(data):
        size = tears[index % len(tears)] if tears else len(data)
        index += 1
        piece = data[position : position + max(1, size)]
        reader.feed_data(piece)
        position += len(piece)
    reader.feed_eof()
    return reader


@settings(max_examples=100, deadline=None)
@given(
    chunk_lists,
    st.lists(ext_text, max_size=3),
    st.lists(ext_text, max_size=3),
    st.lists(st.integers(min_value=1, max_value=64), max_size=8),
)
def test_chunked_decoder_inverts_any_encoding(chunks, extensions, trailers, tears):
    wire = encode_wire(chunks, extensions, trailers)

    async def drive():
        reader = feed_torn(wire, tears)
        return b"".join([piece async for piece in iter_chunked(reader)])

    assert asyncio.run(drive()) == b"".join(chunks)


@settings(max_examples=100, deadline=None)
@given(chunk_lists, st.integers(min_value=1, max_value=64))
def test_relay_encoding_round_trips(chunks, chunk_size):
    """relay_body's chunked emission is exactly what iter_chunked expects."""

    class Sink:
        def __init__(self):
            self.data = bytearray()

        def write(self, data):
            self.data += data

        async def drain(self):
            pass

    async def drive():
        sink = Sink()
        await relay_body(sink, BodyStream.from_iterable(list(chunks)))
        assert bytes(sink.data).endswith(CHUNKED_EOF)
        reader = asyncio.StreamReader()
        reader.feed_data(bytes(sink.data))
        reader.feed_eof()
        return b"".join(
            [piece async for piece in iter_chunked(reader, chunk_size=chunk_size)]
        )

    assert asyncio.run(drive()) == b"".join(chunks)


@settings(max_examples=100, deadline=None)
@given(st.binary(max_size=2000), st.integers(min_value=1, max_value=128))
def test_encode_chunk_round_trips_single_payload(payload, chunk_size):
    wire = (encode_chunk(payload) if payload else b"") + CHUNKED_EOF

    async def drive():
        reader = asyncio.StreamReader()
        reader.feed_data(wire)
        reader.feed_eof()
        return b"".join(
            [piece async for piece in iter_chunked(reader, chunk_size=chunk_size)]
        )

    assert asyncio.run(drive()) == payload


@settings(max_examples=10, deadline=None)
@given(chunk_lists)
def test_streamed_and_buffered_relay_are_byte_identical(chunks):
    """The proxy's streamed path and buffered path agree byte-for-byte,
    upstream-observed body included."""
    body = b"".join(chunks)

    async def drive():
        seen: list[bytes] = []
        upstream = HttpServer(name="echo")

        @upstream.router.post("/echo")
        async def echo(request):
            seen.append(request.body)
            return Response(body=request.body)

        await upstream.start()
        streaming_proxy = BifrostProxy("s", default_upstream=upstream.address)
        buffered_proxy = BifrostProxy(
            "b", default_upstream=upstream.address, stream_bodies=False
        )
        await streaming_proxy.start()
        await buffered_proxy.start()
        client = HttpClient()
        try:
            streamed_request = Request(
                method="POST",
                target="/echo",
                stream=BodyStream.from_iterable(list(chunks)),
            )
            streamed_request.headers.set("Host", streaming_proxy.address)
            via_stream = await client.send(
                streamed_request, streaming_proxy.host, streaming_proxy.port
            )
            via_buffer = await client.post(
                f"http://{buffered_proxy.address}/echo", body=body
            )
            assert via_stream.status == via_buffer.status == 200
            assert via_stream.body == via_buffer.body == body
            assert seen == [body, body]
        finally:
            await client.close()
            await streaming_proxy.stop()
            await buffered_proxy.stop()
            await upstream.stop()

    asyncio.run(drive())
