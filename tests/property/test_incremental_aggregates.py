"""Incremental window aggregates vs the rescanning reference.

Random interleavings of appends, retention trims, and reads at assorted
instants and windows are driven through :func:`aggregate.range_value` and
cross-checked against :func:`aggregate.rescan_value` (the reference
reduction over ``window_arrays``).  With ``resum_interval=1`` the
incremental path must be *bitwise* equal — every eviction re-sums in the
reference's left-to-right order — and in the default mode drift stays
within float-noise tolerance while ``min``/``max``/``count`` remain exact
in every mode.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.metrics import SeriesKey, TimeSeries
from repro.metrics import aggregate

FUNCTIONS = sorted(aggregate.RANGE_REFERENCE)
EXACT_ALWAYS = {"min_over_time", "max_over_time", "count_over_time"}

deltas = st.floats(min_value=0.0, max_value=7.0, allow_nan=False)
values = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
windows = st.sampled_from([3.0, 10.0, 25.0])

ops = st.lists(
    st.one_of(
        st.tuples(st.just("append"), deltas, values),
        st.tuples(st.just("trim"), st.floats(min_value=0.0, max_value=40.0)),
        # Read offset relative to the current write head; negative offsets
        # exercise the behind-the-newest-sample fallback path.
        st.tuples(st.just("read"), st.floats(min_value=-10.0, max_value=10.0)),
    ),
    min_size=1,
    max_size=50,
)


def _run(ops_list, window, check):
    series = TimeSeries(SeriesKey.make("m"))
    now = 0.0
    for op in ops_list:
        if op[0] == "append":
            now += op[1]
            series.append(now, op[2])
        elif op[0] == "trim":
            series.drop_before(now - op[1])
        else:
            at = now + op[1]
            for function in FUNCTIONS:
                expected = aggregate.rescan_value(series, function, window, at)
                got = aggregate.range_value(series, function, window, at)
                check(function, got, expected)
    # Always finish with a read so every interleaving checks something.
    for function in FUNCTIONS:
        expected = aggregate.rescan_value(series, function, window, now)
        got = aggregate.range_value(series, function, window, now)
        check(function, got, expected)


@settings(max_examples=200, deadline=None)
@given(ops_list=ops, window=windows)
def test_incremental_is_bitwise_exact_with_resum_interval_one(ops_list, window):
    def check(function, got, expected):
        assert got == expected, (function, got, expected)

    with aggregate.resum_interval(1):
        _run(ops_list, window, check)


@settings(max_examples=200, deadline=None)
@given(ops_list=ops, window=windows)
def test_incremental_is_close_with_default_interval(ops_list, window):
    def check(function, got, expected):
        if got is None or expected is None:
            assert got == expected, (function, got, expected)
        elif function in EXACT_ALWAYS:
            assert got == expected, (function, got, expected)
        else:
            assert math.isclose(got, expected, rel_tol=1e-9, abs_tol=1e-6), (
                function,
                got,
                expected,
            )

    _run(ops_list, window, check)


@settings(max_examples=100, deadline=None)
@given(
    values_list=st.lists(values, min_size=2, max_size=40),
    window=windows,
)
def test_monotonic_reads_are_exact_even_without_forced_resums(values_list, window):
    """Time-ordered reads after every append: the scheduler's access pattern."""
    series = TimeSeries(SeriesKey.make("m"))
    for index, value in enumerate(values_list):
        at = float(index)
        series.append(at, value)
        for function in ("min_over_time", "max_over_time", "count_over_time"):
            expected = aggregate.rescan_value(series, function, window, at)
            got = aggregate.range_value(series, function, window, at)
            assert got == expected, (function, got, expected)
