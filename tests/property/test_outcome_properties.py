"""Property-based tests for thresholds, mappings, and validators."""

from hypothesis import given, strategies as st

from repro.core import OutputMapping, ThresholdRanges, Validator, weighted_outcome


sorted_thresholds = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=0,
    max_size=6,
    unique=True,
).map(sorted).map(tuple)


@given(sorted_thresholds, st.floats(min_value=-1e7, max_value=1e7, allow_nan=False))
def test_every_value_falls_in_exactly_one_range(thresholds, value):
    ranges = ThresholdRanges(thresholds)
    index = ranges.index_of(value)
    assert 0 <= index < ranges.range_count
    # The index is consistent with the range boundaries.
    if index > 0:
        assert value > thresholds[index - 1]
    if index < len(thresholds):
        assert value <= thresholds[index]


@given(sorted_thresholds)
def test_ranges_partition_is_monotone(thresholds):
    """index_of is monotone: larger values never land in earlier ranges."""
    ranges = ThresholdRanges(thresholds)
    probes = sorted(
        list(thresholds)
        + [t + 0.5 for t in thresholds]
        + [t - 0.5 for t in thresholds]
        + [-1e9, 1e9]
    )
    indices = [ranges.index_of(p) for p in probes]
    assert indices == sorted(indices)


@given(
    sorted_thresholds.filter(lambda t: len(t) >= 1),
    st.data(),
)
def test_output_mapping_returns_declared_results(thresholds, data):
    results = tuple(
        data.draw(st.integers(min_value=-10, max_value=10))
        for _ in range(len(thresholds) + 1)
    )
    mapping = OutputMapping(ThresholdRanges(thresholds), results)
    value = data.draw(st.floats(min_value=-1e7, max_value=1e7, allow_nan=False))
    assert mapping.map(value) in results


@given(st.integers(min_value=1, max_value=100), st.integers(min_value=0, max_value=100))
def test_boolean_mapping_threshold_semantics(threshold, outcome):
    mapping = OutputMapping.boolean(float(threshold))
    assert mapping.map(outcome) == (1 if outcome >= threshold else 0)


@given(
    st.sampled_from(["<", "<=", ">", ">=", "==", "!="]),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)
def test_validator_round_trip_and_agreement(op, bound, value):
    validator = Validator.parse(f"{op}{bound}")
    reparsed = Validator.parse(str(validator))
    assert reparsed.check(value) == validator.check(value)
    expected = {
        "<": value < bound,
        "<=": value <= bound,
        ">": value > bound,
        ">=": value >= bound,
        "==": value == bound,
        "!=": value != bound,
    }[op]
    assert validator.check(value) == (1 if expected else 0)


@given(
    st.lists(st.integers(min_value=-10, max_value=10), min_size=1, max_size=8),
    st.data(),
)
def test_weighted_outcome_bounds(outcomes, data):
    weights = [
        data.draw(st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
        for _ in outcomes
    ]
    result = weighted_outcome(outcomes, weights)
    exact = sum(o * w for o, w in zip(outcomes, weights))
    assert abs(result - exact) <= 0.5 + 1e-9  # rounding only
