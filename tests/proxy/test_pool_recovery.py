"""Safe-routing recovery against a ProxyWorkerPool.

The recovery path is only safe if it is atomic at the data plane: after
an abort or cancellation, *every* worker must hold the recovery config
at the same version — no worker left serving the abandoned canary split.
"""

import asyncio

from repro.clock import VirtualClock
from repro.core import (
    EventKind,
    StrategyBuilder,
    canary_split,
    simple_basic_check,
    single_version,
)
from repro.core.engine import Engine
from repro.metrics.provider import LocalPrometheusProvider
from repro.metrics.store import MetricStore
from repro.proxy import LocalProxyController, ProxyWorkerPool
from repro.resilience import ChaosCampaign, FaultSpec, run_game_day


def pool_strategy():
    builder = StrategyBuilder("pool-recovery")
    builder.service("svc", {"v1": "127.0.0.1:8081", "v2": "127.0.0.1:8082"})
    builder.state("canary").route("svc", canary_split("v1", "v2", 25.0)).check(
        simple_basic_check(
            "errors_ok", "errors_total", "< 50", 5.0, 3, provider="prometheus"
        )
    ).transitions([0.5], ["rollback", "done"])
    builder.state("done").route("svc", single_version("v2")).final()
    builder.state("rollback").route("svc", single_version("v1")).final(
        rollback=True
    )
    return builder.build()


def engine_with_pool(workers=4):
    clock = VirtualClock()
    store = MetricStore()
    for second in range(0, 600, 2):
        store.record("errors_total", 3.0, float(second))
    pool = ProxyWorkerPool("svc", "127.0.0.1:1", workers=workers)
    engine = Engine(controller=LocalProxyController({"svc": pool}), clock=clock)
    engine.register_provider("prometheus", LocalPrometheusProvider(store, clock))
    return engine, clock, pool


def assert_pool_converged(pool, expected_config):
    versions = {member.config_version for member in pool.workers}
    assert versions == {pool.config_version}, (
        f"workers diverged: {[m.config_version for m in pool.workers]} "
        f"vs pool {pool.config_version}"
    )
    for member in pool.workers:
        assert member._chain is not None
        assert member._chain.config == expected_config


async def test_cancel_mid_phase_recovers_every_worker_atomically():
    engine, clock, pool = engine_with_pool()
    execution_id = engine.enact(pool_strategy())
    await asyncio.sleep(0)
    await clock.advance(2.0)  # mid-canary: workers hold the 25% split
    assert pool.config_version == 1
    await engine.cancel(execution_id)
    report = await engine.wait_report(execution_id)
    assert report.status.value == "failed"
    applied = engine.bus.of_kind(EventKind.SAFE_ROUTING_APPLIED)
    assert [event.data["service"] for event in applied] == ["svc"]
    # Recovery version-swapped atomically on every worker.
    assert pool.config_version == 2
    assert_pool_converged(pool, single_version("v1"))
    await engine.shutdown()


async def test_chaos_abort_lands_recovery_config_on_every_worker():
    engine, clock, pool = engine_with_pool(workers=3)
    campaign = ChaosCampaign(
        name="pool-chaos",
        specs=[
            FaultSpec(
                name="outage",
                target="provider:prometheus",
                mode="error",
                rate=0.6,
                phases=("canary",),
            )
        ],
        steady_state=[
            simple_basic_check(
                "steady", "errors_total", "< 50", 4.0, 2, provider="prometheus"
            )
        ],
        seed=7,
    )
    report = await run_game_day(pool_strategy(), campaign, engine)
    assert report.aborted
    assert_pool_converged(pool, single_version("v1"))
    await engine.shutdown()


async def test_completed_strategy_leaves_pool_on_final_routing():
    engine, clock, pool = engine_with_pool(workers=2)
    execution_id = engine.enact(pool_strategy())
    await asyncio.sleep(0)
    task = engine._tasks[execution_id]
    for _ in range(1000):
        if task.done():
            break
        await clock.advance(0.5)
    report = await engine.wait_report(execution_id)
    assert report.status.value == "completed"
    assert_pool_converged(pool, single_version("v2"))
    await engine.shutdown()
