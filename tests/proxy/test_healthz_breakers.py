"""Circuit-breaker state surfaced on /healthz (proxy, pool, metrics)."""

from repro.clock import VirtualClock
from repro.httpcore import HttpClient
from repro.metrics import MetricsServer
from repro.proxy import BifrostProxy, ProxyWorkerPool
from repro.resilience import BreakerState, CircuitBreaker


def tripped_breaker(clock):
    breaker = CircuitBreaker(clock, window=4, min_calls=2, cooldown=60.0)
    breaker.record_failure()
    breaker.record_failure()
    return breaker


async def test_proxy_healthz_reports_breakers():
    clock = VirtualClock()
    proxy = BifrostProxy("svc", default_upstream="127.0.0.1:1")
    proxy.register_breaker("provider:prometheus", tripped_breaker(clock))
    await proxy.start()
    try:
        async with HttpClient() as client:
            response = await client.get(
                f"http://{proxy.address}/bifrost/healthz"
            )
        body = response.json()
        snapshot = body["breakers"]["provider:prometheus"]
        assert snapshot["state"] == BreakerState.OPEN.value
        assert snapshot["forced"] is False
        assert snapshot["transitions_total"] == 1
        assert snapshot["transitions"] == {"closed": 0, "open": 1, "half_open": 0}
        assert snapshot["failure_fraction"] == 1.0
    finally:
        await proxy.stop()


async def test_pool_healthz_reports_breakers():
    clock = VirtualClock()
    pool = ProxyWorkerPool("svc", "127.0.0.1:1", workers=2)
    pool.register_breaker("upstream:svc", tripped_breaker(clock))
    await pool.start()
    try:
        async with HttpClient() as client:
            response = await client.get(
                f"http://{pool.address}/bifrost/healthz"
            )
        body = response.json()
        assert body["workers"] == 2
        assert body["breakers"]["upstream:svc"]["state"] == "open"
    finally:
        await pool.stop()


async def test_metrics_server_healthz_reports_breakers():
    server = MetricsServer()
    server.register_breaker("scrape:cadvisor", tripped_breaker(server.clock))
    await server.start(scrape=False)
    try:
        async with HttpClient() as client:
            response = await client.get(f"http://{server.address}/healthz")
        body = response.json()
        assert body["breakers"]["scrape:cadvisor"]["state"] == "open"
        assert body["breakers"]["scrape:cadvisor"]["transitions_total"] == 1
    finally:
        await server.stop()


async def test_healthz_breakers_empty_by_default():
    proxy = BifrostProxy("svc", default_upstream="127.0.0.1:1")
    await proxy.start()
    try:
        async with HttpClient() as client:
            response = await client.get(
                f"http://{proxy.address}/bifrost/healthz"
            )
        assert response.json()["breakers"] == {}
    finally:
        await proxy.stop()
