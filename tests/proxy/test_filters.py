"""Tests for the proxy's routing decision logic."""

import random

import pytest

from repro.core import (
    FilterKind,
    RoutingConfig,
    ShadowRoute,
    TrafficSplit,
    ab_split,
    canary_split,
    single_version,
)
from repro.httpcore import Headers, Request
from repro.proxy import CLIENT_COOKIE, FilterChain


def request_with_cookie(client_id: str | None = None) -> Request:
    headers = Headers()
    if client_id:
        headers.set("Cookie", f"{CLIENT_COOKIE}={client_id}")
    return Request("GET", "/products", headers)


def test_chain_validates_config():
    with pytest.raises(Exception):
        FilterChain(RoutingConfig(splits=[TrafficSplit("v", 50.0)]))


def test_cookie_mode_issues_uuid_for_new_clients():
    chain = FilterChain(single_version("stable"))
    decision = chain.decide(request_with_cookie())
    assert decision.version == "stable"
    assert decision.set_cookie
    assert decision.client_id is not None
    import uuid

    uuid.UUID(decision.client_id)  # RFC-compliant UUID (paper section 4.2.2)


def test_cookie_mode_reuses_existing_uuid():
    chain = FilterChain(single_version("stable"))
    decision = chain.decide(request_with_cookie("existing-id"))
    assert decision.client_id == "existing-id"
    assert not decision.set_cookie


def test_cookie_bucketing_is_deterministic_per_client():
    chain = FilterChain(canary_split("stable", "canary", 50.0))
    versions = {chain.decide(request_with_cookie("client-x")).version for _ in range(20)}
    assert len(versions) == 1


def test_cookie_bucketing_approximates_split():
    chain = FilterChain(canary_split("stable", "canary", 20.0))
    count = sum(
        chain.decide(request_with_cookie(f"client-{i}")).version == "canary"
        for i in range(2000)
    )
    assert 300 <= count <= 500  # ~400 expected


def test_sticky_assignment_survives_config_change():
    store_chain = FilterChain(ab_split("a", "b"))
    client = "sticky-client"
    first = store_chain.decide(request_with_cookie(client)).version
    # New chain with different percentages but the same sticky store.
    moved = RoutingConfig(
        splits=[TrafficSplit("a", 1.0), TrafficSplit("b", 99.0)], sticky=True
    )
    new_chain = FilterChain(moved, sticky_store=store_chain.sticky_store)
    assert new_chain.decide(request_with_cookie(client)).version == first


def test_sticky_assignment_dropped_when_version_gone():
    chain = FilterChain(ab_split("a", "b"))
    client = "client-1"
    first = chain.decide(request_with_cookie(client)).version
    other = "b" if first == "a" else "a"
    replacement = RoutingConfig(
        splits=[TrafficSplit(other, 50.0), TrafficSplit("c", 50.0)], sticky=True
    )
    new_chain = FilterChain(replacement, sticky_store=chain.sticky_store)
    decision = new_chain.decide(request_with_cookie(client))
    assert decision.version in (other, "c")


def test_non_sticky_does_not_memoize():
    chain = FilterChain(canary_split("stable", "canary", 50.0))
    chain.decide(request_with_cookie("client-1"))
    assert len(chain.sticky_store) == 0


def test_header_mode_routes_on_group_header():
    config = RoutingConfig(
        splits=[TrafficSplit("a", 50.0), TrafficSplit("b", 50.0)],
        filter_kind=FilterKind.HEADER,
        header_name="X-Group",
    )
    chain = FilterChain(config)
    request = Request("GET", "/", Headers([("X-Group", "b")]))
    assert chain.decide(request).version == "b"


def test_header_mode_unknown_or_missing_group_falls_back_to_first():
    config = RoutingConfig(
        splits=[TrafficSplit("a", 50.0), TrafficSplit("b", 50.0)],
        filter_kind=FilterKind.HEADER,
    )
    chain = FilterChain(config)
    assert chain.decide(Request("GET", "/")).version == "a"
    request = Request("GET", "/", Headers([("X-Bifrost-Group", "ghost")]))
    assert chain.decide(request).version == "a"


def test_header_mode_issues_no_cookie():
    config = RoutingConfig(
        splits=[TrafficSplit("a", 100.0)], filter_kind=FilterKind.HEADER
    )
    decision = FilterChain(config).decide(Request("GET", "/"))
    assert decision.client_id is None
    assert not decision.set_cookie


def test_shadow_full_duplication():
    config = RoutingConfig(
        splits=[TrafficSplit("stable", 100.0)],
        shadows=[ShadowRoute("stable", "shadow-v", 100.0)],
    )
    chain = FilterChain(config)
    decision = chain.decide(request_with_cookie("c"))
    assert [s.target_version for s in decision.shadows] == ["shadow-v"]


def test_shadow_sampling_respects_percentage():
    config = RoutingConfig(
        splits=[TrafficSplit("stable", 100.0)],
        shadows=[ShadowRoute("stable", "shadow-v", 30.0)],
    )
    chain = FilterChain(config, rng=random.Random(42))
    shadowed = sum(
        bool(chain.decide(request_with_cookie(f"c{i}")).shadows) for i in range(1000)
    )
    assert 250 <= shadowed <= 350


def test_shadow_only_fires_for_source_version():
    config = RoutingConfig(
        splits=[TrafficSplit("stable", 50.0), TrafficSplit("canary", 50.0)],
        shadows=[ShadowRoute("canary", "shadow-v", 100.0)],
    )
    chain = FilterChain(config)
    for i in range(200):
        decision = chain.decide(request_with_cookie(f"c{i}"))
        if decision.version == "stable":
            assert decision.shadows == []
        else:
            assert len(decision.shadows) == 1


def test_zero_percent_shadow_never_fires():
    config = RoutingConfig(
        splits=[TrafficSplit("stable", 100.0)],
        shadows=[ShadowRoute("stable", "shadow-v", 0.0)],
    )
    chain = FilterChain(config, rng=random.Random(1))
    assert all(
        not chain.decide(request_with_cookie(f"c{i}")).shadows for i in range(100)
    )
