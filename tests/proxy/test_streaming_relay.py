"""The streaming data plane: proxy relay, shadow tee, adaptive backpressure."""

import asyncio

import pytest

from repro.core import RoutingConfig, ShadowRoute, TrafficSplit
from repro.httpcore import BodyStream, HttpClient, HttpServer, Request, Response
from repro.metrics import Registry
from repro.proxy import BifrostProxy, Shadower


class RecordingUpstream(HttpServer):
    """Buffered upstream that records every body it receives."""

    def __init__(self, version: str):
        super().__init__(name=version)
        self.version = version
        self.bodies: list[bytes] = []

        async def handler(request):
            self.bodies.append(request.body)
            return Response.from_json({"version": self.version})

        self.router.set_fallback(handler)


class RelayUpstream(HttpServer):
    """Streaming upstream that echoes the request stream back as it arrives."""

    def __init__(self):
        super().__init__(name="relay", stream_bodies=True)

        async def handler(request):
            return Response.streaming(request.iter_body())

        self.router.set_fallback(handler)


def chunked_request(target: str, chunks, host: str) -> Request:
    request = Request(
        method="POST", target=target, stream=BodyStream.from_iterable(chunks)
    )
    request.headers.set("Host", host)
    return request


async def test_proxy_relays_streamed_bodies_duplex():
    """First upstream response bytes reach the client before the last
    client request bytes are produced — through two relay hops."""
    release_tail = asyncio.Event()

    async def producer():
        yield b"head"
        await release_tail.wait()
        yield b"tail"

    async with RelayUpstream() as upstream:
        proxy = BifrostProxy("svc", default_upstream=upstream.address)
        await proxy.start()
        client = HttpClient()
        try:
            request = chunked_request("/pipe", producer(), proxy.address)
            response = await client.send(
                request, proxy.host, proxy.port, stream=True
            )
            assert response.status == 200
            first = await response.stream.__anext__()
            assert first == b"head"
            release_tail.set()
            assert await response.aread() == b"tail"
        finally:
            await client.close()
            await proxy.stop()


async def test_proxy_streams_large_body_through_buffered_upstream():
    async with RecordingUpstream("stable") as upstream:
        proxy = BifrostProxy("svc", default_upstream=upstream.address)
        await proxy.start()
        client = HttpClient()
        try:
            body = b"b" * 100_000
            response = await client.post(f"http://{proxy.address}/x", body=body)
            assert response.status == 200
            assert upstream.bodies == [body]
        finally:
            await client.close()
            await proxy.stop()


async def shadow_setup(tee_capacity: int = 64):
    primary = RecordingUpstream("stable")
    shadow = RecordingUpstream("shadow")
    await primary.start()
    await shadow.start()
    # A fast primary can outrun the shadow's connection setup; give the
    # tee enough slack to hold the whole (small) test body.
    proxy = BifrostProxy(
        "svc", default_upstream=primary.address, shadow_tee_capacity=tee_capacity
    )
    await proxy.start()
    config = RoutingConfig(
        splits=[TrafficSplit("stable", 100.0)],
        shadows=[ShadowRoute("stable", "shadow", 100.0)],
    )
    proxy.apply_config(
        config, {"stable": primary.address, "shadow": shadow.address}
    )
    client = HttpClient()
    return proxy, primary, shadow, client


async def test_streamed_shadow_gets_identical_body_via_tee():
    proxy, primary, shadow, client = await shadow_setup()
    try:
        chunks = [b"chunk-%03d" % i for i in range(50)]
        request = chunked_request("/x", chunks, proxy.address)
        response = await client.send(request, proxy.host, proxy.port)
        assert response.json()["version"] == "stable"
        await proxy.shadower.drain()
        assert primary.bodies == [b"".join(chunks)]
        assert shadow.bodies == [b"".join(chunks)]
        assert proxy.shadower.sent == 1
        assert proxy.shadower.dropped == 0
    finally:
        await client.close()
        await proxy.stop()
        await primary.stop()
        await shadow.stop()


async def test_second_streamed_shadow_is_dropped_with_accounting():
    primary = RecordingUpstream("stable")
    shadow = RecordingUpstream("shadow")
    await primary.start()
    await shadow.start()
    proxy = BifrostProxy(
        "svc", default_upstream=primary.address, shadow_tee_capacity=64
    )
    await proxy.start()
    config = RoutingConfig(
        splits=[TrafficSplit("stable", 100.0)],
        shadows=[
            ShadowRoute("stable", "shadow", 100.0),
            ShadowRoute("stable", "shadow2", 100.0),
        ],
    )
    proxy.apply_config(
        config,
        {
            "stable": primary.address,
            "shadow": shadow.address,
            "shadow2": shadow.address,
        },
    )
    client = HttpClient()
    try:
        request = chunked_request("/x", [b"data"] * 4, proxy.address)
        response = await client.send(request, proxy.host, proxy.port)
        assert response.status == 200
        await proxy.shadower.drain()
        # A stream tees to at most one branch: the first shadow rode it,
        # the second was dropped and the drop is visible.
        assert proxy.shadower.sent == 1
        assert proxy.shadower.dropped == 1
        assert shadow.bodies == [b"data" * 4]
    finally:
        await client.close()
        await proxy.stop()
        await primary.stop()
        await shadow.stop()


async def test_buffered_shadows_still_fan_out_to_all_targets():
    """Buffered requests (no stream) keep the historical N-way fan-out."""
    primary = RecordingUpstream("stable")
    shadow = RecordingUpstream("shadow")
    await primary.start()
    await shadow.start()
    proxy = BifrostProxy(
        "svc", default_upstream=primary.address, stream_bodies=False
    )
    await proxy.start()
    config = RoutingConfig(
        splits=[TrafficSplit("stable", 100.0)],
        shadows=[
            ShadowRoute("stable", "shadow", 100.0),
            ShadowRoute("stable", "shadow2", 100.0),
        ],
    )
    proxy.apply_config(
        config,
        {
            "stable": primary.address,
            "shadow": shadow.address,
            "shadow2": shadow.address,
        },
    )
    client = HttpClient()
    try:
        await client.post(f"http://{proxy.address}/x", body=b"dup")
        await proxy.shadower.drain()
        assert proxy.shadower.sent == 2
        assert proxy.shadower.dropped == 0
        assert shadow.bodies == [b"dup", b"dup"]
    finally:
        await client.close()
        await proxy.stop()
        await primary.stop()
        await shadow.stop()


# -- tee under a slow shadow ------------------------------------------------


async def test_slow_shadow_branch_aborts_never_stalls_primary():
    shadower = Shadower(HttpClient(), tee_capacity=2)
    source = BodyStream.from_iterable([b"x" * 10] * 20)
    tee = shadower.tee(source)
    # Nobody consumes the branch (the shadow upstream is stuck): the
    # primary still sees every byte, immediately.
    total = 0
    async for chunk in tee.primary:
        total += len(chunk)
    assert total == 200
    assert shadower.dropped == 1


# -- adaptive bound ---------------------------------------------------------


def make_shadower(**kwargs):
    return Shadower(HttpClient(), **kwargs)


async def test_effective_pending_starts_at_ceiling():
    shadower = make_shadower(max_pending=64)
    assert shadower.effective_pending == 64


async def test_drops_halve_the_bound_and_sends_recover_it():
    shadower = make_shadower(max_pending=64)
    shadower.note_drop()
    assert shadower.effective_pending == 32
    shadower.note_drop()
    assert shadower.effective_pending == 16
    before = shadower.effective_pending
    for _ in range(4):
        shadower._note_sent(0.001)
    assert shadower.effective_pending == before + 4


async def test_latency_ewma_bounds_queue_to_target_delay():
    shadower = make_shadower(max_pending=1024, concurrency=8, target_delay=0.25)
    # A slow shadow upstream (500 ms per send) can absorb at most
    # concurrency * target_delay / latency = 8 * 0.25 / 0.5 = 4 queued
    # duplicates without exceeding the target queue delay.
    shadower._note_sent(0.5)
    assert shadower.latency_ewma == 0.5
    assert shadower.effective_pending == 4


async def test_bound_never_leaves_configured_range():
    shadower = make_shadower(max_pending=8, min_pending=2)
    for _ in range(10):
        shadower.note_drop()
    assert shadower.effective_pending == 2
    shadower.latency_ewma = 1000.0  # absurdly slow upstream
    assert shadower.effective_pending == 2
    shadower.latency_ewma = None
    for _ in range(100):
        shadower._note_sent(0.0001)
    assert shadower.effective_pending == 8


async def test_admission_uses_adaptive_bound():
    class StuckClient:
        async def send(self, request, host, port, timeout=None, stream=False):
            await asyncio.sleep(3600)

    shadower = Shadower(StuckClient(), max_pending=100, min_pending=1)
    # Simulate a measured-slow upstream: bound collapses well below the
    # static ceiling, so admission stops far earlier than max_pending.
    shadower.note_drop()  # 50
    shadower.note_drop()  # 25
    accepted = sum(
        1 if shadower.shadow(Request("GET", f"/{i}"), "t:80") else 0
        for i in range(100)
    )
    assert accepted == 25


# -- metrics exposition -----------------------------------------------------


async def test_shadow_metrics_ride_the_proxy_exposition():
    registry = Registry()
    shadower = Shadower(HttpClient(), registry=registry)
    shadower.note_drop()
    names = {point.name for point in registry.collect()}
    assert "bifrost_shadow_dropped_total" in names
    assert any(
        name.startswith("bifrost_shadow_queue_delay_seconds") for name in names
    )
    assert "bifrost_shadow_effective_pending" in names


async def test_proxy_metrics_endpoint_exposes_shadow_counters():
    proxy, primary, shadow, client = await shadow_setup()
    try:
        await client.post(f"http://{proxy.address}/x", body=b"hello")
        await proxy.shadower.drain()
        metrics = await client.get(f"http://{proxy.address}/metrics")
        text = metrics.body.decode()
        assert "bifrost_shadow_dropped_total" in text
        assert "bifrost_shadow_queue_delay_seconds" in text
    finally:
        await client.close()
        await proxy.stop()
        await primary.stop()
        await shadow.stop()
