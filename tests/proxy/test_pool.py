"""End-to-end tests for the shared-nothing proxy worker pools."""

import socket

import pytest

from repro.core import canary_split, single_version
from repro.httpcore import HttpClient, HttpServer, Response
from repro.proxy import ProxyWorkerPool, ReuseportProxyPool, RoutingPlan
from repro.proxy.plan import normalize_endpoints


class EchoVersion(HttpServer):
    """Upstream that reports which version it is."""

    def __init__(self, version: str):
        super().__init__(name=version)
        self.version = version

        async def handler(request):
            return Response.from_json(
                {"version": self.version, "path": request.path}
            )

        self.router.set_fallback(handler)


async def pool_setup(*versions: str, workers: int = 3):
    upstreams = {name: EchoVersion(name) for name in versions}
    for upstream in upstreams.values():
        await upstream.start()
    pool = ProxyWorkerPool(
        "product",
        default_upstream=upstreams[versions[0]].address,
        workers=workers,
    )
    await pool.start()
    client = HttpClient()
    endpoints = {name: server.address for name, server in upstreams.items()}
    return pool, upstreams, endpoints, client


async def teardown(pool, upstreams, client):
    await client.close()
    await pool.stop()
    for upstream in upstreams.values():
        await upstream.stop()


async def test_unconfigured_pool_round_robins_to_default():
    pool, upstreams, endpoints, client = await pool_setup("stable")
    try:
        workers_seen = set()
        for _ in range(6):
            response = await client.get(f"http://{pool.address}/items")
            assert response.json()["version"] == "stable"
            assert response.headers.get("X-Bifrost-Version") == "default"
            workers_seen.add(response.headers.get("X-Bifrost-Worker"))
        assert workers_seen == {"0", "1", "2"}  # round-robin covers the pool
    finally:
        await teardown(pool, upstreams, client)


async def test_pool_applies_config_to_every_worker():
    pool, upstreams, endpoints, client = await pool_setup("stable", "canary")
    try:
        version = pool.apply_config(single_version("canary"), endpoints)
        assert version == 1
        assert all(member.config_version == 1 for member in pool.workers)
        for _ in range(6):
            response = await client.get(f"http://{pool.address}/items")
            assert response.json()["version"] == "canary"
    finally:
        await teardown(pool, upstreams, client)


async def test_pool_issues_cookie_and_stays_pinned():
    pool, upstreams, endpoints, client = await pool_setup("stable", "canary")
    try:
        pool.apply_config(canary_split("stable", "canary", 30.0), endpoints)
        first = await client.get(f"http://{pool.address}/x")
        set_cookie = first.headers.get("Set-Cookie")
        assert set_cookie and "bifrost_client=" in set_cookie
        cookie_pair = set_cookie.split(";")[0]
        pinned_worker = first.headers.get("X-Bifrost-Worker")
        pinned_version = first.json()["version"]
        for _ in range(5):
            again = await client.get(
                f"http://{pool.address}/x", headers={"Cookie": cookie_pair}
            )
            assert again.headers.get("X-Bifrost-Worker") == pinned_worker
            assert again.json()["version"] == pinned_version
            assert again.headers.get("Set-Cookie") is None
    finally:
        await teardown(pool, upstreams, client)


async def test_stale_install_is_rejected_per_worker():
    pool, upstreams, endpoints, client = await pool_setup("stable", "canary")
    try:
        pool.apply_config(single_version("canary"), endpoints)  # version 1
        pool.apply_config(single_version("stable"), endpoints)  # version 2
        member = pool.workers[0]
        config = single_version("canary")
        plan = RoutingPlan(config, seed=pool.seed)
        normalized = normalize_endpoints(config, endpoints)
        # A replayed (or late-arriving) older fan-out must not roll back.
        assert member.install_plan(plan, normalized, 1) is False
        assert member.install_plan(plan, normalized, 2) is False
        assert member.active_config.splits[0].version == "stable"
        assert member.clear_config(version=2) is False
        assert member.active_config is not None
        # The next version is accepted.
        assert member.install_plan(plan, normalized, 3) is True
        assert member.active_config.splits[0].version == "canary"
    finally:
        await teardown(pool, upstreams, client)


async def test_admin_config_roundtrip_over_http():
    pool, upstreams, endpoints, client = await pool_setup("stable", "canary")
    try:
        payload = {
            "routing": canary_split("stable", "canary", 25.0).to_wire(),
            "endpoints": endpoints,
        }
        response = await client.put(
            f"http://{pool.address}/bifrost/config", json_body=payload
        )
        body = response.json()
        assert body["status"] == "ok"
        assert body["config_version"] == 1
        assert body["workers"] == 3

        response = await client.get(f"http://{pool.address}/bifrost/config")
        body = response.json()
        assert body["active"] is True
        assert body["config_version"] == 1

        response = await client.delete(f"http://{pool.address}/bifrost/config")
        assert response.json() == {
            "status": "ok",
            "active": False,
            "config_version": 2,
        }
        assert all(member.config_version == 2 for member in pool.workers)
    finally:
        await teardown(pool, upstreams, client)


async def test_stats_and_metrics_merge_across_workers():
    pool, upstreams, endpoints, client = await pool_setup("stable", "canary")
    try:
        pool.apply_config(canary_split("stable", "canary", 30.0), endpoints)
        for _ in range(12):
            await client.get(f"http://{pool.address}/x")

        response = await client.get(f"http://{pool.address}/bifrost/stats")
        stats = response.json()
        assert sum(stats["forwarded"].values()) == 12
        assert stats["workers"] == 3
        assert len(stats["per_worker"]) == 3
        per_worker_total = sum(
            sum(entry["forwarded"].values()) for entry in stats["per_worker"]
        )
        assert per_worker_total == 12
        # canary_split is not sticky, so no assignments are memoized.
        assert stats["sticky_sessions"] == 0
        assert stats["upstream_errors"] == 0

        response = await client.get(f"http://{pool.address}/metrics")
        exposition = response.body.decode("utf-8")
        total = sum(
            float(line.rsplit(" ", 1)[1])
            for line in exposition.splitlines()
            if line.startswith("proxy_requests_total{")
        )
        assert total == 12.0

        response = await client.get(f"http://{pool.address}/bifrost/healthz")
        health = response.json()
        assert health["status"] == "up"
        assert health["worker_versions"] == [1, 1, 1]
    finally:
        await teardown(pool, upstreams, client)


async def test_pool_validation_errors_return_400():
    pool, upstreams, endpoints, client = await pool_setup("stable", "canary")
    try:
        payload = {
            "routing": canary_split("stable", "canary", 25.0).to_wire(),
            "endpoints": {"stable": endpoints["stable"]},  # canary missing
        }
        response = await client.put(
            f"http://{pool.address}/bifrost/config", json_body=payload
        )
        assert response.status == 400
        assert pool.config_version == 0
        assert all(member.config_version == 0 for member in pool.workers)
    finally:
        await teardown(pool, upstreams, client)


@pytest.mark.skipif(
    not hasattr(socket, "SO_REUSEPORT"), reason="platform lacks SO_REUSEPORT"
)
async def test_reuseport_pool_serves_and_fans_out_config():
    import asyncio

    upstreams = {name: EchoVersion(name) for name in ("stable", "canary")}
    for upstream in upstreams.values():
        await upstream.start()
    endpoints = {name: server.address for name, server in upstreams.items()}
    pool = ReuseportProxyPool(
        "product", default_upstream=upstreams["stable"].address, workers=2
    )
    await asyncio.to_thread(pool.start)
    client = HttpClient()
    try:
        assert len(pool.workers) == 2
        response = await client.get(f"http://{pool.address}/items")
        assert response.json()["version"] == "stable"

        # Admin PUT lands on whichever worker the kernel picks; the member
        # offloads the fan-out so *both* workers get the new plan.
        payload = {
            "routing": single_version("canary").to_wire(),
            "endpoints": endpoints,
        }
        response = await client.put(
            f"http://{pool.address}/bifrost/config", json_body=payload
        )
        body = response.json()
        assert body["status"] == "ok"
        assert body["config_version"] == 1
        assert body["workers"] == 2
        assert [member.config_version for member in pool.workers] == [1, 1]

        async with HttpClient() as fresh:  # new connections may hit either worker
            for _ in range(4):
                response = await fresh.get(f"http://{pool.address}/items")
                assert response.json()["version"] == "canary"
    finally:
        await client.close()
        await asyncio.to_thread(pool.stop)
        for upstream in upstreams.values():
            await upstream.stop()
