"""Tests for the bounded shadow dispatch queue."""

import asyncio

import pytest

from repro.httpcore import Request, Response
from repro.proxy import DROP_NEWEST, DROP_OLDEST, Shadower


class GatedClient:
    """Stub upstream client whose sends block until released."""

    def __init__(self):
        self.gate = asyncio.Event()
        self.sent = []
        self.fail = False

    async def send(self, request, host, port, timeout=None):
        await self.gate.wait()
        if self.fail:
            raise ConnectionError("shadow target down")
        self.sent.append((request, host, port))
        return Response(status=200)


def _request(i=0):
    return Request("GET", f"/shadow/{i}")


async def test_shadows_are_sent_and_counted():
    client = GatedClient()
    client.gate.set()
    shadower = Shadower(client)
    assert shadower.shadow(_request(), "target:80")
    await shadower.drain()
    assert shadower.sent == 1
    assert shadower.dropped == 0
    request, host, port = client.sent[0]
    assert (host, port) == ("target", 80)
    assert request.headers.get("X-Bifrost-Shadow") == "true"
    await shadower.close()


async def test_failures_are_counted_never_raised():
    client = GatedClient()
    client.fail = True
    client.gate.set()
    shadower = Shadower(client)
    shadower.shadow(_request(), "target:80")
    await shadower.drain()
    assert shadower.failed == 1
    assert shadower.sent == 0
    await shadower.close()


async def test_drop_newest_when_queue_full():
    client = GatedClient()  # gate closed: nothing completes
    shadower = Shadower(client, max_pending=2, concurrency=1)
    accepted = [shadower.shadow(_request(i), "t:80") for i in range(5)]
    # One request is pulled into the (blocked) worker; the queue then
    # holds max_pending and everything beyond that is dropped.
    assert accepted.count(True) >= 2
    assert shadower.dropped == accepted.count(False) > 0
    client.gate.set()
    await shadower.drain()
    assert shadower.sent == accepted.count(True)
    await shadower.close()


async def test_drop_oldest_displaces_stale_duplicates():
    client = GatedClient()
    shadower = Shadower(
        client, max_pending=2, concurrency=1, policy=DROP_OLDEST
    )
    for i in range(5):
        assert shadower.shadow(_request(i), "t:80")  # never rejected
    assert shadower.dropped > 0
    client.gate.set()
    await shadower.drain()
    # The newest duplicates survived; total accepted = sent + displaced.
    assert shadower.sent + shadower.dropped == 5
    targets = [request.target for request, _, _ in client.sent]
    assert "/shadow/4" in targets
    await shadower.close()


async def test_in_flight_tracks_backlog():
    client = GatedClient()
    shadower = Shadower(client, max_pending=10)
    for i in range(3):
        shadower.shadow(_request(i), "t:80")
    assert shadower.in_flight == 3
    client.gate.set()
    await shadower.drain()
    assert shadower.in_flight == 0
    await shadower.close()


async def test_concurrency_bounds_worker_pool():
    client = GatedClient()
    shadower = Shadower(client, max_pending=100, concurrency=2)
    for i in range(10):
        shadower.shadow(_request(i), "t:80")
    assert len(shadower._workers) <= 2
    client.gate.set()
    await shadower.close()
    assert shadower.sent == 10


def test_constructor_validation():
    client = GatedClient()
    with pytest.raises(ValueError):
        Shadower(client, max_pending=0)
    with pytest.raises(ValueError):
        Shadower(client, concurrency=0)
    with pytest.raises(ValueError):
        Shadower(client, policy="drop-random")
    assert DROP_NEWEST != DROP_OLDEST
