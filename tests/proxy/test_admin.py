"""Tests for the engine→proxy controllers."""

import pytest

from repro.core import canary_split, single_version
from repro.httpcore import HttpServer, Response
from repro.proxy import (
    BifrostProxy,
    HttpProxyController,
    LocalProxyController,
    ProxyUnreachable,
)


async def test_local_controller_applies_directly():
    upstream = HttpServer()
    upstream.router.set_fallback(lambda r: Response.text("ok"))
    proxy = BifrostProxy("search", default_upstream="127.0.0.1:1")
    controller = LocalProxyController({"search": proxy})
    await controller.apply(
        "search", canary_split("a", "b", 5.0), {"a": "h:1", "b": "h:2"}
    )
    assert proxy.active_config is not None
    assert proxy.active_config.splits[1].percentage == 5.0


async def test_local_controller_unknown_service():
    controller = LocalProxyController()
    with pytest.raises(ProxyUnreachable):
        await controller.apply("ghost", single_version("a"), {"a": "h:1"})


async def test_http_controller_configures_over_the_wire():
    proxy = BifrostProxy("search", default_upstream="127.0.0.1:1")
    await proxy.start()
    controller = HttpProxyController({"search": proxy.address})
    try:
        await controller.apply(
            "search", canary_split("a", "b", 10.0), {"a": "h:1", "b": "h:2"}
        )
        assert proxy.active_config is not None
        assert proxy.active_config.splits[1].percentage == 10.0
    finally:
        await controller.close()
        await proxy.stop()


async def test_http_controller_unknown_service():
    controller = HttpProxyController({})
    try:
        with pytest.raises(ProxyUnreachable):
            await controller.apply("ghost", single_version("a"), {"a": "h:1"})
    finally:
        await controller.close()


async def test_http_controller_unreachable_proxy():
    controller = HttpProxyController({"search": "127.0.0.1:1"})
    try:
        with pytest.raises(ProxyUnreachable):
            await controller.apply("search", single_version("a"), {"a": "h:1"})
    finally:
        await controller.close()


async def test_http_controller_rejected_config():
    proxy = BifrostProxy("search", default_upstream="127.0.0.1:1")
    await proxy.start()
    controller = HttpProxyController({"search": proxy.address})
    try:
        # Endpoints missing for the referenced version -> proxy returns 400.
        with pytest.raises(ProxyUnreachable):
            await controller.apply("search", single_version("a"), {})
    finally:
        await controller.close()
        await proxy.stop()


async def test_controller_register():
    controller = HttpProxyController({})
    controller.register("svc", "127.0.0.1:9999")
    assert controller.proxies == {"svc": "127.0.0.1:9999"}
    await controller.close()
