"""Unit tests for the compiled routing plan and endpoint rings."""

import random

import pytest

from repro.core import RoutingConfig, RoutingError, ShadowRoute, TrafficSplit
from repro.proxy.plan import NO_SHADOWS, EndpointRing, RoutingPlan


def test_ring_parses_endpoints_once():
    ring = EndpointRing(["svc-a:8001", "bare-host"])
    assert ring.instances == (
        ("svc-a:8001", "svc-a", 8001),
        ("bare-host", "bare-host", 80),
    )


def test_ring_round_robins():
    ring = EndpointRing(["a:1", "b:2", "c:3"])
    picked = [ring.next()[0] for _ in range(7)]
    assert picked == ["a:1", "b:2", "c:3", "a:1", "b:2", "c:3", "a:1"]


def test_single_instance_ring_short_circuits():
    ring = EndpointRing(["only:9"])
    assert ring.next() == ("only:9", "only", 9)
    assert ring.next() == ("only:9", "only", 9)


def _plan(*shares, shadows=(), sticky=False):
    return RoutingPlan(
        RoutingConfig(
            splits=[TrafficSplit(f"v{i}", s) for i, s in enumerate(shares)],
            shadows=list(shadows),
            sticky=sticky,
        )
    )


def test_plan_validates_config():
    with pytest.raises(RoutingError):
        _plan(50.0, 30.0)  # does not sum to 100


def test_single_version_bucket_short_circuits():
    plan = _plan(100.0)
    assert plan.bucket("anyone") == "v0"


def test_bucket_covers_every_version():
    plan = _plan(25.0, 25.0, 50.0)
    seen = {plan.bucket(f"client-{i}") for i in range(200)}
    assert seen == {"v0", "v1", "v2"}


def test_bucket_is_deterministic():
    plan = _plan(30.0, 70.0)
    again = _plan(30.0, 70.0)
    for i in range(50):
        assert plan.bucket(f"c{i}") == again.bucket(f"c{i}")


def test_version_for_group_dispatch():
    plan = _plan(60.0, 40.0)
    assert plan.version_for_group("v1") == "v1"
    assert plan.version_for_group("nope") == "v0"  # unknown -> default
    assert plan.version_for_group(None) == "v0"  # absent -> default


def test_known_versions_is_frozen():
    plan = _plan(60.0, 40.0)
    assert plan.known_versions == frozenset({"v0", "v1"})


def test_no_shadows_returns_shared_sentinel():
    plan = _plan(100.0)
    selected = plan.select_shadows("v0", random.Random(0))
    assert selected is NO_SHADOWS
    assert selected == []
    assert NO_SHADOWS == []  # the sentinel must never accrete entries


def test_full_percentage_shadow_always_fires():
    shadow = ShadowRoute("v0", "v1", 100.0)
    plan = _plan(100.0, 0.0, shadows=[shadow])
    for _ in range(5):
        assert plan.select_shadows("v0", random.Random(0)) == [shadow]
    assert plan.select_shadows("v1", random.Random(0)) is NO_SHADOWS


def test_sampled_shadow_respects_rng():
    shadow = ShadowRoute("v0", "v1", 50.0)
    plan = _plan(100.0, 0.0, shadows=[shadow])
    rng = random.Random(7)
    fired = sum(bool(plan.select_shadows("v0", rng)) for _ in range(400))
    assert 140 < fired < 260
