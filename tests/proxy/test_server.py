"""End-to-end proxy tests: real upstream servers behind a BifrostProxy."""

import asyncio

from repro.core import (
    RoutingConfig,
    ShadowRoute,
    TrafficSplit,
    ab_split,
    canary_split,
    single_version,
)
from repro.httpcore import HttpClient, HttpServer, Response
from repro.proxy import BifrostProxy


class EchoVersion(HttpServer):
    """Upstream that reports which version it is."""

    def __init__(self, version: str):
        super().__init__(name=version)
        self.version = version
        self.seen_requests = []

        async def handler(request):
            self.seen_requests.append(request)
            return Response.from_json(
                {"version": self.version, "path": request.path}
            )

        self.router.set_fallback(handler)


async def proxy_setup(*versions: str):
    upstreams = {name: EchoVersion(name) for name in versions}
    for upstream in upstreams.values():
        await upstream.start()
    proxy = BifrostProxy("product", default_upstream=upstreams[versions[0]].address)
    await proxy.start()
    client = HttpClient()
    endpoints = {name: server.address for name, server in upstreams.items()}
    return proxy, upstreams, endpoints, client


async def teardown(proxy, upstreams, client):
    await client.close()
    await proxy.stop()
    for upstream in upstreams.values():
        await upstream.stop()


async def test_unconfigured_proxy_uses_default_upstream():
    proxy, upstreams, endpoints, client = await proxy_setup("stable")
    try:
        response = await client.get(f"http://{proxy.address}/items")
        assert response.json()["version"] == "stable"
        assert response.headers.get("X-Bifrost-Version") == "default"
    finally:
        await teardown(proxy, upstreams, client)


async def test_single_version_routing():
    proxy, upstreams, endpoints, client = await proxy_setup("stable", "canary")
    try:
        proxy.apply_config(single_version("canary"), endpoints)
        response = await client.get(f"http://{proxy.address}/items")
        assert response.json()["version"] == "canary"
        assert response.headers.get("X-Bifrost-Version") == "canary"
    finally:
        await teardown(proxy, upstreams, client)


async def test_split_routing_distribution():
    proxy, upstreams, endpoints, client = await proxy_setup("stable", "canary")
    try:
        proxy.apply_config(canary_split("stable", "canary", 30.0), endpoints)
        # Each request without a cookie is a new client.
        versions = []
        for _ in range(300):
            response = await client.get(f"http://{proxy.address}/x")
            versions.append(response.json()["version"])
        canary_share = versions.count("canary") / len(versions)
        assert 0.2 < canary_share < 0.4
    finally:
        await teardown(proxy, upstreams, client)


async def test_cookie_issued_and_respected():
    proxy, upstreams, endpoints, client = await proxy_setup("a", "b")
    try:
        proxy.apply_config(ab_split("a", "b"), endpoints)
        first = await client.get(f"http://{proxy.address}/x")
        set_cookie = first.headers.get("Set-Cookie")
        assert set_cookie and "bifrost_client=" in set_cookie
        cookie_pair = set_cookie.split(";")[0]
        first_version = first.json()["version"]
        # Same cookie -> same version, no new Set-Cookie.
        for _ in range(5):
            again = await client.get(
                f"http://{proxy.address}/x", headers={"Cookie": cookie_pair}
            )
            assert again.json()["version"] == first_version
            assert again.headers.get("Set-Cookie") is None
    finally:
        await teardown(proxy, upstreams, client)


async def test_client_uuid_propagated_upstream():
    proxy, upstreams, endpoints, client = await proxy_setup("a")
    try:
        proxy.apply_config(single_version("a"), endpoints)
        await client.get(f"http://{proxy.address}/x")
        request = upstreams["a"].seen_requests[-1]
        assert "bifrost_client" in request.cookies
    finally:
        await teardown(proxy, upstreams, client)


async def test_header_based_routing():
    from repro.core import FilterKind

    proxy, upstreams, endpoints, client = await proxy_setup("a", "b")
    try:
        config = RoutingConfig(
            splits=[TrafficSplit("a", 50.0), TrafficSplit("b", 50.0)],
            filter_kind=FilterKind.HEADER,
            header_name="X-Bifrost-Group",
        )
        proxy.apply_config(config, endpoints)
        response = await client.get(
            f"http://{proxy.address}/x", headers={"X-Bifrost-Group": "b"}
        )
        assert response.json()["version"] == "b"
        response = await client.get(f"http://{proxy.address}/x")
        assert response.json()["version"] == "a"
    finally:
        await teardown(proxy, upstreams, client)


async def test_dark_launch_duplicates_traffic():
    proxy, upstreams, endpoints, client = await proxy_setup("stable", "shadow")
    try:
        config = RoutingConfig(
            splits=[TrafficSplit("stable", 100.0)],
            shadows=[ShadowRoute("stable", "shadow", 100.0)],
        )
        proxy.apply_config(config, endpoints)
        for _ in range(10):
            response = await client.get(f"http://{proxy.address}/x")
            # The user always sees the primary version's response.
            assert response.json()["version"] == "stable"
        await proxy.shadower.drain()
        assert len(upstreams["shadow"].seen_requests) == 10
        assert len(upstreams["stable"].seen_requests) == 10
        shadow_request = upstreams["shadow"].seen_requests[0]
        assert shadow_request.headers.get("X-Bifrost-Shadow") == "true"
    finally:
        await teardown(proxy, upstreams, client)


async def test_shadow_failure_does_not_affect_user():
    proxy, upstreams, endpoints, client = await proxy_setup("stable")
    try:
        endpoints = dict(endpoints)
        endpoints["dead"] = "127.0.0.1:1"
        config = RoutingConfig(
            splits=[TrafficSplit("stable", 100.0)],
            shadows=[ShadowRoute("stable", "dead", 100.0)],
        )
        proxy.apply_config(config, endpoints)
        response = await client.get(f"http://{proxy.address}/x")
        assert response.status == 200
        await proxy.shadower.drain()
        assert proxy.shadower.failed == 1
    finally:
        await teardown(proxy, upstreams, client)


async def test_post_bodies_forwarded_both_ways():
    proxy, upstreams, endpoints, client = await proxy_setup("stable", "shadow")
    try:
        config = RoutingConfig(
            splits=[TrafficSplit("stable", 100.0)],
            shadows=[ShadowRoute("stable", "shadow", 100.0)],
        )
        proxy.apply_config(config, endpoints)
        await client.post(f"http://{proxy.address}/buy", json_body={"item": "tv"})
        await proxy.shadower.drain()
        assert upstreams["stable"].seen_requests[-1].json() == {"item": "tv"}
        assert upstreams["shadow"].seen_requests[-1].json() == {"item": "tv"}
    finally:
        await teardown(proxy, upstreams, client)


async def test_dead_upstream_returns_502():
    proxy, upstreams, endpoints, client = await proxy_setup("stable")
    try:
        proxy.apply_config(single_version("stable"), {"stable": "127.0.0.1:1"})
        response = await client.get(f"http://{proxy.address}/x")
        assert response.status == 502
        assert proxy.upstream_errors == 1
    finally:
        await teardown(proxy, upstreams, client)


async def test_admin_config_api_round_trip():
    proxy, upstreams, endpoints, client = await proxy_setup("stable", "canary")
    try:
        payload = {
            "routing": canary_split("stable", "canary", 5.0).to_wire(),
            "endpoints": endpoints,
        }
        response = await client.put(
            f"http://{proxy.address}/bifrost/config", json_body=payload
        )
        assert response.status == 200
        response = await client.get(f"http://{proxy.address}/bifrost/config")
        body = response.json()
        assert body["active"]
        assert body["routing"]["splits"][1]["percentage"] == 5.0
        response = await client.delete(f"http://{proxy.address}/bifrost/config")
        assert response.json()["active"] is False
        response = await client.get(f"http://{proxy.address}/bifrost/config")
        assert response.json()["active"] is False
    finally:
        await teardown(proxy, upstreams, client)


async def test_admin_rejects_invalid_config():
    proxy, upstreams, endpoints, client = await proxy_setup("stable")
    try:
        response = await client.put(
            f"http://{proxy.address}/bifrost/config",
            json_body={"routing": {"splits": [{"version": "x", "percentage": 50}]}},
        )
        assert response.status == 400
        # Config referencing a version without an endpoint is rejected too.
        response = await client.put(
            f"http://{proxy.address}/bifrost/config",
            json_body={
                "routing": {"splits": [{"version": "x", "percentage": 100}]},
                "endpoints": {},
            },
        )
        assert response.status == 400
    finally:
        await teardown(proxy, upstreams, client)


async def test_stats_endpoint():
    proxy, upstreams, endpoints, client = await proxy_setup("stable")
    try:
        proxy.apply_config(single_version("stable"), endpoints)
        for _ in range(3):
            await client.get(f"http://{proxy.address}/x")
        response = await client.get(f"http://{proxy.address}/bifrost/stats")
        stats = response.json()
        assert stats["forwarded"] == {"stable": 3}
        assert stats["shadow_sent"] == 0
    finally:
        await teardown(proxy, upstreams, client)


async def test_health_endpoint():
    proxy, upstreams, endpoints, client = await proxy_setup("stable")
    try:
        response = await client.get(f"http://{proxy.address}/bifrost/healthz")
        payload = response.json()
        assert payload["status"] == "up"
        assert payload["service"] == "product"
        caches = payload["caches"]
        assert set(caches) == {"compiled_query", "sticky", "shadow"}
        assert caches["sticky"]["capacity"] == proxy.sticky_store.capacity
        assert caches["shadow"]["max_pending"] == proxy.shadower.max_pending
    finally:
        await teardown(proxy, upstreams, client)


async def test_multi_instance_version_round_robins():
    """A version backed by several instances is balanced round-robin."""
    proxy, upstreams, endpoints, client = await proxy_setup("i1", "i2")
    try:
        multi = {"pooled": [upstreams["i1"].address, upstreams["i2"].address]}
        proxy.apply_config(single_version("pooled"), multi)
        served = []
        for _ in range(6):
            response = await client.get(f"http://{proxy.address}/x")
            served.append(response.json()["version"])
        assert served.count("i1") == 3
        assert served.count("i2") == 3
        # All were accounted to the *version*, not the instances.
        assert proxy.forwarded == {"pooled": 6}
    finally:
        await teardown(proxy, upstreams, client)


async def test_multi_instance_via_admin_api():
    proxy, upstreams, endpoints, client = await proxy_setup("i1", "i2")
    try:
        payload = {
            "routing": single_version("pooled").to_wire(),
            "endpoints": {
                "pooled": [upstreams["i1"].address, upstreams["i2"].address]
            },
        }
        response = await client.put(
            f"http://{proxy.address}/bifrost/config", json_body=payload
        )
        assert response.status == 200
        versions = {
            (await client.get(f"http://{proxy.address}/x")).json()["version"]
            for _ in range(4)
        }
        assert versions == {"i1", "i2"}
    finally:
        await teardown(proxy, upstreams, client)


async def test_empty_instance_list_rejected():
    proxy, upstreams, endpoints, client = await proxy_setup("a")
    try:
        import pytest

        from repro.core import RoutingError

        with pytest.raises(RoutingError):
            proxy.apply_config(single_version("v"), {"v": []})
    finally:
        await teardown(proxy, upstreams, client)


async def test_proxy_exposes_own_metrics():
    proxy, upstreams, endpoints, client = await proxy_setup("stable", "shadow")
    try:
        config = RoutingConfig(
            splits=[TrafficSplit("stable", 100.0)],
            shadows=[ShadowRoute("stable", "shadow", 100.0)],
        )
        proxy.apply_config(config, endpoints)
        for _ in range(3):
            await client.get(f"http://{proxy.address}/x")
        await proxy.shadower.drain()
        response = await client.get(f"http://{proxy.address}/metrics")
        text = response.body.decode()
        assert 'proxy_requests_total{version="stable"} 3' in text
        assert "proxy_shadow_requests_total 3" in text
        assert "proxy_forward_seconds_count 3" in text
        assert "proxy_sticky_sessions" in text
    finally:
        await teardown(proxy, upstreams, client)


async def test_sticky_store_shared_across_config_changes():
    """Regression: the proxy's (initially empty) sticky store must be the
    one the filter chain writes to, and assignments must survive a
    reconfiguration — otherwise A/B stickiness breaks on phase changes."""
    proxy, upstreams, endpoints, client = await proxy_setup("a", "b")
    try:
        proxy.apply_config(ab_split("a", "b"), endpoints)
        first = await client.get(f"http://{proxy.address}/x")
        cookie = first.headers.get("Set-Cookie").split(";")[0]
        version = first.json()["version"]
        assert len(proxy.sticky_store) == 1
        # Reconfigure with skewed percentages; the client must stay put.
        proxy.apply_config(
            RoutingConfig(
                splits=[TrafficSplit("a", 1.0), TrafficSplit("b", 99.0)],
                sticky=True,
            ),
            endpoints,
        )
        again = await client.get(
            f"http://{proxy.address}/x", headers={"Cookie": cookie}
        )
        assert again.json()["version"] == version
    finally:
        await teardown(proxy, upstreams, client)


async def test_concurrent_proxying():
    proxy, upstreams, endpoints, client = await proxy_setup("a", "b")
    try:
        proxy.apply_config(canary_split("a", "b", 50.0), endpoints)
        responses = await asyncio.gather(
            *[client.get(f"http://{proxy.address}/x") for _ in range(50)]
        )
        assert all(r.status == 200 for r in responses)
        total = sum(proxy.forwarded.values())
        assert total == 50
    finally:
        await teardown(proxy, upstreams, client)


async def test_connection_nominated_headers_stripped():
    """RFC 7230 section 6.1: headers listed in ``Connection`` are hop-by-hop
    and must not be forwarded, in addition to the static set."""
    proxy, upstreams, endpoints, client = await proxy_setup("stable")
    try:
        proxy.apply_config(single_version("stable"), endpoints)
        await client.get(
            f"http://{proxy.address}/x",
            headers={
                "Connection": "X-Internal-Token, Keep-Alive",
                "X-Internal-Token": "secret",
                "Keep-Alive": "timeout=5",
                "X-App": "kept",
            },
        )
        seen = upstreams["stable"].seen_requests[-1]
        assert seen.headers.get("Connection") is None
        assert seen.headers.get("X-Internal-Token") is None
        assert seen.headers.get("Keep-Alive") is None
        assert seen.headers.get("X-App") == "kept"
    finally:
        await teardown(proxy, upstreams, client)


async def test_sticky_store_bounded_at_proxy_level():
    """More distinct clients than sticky_capacity must evict, not grow."""
    upstream = EchoVersion("a")
    await upstream.start()
    proxy = BifrostProxy(
        "product", default_upstream=upstream.address, sticky_capacity=10
    )
    await proxy.start()
    client = HttpClient()
    try:
        config = RoutingConfig(splits=[TrafficSplit("a", 100.0)], sticky=True)
        proxy.apply_config(config, {"a": upstream.address})
        for i in range(25):
            await client.get(
                f"http://{proxy.address}/x",
                headers={"Cookie": f"bifrost_client=client-{i}"},
            )
        assert len(proxy.sticky_store) == 10
        assert proxy.sticky_store.evictions == 15
        stats = (await client.get(f"http://{proxy.address}/bifrost/stats")).json()
        assert stats["sticky_sessions"] == 10
        assert stats["sticky_evictions"] == 15
    finally:
        await teardown(proxy, {"a": upstream}, client)


async def test_metrics_scrape_exposes_backpressure_counters():
    from repro.metrics import parse_exposition

    proxy, upstreams, endpoints, client = await proxy_setup("stable")
    try:
        proxy.apply_config(single_version("stable"), endpoints)
        await client.get(f"http://{proxy.address}/x")
        response = await client.get(f"http://{proxy.address}/metrics")
        names = {point.name for point in parse_exposition(response.body.decode())}
        assert "proxy_shadow_dropped_total" in names
        assert "proxy_sticky_evictions_total" in names
        assert "proxy_requests_total" in names
    finally:
        await teardown(proxy, upstreams, client)
