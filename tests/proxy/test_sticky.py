"""Tests for the sticky session store."""

import pytest

from repro.proxy import StickyStore


def test_assign_and_get():
    store = StickyStore()
    store.assign("client-1", "version-a")
    assert store.get("client-1") == "version-a"
    assert store.get("unknown") is None
    assert "client-1" in store
    assert len(store) == 1


def test_reassignment_overwrites():
    store = StickyStore()
    store.assign("c", "a")
    store.assign("c", "b")
    assert store.get("c") == "b"
    assert len(store) == 1


def test_lru_eviction():
    store = StickyStore(capacity=2)
    store.assign("c1", "a")
    store.assign("c2", "a")
    store.assign("c3", "a")  # evicts c1
    assert store.get("c1") is None
    assert store.get("c2") == "a"
    assert store.get("c3") == "a"


def test_get_refreshes_recency():
    store = StickyStore(capacity=2)
    store.assign("c1", "a")
    store.assign("c2", "a")
    store.get("c1")  # c1 becomes most recent
    store.assign("c3", "a")  # evicts c2, not c1
    assert store.get("c1") == "a"
    assert store.get("c2") is None


def test_forget_version():
    store = StickyStore()
    store.assign("c1", "a")
    store.assign("c2", "b")
    store.assign("c3", "a")
    assert store.forget_version("a") == 2
    assert store.get("c1") is None
    assert store.get("c2") == "b"


def test_clear():
    store = StickyStore()
    store.assign("c", "a")
    store.clear()
    assert len(store) == 0


def test_capacity_validation():
    with pytest.raises(ValueError):
        StickyStore(capacity=0)
