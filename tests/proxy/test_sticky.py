"""Tests for the sticky session store."""

import pytest

from repro.proxy import StickyStore


def test_assign_and_get():
    store = StickyStore()
    store.assign("client-1", "version-a")
    assert store.get("client-1") == "version-a"
    assert store.get("unknown") is None
    assert "client-1" in store
    assert len(store) == 1


def test_reassignment_overwrites():
    store = StickyStore()
    store.assign("c", "a")
    store.assign("c", "b")
    assert store.get("c") == "b"
    assert len(store) == 1


def test_lru_eviction():
    store = StickyStore(capacity=2)
    store.assign("c1", "a")
    store.assign("c2", "a")
    store.assign("c3", "a")  # evicts c1
    assert store.get("c1") is None
    assert store.get("c2") == "a"
    assert store.get("c3") == "a"


def test_get_refreshes_recency():
    store = StickyStore(capacity=2)
    store.assign("c1", "a")
    store.assign("c2", "a")
    store.get("c1")  # c1 becomes most recent
    store.assign("c3", "a")  # evicts c2, not c1
    assert store.get("c1") == "a"
    assert store.get("c2") is None


def test_forget_version():
    store = StickyStore()
    store.assign("c1", "a")
    store.assign("c2", "b")
    store.assign("c3", "a")
    assert store.forget_version("a") == 2
    assert store.get("c1") is None
    assert store.get("c2") == "b"


def test_clear():
    store = StickyStore()
    store.assign("c", "a")
    store.clear()
    assert len(store) == 0


def test_capacity_validation():
    with pytest.raises(ValueError):
        StickyStore(capacity=0)


def test_capacity_eviction_is_counted():
    store = StickyStore(capacity=2)
    for i in range(5):
        store.assign(f"c{i}", "a")
    assert len(store) == 2
    assert store.evictions == 3


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_ttl_expires_idle_entries_on_get():
    clock = FakeClock()
    store = StickyStore(ttl=10.0, clock=clock)
    store.assign("c1", "a")
    clock.now = 5.0
    assert store.get("c1") == "a"  # refreshed at t=5
    clock.now = 14.0
    assert store.get("c1") == "a"  # idle 9s < ttl
    clock.now = 30.0
    assert store.get("c1") is None  # idle 16s > ttl
    assert store.expirations == 1
    assert len(store) == 0


def test_ttl_sweeps_from_lru_end_on_assign():
    clock = FakeClock()
    store = StickyStore(ttl=10.0, clock=clock)
    store.assign("old-1", "a")
    store.assign("old-2", "a")
    clock.now = 20.0
    store.assign("fresh", "b")
    assert store.expirations == 2
    assert len(store) == 1
    assert store.get("fresh") == "b"


def test_ttl_validation():
    with pytest.raises(ValueError):
        StickyStore(ttl=0.0)
    with pytest.raises(ValueError):
        StickyStore(ttl=-1.0)
