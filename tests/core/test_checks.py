"""Tests for timed checks: timers, conditions, runners, exception checks."""

import pytest

from repro.clock import VirtualClock
from repro.core import (
    BasicCheck,
    CheckError,
    CheckRunner,
    ExceptionCheck,
    ExceptionTriggered,
    MetricCondition,
    MetricQuery,
    OutputMapping,
    Timer,
    simple_basic_check,
)
from repro.metrics import StaticProvider


# -- Timer ---------------------------------------------------------------------


def test_timer_duration():
    assert Timer(5.0, 12).duration == 60.0


def test_timer_validation():
    with pytest.raises(CheckError):
        Timer(0, 3)
    with pytest.raises(CheckError):
        Timer(1.0, 0)


# -- MetricCondition -------------------------------------------------------------


def test_condition_needs_queries():
    with pytest.raises(CheckError):
        MetricCondition(queries=())


def test_condition_needs_exactly_one_decider():
    query = MetricQuery("v", "q")
    with pytest.raises(CheckError):
        MetricCondition(queries=(query,))  # neither
    with pytest.raises(CheckError):
        MetricCondition(
            queries=(query,),
            validator=simple_basic_check("x", "q", "<5", 1, 1).condition.validator,
            predicate=lambda values: True,
        )


def test_condition_rejects_duplicate_query_names():
    with pytest.raises(CheckError):
        MetricCondition(
            queries=(MetricQuery("v", "q1"), MetricQuery("v", "q2")),
            predicate=lambda values: True,
        )


def test_condition_validator_subject_must_exist():
    with pytest.raises(CheckError):
        MetricCondition(
            queries=(MetricQuery("v", "q"),),
            validator=MetricCondition.simple("q", "<5").validator,
            subject="other",
        )


async def test_simple_condition_evaluates_against_provider():
    condition = MetricCondition.simple("request_errors", "<5", provider="static")
    providers = {"static": StaticProvider({"request_errors": 3.0})}
    assert await condition.evaluate(providers) == 1
    providers = {"static": StaticProvider({"request_errors": 7.0})}
    assert await condition.evaluate(providers) == 0


async def test_condition_missing_data_fails():
    condition = MetricCondition.simple("m", "<5", provider="static")
    providers = {"static": StaticProvider({"m": None})}
    assert await condition.evaluate(providers) == 0


async def test_condition_provider_error_counts_as_failure():
    condition = MetricCondition.simple("unknown", "<5", provider="static")
    providers = {"static": StaticProvider({})}
    assert await condition.evaluate(providers) == 0


async def test_condition_unknown_provider_raises():
    condition = MetricCondition.simple("m", "<5", provider="nope")
    with pytest.raises(CheckError):
        await condition.evaluate({})


async def test_condition_with_custom_predicate_over_multiple_metrics():
    condition = MetricCondition(
        queries=(
            MetricQuery("sales_a", "sales_a_q", "static"),
            MetricQuery("sales_b", "sales_b_q", "static"),
        ),
        predicate=lambda values: (values["sales_a"] or 0) > (values["sales_b"] or 0),
    )
    providers = {"static": StaticProvider({"sales_a_q": 12.0, "sales_b_q": 8.0})}
    assert await condition.evaluate(providers) == 1
    providers = {"static": StaticProvider({"sales_a_q": 2.0, "sales_b_q": 8.0})}
    assert await condition.evaluate(providers) == 0


async def test_condition_predicate_exception_counts_as_failure():
    condition = MetricCondition(
        queries=(MetricQuery("m", "q", "static"),),
        predicate=lambda values: 1 / 0,
    )
    providers = {"static": StaticProvider({"q": 1.0})}
    assert await condition.evaluate(providers) == 0


# -- Comparison -------------------------------------------------------------------


def test_comparison_checks():
    from repro.core import Comparison

    assert Comparison("a", ">", "b").check(2.0, 1.0) == 1
    assert Comparison("a", ">", "b").check(1.0, 2.0) == 0
    assert Comparison("a", "<=", "b").check(1.0, 1.0) == 1
    assert Comparison("a", "!=", "b").check(1.0, 1.0) == 0


def test_comparison_missing_data_fails():
    from repro.core import Comparison

    comparison = Comparison("a", ">", "b")
    assert comparison.check(None, 1.0) == 0
    assert comparison.check(1.0, None) == 0
    assert comparison.check(None, None) == 0


def test_comparison_rejects_unknown_op():
    from repro.core import Comparison

    with pytest.raises(CheckError):
        Comparison("a", "~", "b")


def test_comparison_str():
    from repro.core import Comparison

    assert str(Comparison("x", ">=", "y")) == "x >= y"


async def test_condition_with_comparison_evaluates():
    from repro.core import Comparison

    condition = MetricCondition(
        queries=(
            MetricQuery("sales_a", "q_a", "static"),
            MetricQuery("sales_b", "q_b", "static"),
        ),
        comparison=Comparison("sales_a", ">", "sales_b"),
    )
    providers = {"static": StaticProvider({"q_a": 12.0, "q_b": 8.0})}
    assert await condition.evaluate(providers) == 1
    providers = {"static": StaticProvider({"q_a": 2.0, "q_b": 8.0})}
    assert await condition.evaluate(providers) == 0


def test_comparison_sides_must_be_query_names():
    from repro.core import Comparison

    with pytest.raises(CheckError):
        MetricCondition(
            queries=(MetricQuery("a", "qa"), MetricQuery("b", "qb")),
            comparison=Comparison("a", ">", "ghost"),
        )


def test_condition_rejects_multiple_rules():
    from repro.core import Comparison
    from repro.core.outcome import Validator

    with pytest.raises(CheckError):
        MetricCondition(
            queries=(MetricQuery("a", "qa"), MetricQuery("b", "qb")),
            comparison=Comparison("a", ">", "b"),
            validator=Validator.parse("<5"),
        )


# -- simple_basic_check factory ---------------------------------------------------


def test_simple_basic_check_defaults_threshold_to_repetitions():
    check = simple_basic_check("c", "q", "<5", interval=5, repetitions=12)
    assert check.timer == Timer(5, 12)
    assert check.output.map(12) == 1
    assert check.output.map(11) == 0


def test_simple_basic_check_partial_threshold():
    check = simple_basic_check("c", "q", "<5", interval=1, repetitions=10, threshold=8)
    assert check.output.map(8) == 1
    assert check.output.map(7) == 0


def test_simple_basic_check_threshold_bounds():
    with pytest.raises(Exception):
        simple_basic_check("c", "q", "<5", 1, 10, threshold=11)
    with pytest.raises(Exception):
        simple_basic_check("c", "q", "<5", 1, 10, threshold=0)


# -- CheckRunner ------------------------------------------------------------------


async def run_with_clock(runner, clock, total_time):
    import asyncio

    task = asyncio.ensure_future(runner.run())
    await asyncio.sleep(0)
    await clock.advance(total_time)
    return await task


async def test_basic_check_runs_n_times_and_aggregates():
    clock = VirtualClock()
    provider = StaticProvider({"q": [1.0, 10.0, 1.0, 1.0]})  # second fails "<5"
    check = simple_basic_check("c", "q", "<5", interval=5, repetitions=4, threshold=3,
                               provider="static")
    runner = CheckRunner(check, {"static": provider}, clock)
    result = await run_with_clock(runner, clock, 20)
    assert result.aggregated == 3
    assert result.mapped == 1
    assert [e.at for e in result.executions] == [5.0, 10.0, 15.0, 20.0]
    assert [e.result for e in result.executions] == [1, 0, 1, 1]


async def test_basic_check_failure_mapping():
    clock = VirtualClock()
    provider = StaticProvider({"q": 100.0})
    check = simple_basic_check("c", "q", "<5", interval=1, repetitions=3,
                               provider="static")
    runner = CheckRunner(check, {"static": provider}, clock)
    result = await run_with_clock(runner, clock, 3)
    assert result.aggregated == 0
    assert result.mapped == 0


async def test_basic_check_with_custom_output_mapping():
    clock = VirtualClock()
    provider = StaticProvider({"q": 1.0})
    check = BasicCheck(
        name="response-time",
        condition=MetricCondition.simple("q", "<5", provider="static"),
        timer=Timer(1, 100),
        output=OutputMapping.from_pairs([75, 95], [-5, 4, 5]),
    )
    runner = CheckRunner(check, {"static": provider}, clock)
    result = await run_with_clock(runner, clock, 100)
    assert result.aggregated == 100
    assert result.mapped == 5  # >95 passes -> top range


async def test_exception_check_triggers_on_first_failure():
    clock = VirtualClock()
    provider = StaticProvider({"q": [1.0, 1.0, 99.0, 1.0]})
    check = ExceptionCheck(
        name="errors",
        condition=MetricCondition.simple("q", "<5", provider="static"),
        timer=Timer(2, 10),
        fallback_state="rollback",
    )
    runner = CheckRunner(check, {"static": provider}, clock)
    import asyncio

    task = asyncio.ensure_future(runner.run())
    await asyncio.sleep(0)
    await clock.advance(20)
    with pytest.raises(ExceptionTriggered) as exc_info:
        await task
    assert exc_info.value.check.fallback_state == "rollback"
    assert exc_info.value.at == 6.0  # third execution at t=6


async def test_exception_check_all_pass_returns_repetitions():
    clock = VirtualClock()
    provider = StaticProvider({"q": 1.0})
    check = ExceptionCheck(
        name="errors",
        condition=MetricCondition.simple("q", "<5", provider="static"),
        timer=Timer(1, 5),
        fallback_state="rollback",
    )
    runner = CheckRunner(check, {"static": provider}, clock)
    result = await run_with_clock(runner, clock, 5)
    assert result.aggregated == 5
    assert result.mapped == 5


async def test_runner_notifies_observer_per_execution():
    clock = VirtualClock()
    provider = StaticProvider({"q": 1.0})
    check = simple_basic_check("c", "q", "<5", interval=1, repetitions=3,
                               provider="static")
    seen = []

    def observer(observed_check, execution):
        seen.append((observed_check.name, execution.at, execution.result))

    runner = CheckRunner(check, {"static": provider}, clock, observer)
    await run_with_clock(runner, clock, 3)
    assert seen == [("c", 1.0, 1), ("c", 2.0, 1), ("c", 3.0, 1)]


async def test_runner_supports_async_observer():
    clock = VirtualClock()
    provider = StaticProvider({"q": 1.0})
    check = simple_basic_check("c", "q", "<5", interval=1, repetitions=2,
                               provider="static")
    seen = []

    async def observer(observed_check, execution):
        seen.append(execution.result)

    runner = CheckRunner(check, {"static": provider}, clock, observer)
    await run_with_clock(runner, clock, 2)
    assert seen == [1, 1]
