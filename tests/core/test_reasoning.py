"""Tests for probabilistic rollout forecasting (absorbing Markov chain)."""

import pytest

from repro.core import (
    ModelError,
    StrategyBuilder,
    forecast_rollout,
    optimistic_probabilities,
    single_version,
    uniform_probabilities,
)


def linear_strategy():
    """a(10s) -> b(20s) -> done: deterministic, duration 30s."""
    builder = StrategyBuilder("linear")
    builder.service("svc", {"v": "h:1"})
    builder.state("a").dwell(10).goto("b")
    builder.state("b").dwell(20).goto("done")
    builder.state("done").final()
    return builder.build()


def branching_strategy():
    """canary either proceeds (p) or rolls back (1-p)."""
    builder = StrategyBuilder("branching")
    builder.service("svc", {"stable": "h:1", "canary": "h:2"})
    builder.state("canary").route("svc", single_version("canary")).dwell(60).transitions(
        [0], ["rollback", "rollout"]
    )
    builder.state("rollout").dwell(40).goto("done")
    builder.state("done").final()
    builder.state("rollback").final(rollback=True)
    return builder.build()


def looping_strategy():
    """A state that may re-execute itself (outcome inconclusive)."""
    builder = StrategyBuilder("looping")
    builder.service("svc", {"v": "h:1"})
    builder.state("test").dwell(10).transitions([0], ["test", "done"])
    builder.state("done").final()
    return builder.build()


def test_linear_expected_duration_is_exact():
    forecast = forecast_rollout(linear_strategy())
    assert forecast.expected_duration == pytest.approx(30.0)
    assert forecast.expected_visits == pytest.approx({"a": 1.0, "b": 1.0})
    assert forecast.absorption_probabilities == pytest.approx({"done": 1.0})
    assert forecast.rollback_probability == 0.0


def test_branching_with_explicit_probabilities():
    strategy = branching_strategy()
    probabilities = {
        "canary": {"rollback": 0.2, "rollout": 0.8},
        "rollout": {"done": 1.0},
    }
    forecast = forecast_rollout(strategy, probabilities)
    # E[T] = 60 (canary always) + 0.8 * 40 (rollout).
    assert forecast.expected_duration == pytest.approx(60 + 0.8 * 40)
    assert forecast.absorption_probabilities["rollback"] == pytest.approx(0.2)
    assert forecast.absorption_probabilities["done"] == pytest.approx(0.8)
    assert forecast.rollback_probability == pytest.approx(0.2)


def test_self_loop_geometric_visits():
    strategy = looping_strategy()
    # Stay with p=0.5: expected visits = 1 / (1 - 0.5) = 2.
    forecast = forecast_rollout(strategy, {"test": {"test": 0.5, "done": 0.5}})
    assert forecast.expected_visits["test"] == pytest.approx(2.0)
    assert forecast.expected_duration == pytest.approx(20.0)


def test_uniform_probabilities_split_equally():
    strategy = branching_strategy()
    probabilities = uniform_probabilities(strategy.automaton)
    assert probabilities["canary"] == {"rollback": 0.5, "rollout": 0.5}
    forecast = forecast_rollout(strategy, probabilities)
    assert forecast.rollback_probability == pytest.approx(0.5)


def test_optimistic_probabilities_favor_last_range():
    strategy = branching_strategy()
    probabilities = optimistic_probabilities(strategy.automaton, success=0.9)
    assert probabilities["canary"]["rollout"] == pytest.approx(0.9)
    assert probabilities["canary"]["rollback"] == pytest.approx(0.1)
    forecast = forecast_rollout(strategy)  # default optimistic
    assert forecast.rollback_probability == pytest.approx(0.1)


def test_optimistic_probability_bounds():
    with pytest.raises(ModelError):
        optimistic_probabilities(branching_strategy().automaton, success=0.0)


def test_forecast_running_example_shape():
    """The paper's Figure-2 automaton: forecast respects the slow path."""
    builder = StrategyBuilder("fig2")
    builder.service("search", {"search": "h:1", "fastSearch": "h:2"})
    builder.state("a").dwell(1 * 86400).transitions([3], ["g", "b"])
    builder.state("b").dwell(1 * 86400).transitions([3, 4], ["g", "c", "d"])
    builder.state("c").dwell(1 * 86400).transitions([3], ["g", "d"])
    builder.state("d").dwell(1 * 86400).transitions([3], ["g", "e"])
    builder.state("e").dwell(5 * 86400).transitions([14], ["g", "f"])
    builder.state("f").final()
    builder.state("g").final(rollback=True)
    strategy = builder.build()

    certain_success = {
        "a": {"b": 1.0},
        "b": {"d": 0.5, "c": 0.5},  # half the time the slow path via c
        "c": {"d": 1.0},
        "d": {"e": 1.0},
        "e": {"f": 1.0},
    }
    forecast = forecast_rollout(strategy, certain_success)
    # 1 + 1 + 0.5 + 1 + 5 days = 8.5 days expected.
    assert forecast.expected_duration == pytest.approx(8.5 * 86400)
    assert forecast.absorption_probabilities["f"] == pytest.approx(1.0)


def test_probabilities_must_sum_to_one():
    with pytest.raises(ModelError):
        forecast_rollout(
            branching_strategy(),
            {"canary": {"rollback": 0.5}, "rollout": {"done": 1.0}},
        )


def test_probabilities_must_follow_existing_edges():
    with pytest.raises(ModelError):
        forecast_rollout(
            branching_strategy(),
            {"canary": {"done": 1.0}, "rollout": {"done": 1.0}},
        )


def test_missing_state_probabilities_rejected():
    with pytest.raises(ModelError):
        forecast_rollout(branching_strategy(), {"rollout": {"done": 1.0}})


def test_negative_probability_rejected():
    with pytest.raises(ModelError):
        forecast_rollout(
            looping_strategy(), {"test": {"test": -0.5, "done": 1.5}}
        )


def test_never_absorbing_chain_rejected():
    with pytest.raises(ModelError):
        forecast_rollout(looping_strategy(), {"test": {"test": 1.0, "done": 0.0}})
