"""Provider-error semantics: no-data vs failed, and exception-check policies."""

import asyncio

import pytest

from repro.clock import VirtualClock
from repro.core import (
    CheckError,
    CheckRunner,
    ExceptionCheck,
    ExceptionTriggered,
    MetricCondition,
    ProviderErrorPolicy,
    Timer,
)
from repro.metrics import StaticProvider
from repro.metrics.provider import MetricsProvider, ProviderError


class ScriptedProvider(MetricsProvider):
    """Yields one scripted outcome per query: a float, None, or an exception."""

    name = "static"

    def __init__(self, script):
        self.script = list(script)
        self.calls = 0

    async def query(self, query):
        self.calls += 1
        outcome = self.script.pop(0) if self.script else self.script_default()
        if isinstance(outcome, BaseException):
            raise outcome
        return outcome

    @staticmethod
    def script_default():
        raise ProviderError("script exhausted")


def exception_check(policy, repetitions=5):
    return ExceptionCheck(
        "guard",
        MetricCondition.simple("m", ">0", provider="static"),
        Timer(1.0, repetitions),
        fallback_state="rollback",
        on_provider_error=policy,
    )


async def run_check(check, provider):
    clock = VirtualClock()
    runner = CheckRunner(check, {"static": provider}, clock)
    task = asyncio.ensure_future(runner.run())
    for _ in range(100):
        if task.done():
            break
        await clock.advance(1.0)
    assert task.done()
    return task.result()


# -- evaluate_detailed ----------------------------------------------------


async def test_evaluate_distinguishes_no_data_from_failed():
    condition = MetricCondition.simple("m", ">0", provider="static")
    ok = await condition.evaluate_detailed({"static": StaticProvider({"m": 1.0})})
    assert (ok.result, ok.data_available) == (1, True)
    failed = await condition.evaluate_detailed({"static": StaticProvider({"m": -1.0})})
    assert (failed.result, failed.data_available) == (0, True)
    missing = await condition.evaluate_detailed({"static": StaticProvider({"m": None})})
    assert (missing.result, missing.data_available) == (0, False)
    erroring = await condition.evaluate_detailed({"static": StaticProvider({})})
    assert (erroring.result, erroring.data_available) == (0, False)
    assert erroring.errors


async def test_unexpected_provider_exception_is_no_data_not_a_crash():
    """A backend leaking ConnectionError/OSError must not abort the enactment."""
    condition = MetricCondition.simple("m", ">0", provider="static")
    for leaked in (ConnectionError("refused"), OSError("broken pipe"), TimeoutError()):
        provider = ScriptedProvider([leaked])
        evaluation = await condition.evaluate_detailed({"static": provider})
        assert (evaluation.result, evaluation.data_available) == (0, False)


async def test_cancelled_error_still_propagates():
    class Cancelling(MetricsProvider):
        name = "static"

        async def query(self, query):
            raise asyncio.CancelledError()

    condition = MetricCondition.simple("m", ">0", provider="static")
    with pytest.raises(asyncio.CancelledError):
        await condition.evaluate_detailed({"static": Cancelling()})


# -- ProviderErrorPolicy parsing ------------------------------------------


def test_policy_parse_round_trip():
    for text in ("trigger", "hold", "tolerate(3)"):
        assert str(ProviderErrorPolicy.parse(text)) == text


def test_policy_parse_rejects_garbage():
    for bad in ("sometimes", "tolerate", "tolerate(0)", "tolerate(-1)", "tolerate(x)"):
        with pytest.raises(CheckError):
            ProviderErrorPolicy.parse(bad)


def test_policy_validation():
    with pytest.raises(CheckError):
        ProviderErrorPolicy(mode="hold", tolerance=2)
    with pytest.raises(CheckError):
        ProviderErrorPolicy(mode="tolerate", tolerance=0)


# -- CheckRunner under each policy ----------------------------------------


async def test_trigger_policy_is_the_default_and_fires_immediately():
    check = exception_check(ProviderErrorPolicy())
    with pytest.raises(ExceptionTriggered):
        await run_check(check, ScriptedProvider([1.0, ProviderError("down")]))


async def test_hold_policy_skips_the_tick_entirely():
    check = exception_check(ProviderErrorPolicy(mode="hold"), repetitions=4)
    result = await run_check(
        check, ScriptedProvider([1.0, ProviderError("blip"), 1.0, 1.0])
    )
    # 4 ticks ran, but the held one left no execution behind.
    assert len(result.executions) == 3
    assert result.aggregated == 3


async def test_hold_policy_still_triggers_on_real_failures():
    check = exception_check(ProviderErrorPolicy(mode="hold"), repetitions=4)
    with pytest.raises(ExceptionTriggered):
        await run_check(check, ScriptedProvider([1.0, ProviderError("blip"), -5.0]))


async def test_tolerate_policy_allows_n_consecutive_errors():
    check = exception_check(
        ProviderErrorPolicy(mode="tolerate", tolerance=2), repetitions=5
    )
    down = ProviderError("down")
    result = await run_check(
        check, ScriptedProvider([1.0, down, down, 1.0, 1.0])
    )
    assert result.aggregated == 3
    assert [execution.result for execution in result.executions] == [1, 0, 0, 1, 1]


async def test_tolerate_policy_triggers_past_the_budget():
    check = exception_check(
        ProviderErrorPolicy(mode="tolerate", tolerance=2), repetitions=5
    )
    down = ProviderError("down")
    provider = ScriptedProvider([1.0, down, down, down, 1.0])
    with pytest.raises(ExceptionTriggered):
        await run_check(check, provider)
    assert provider.calls == 4  # triggered on the 3rd consecutive error


async def test_tolerate_counter_resets_on_data():
    check = exception_check(
        ProviderErrorPolicy(mode="tolerate", tolerance=1), repetitions=6
    )
    down = ProviderError("down")
    # error, data, error, data, ... never two consecutive errors.
    result = await run_check(
        check, ScriptedProvider([down, 1.0, down, 1.0, down, 1.0])
    )
    assert result.aggregated == 3
