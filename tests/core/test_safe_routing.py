"""Safe-routing recovery and clock-aware cancellation."""

import asyncio
import time

import pytest

from repro.clock import VirtualClock
from repro.core import (
    Engine,
    EventKind,
    ExecutionStatus,
    RecordingController,
    StrategyBuilder,
    canary_split,
    single_version,
)
from repro.resilience import ErrorFault, FaultSchedule, FaultyController


def canary_then_ramp(name="ramp"):
    """canary(2s) -> ramp(2s) -> done; rollback is the declared safe harbor."""
    builder = StrategyBuilder(name)
    builder.service("svc", {"stable": "h:1", "canary": "h:2"})
    # With no checks the outcome is always 0 > -0.5, so "ramp" is taken;
    # the rollback target exists purely as the declared safe harbor.
    builder.state("canary").route(
        "svc", canary_split("stable", "canary", 10.0)
    ).dwell(2).transitions([-0.5], ["rollback", "ramp"])
    builder.state("ramp").route(
        "svc", canary_split("stable", "canary", 50.0)
    ).dwell(2).goto("done")
    builder.state("done").route("svc", single_version("canary")).final()
    builder.state("rollback").route("svc", single_version("stable")).final(
        rollback=True
    )
    return builder.build()


def no_rollback_state(name="bare"):
    """Same shape but with no rollback final state to borrow routing from."""
    builder = StrategyBuilder(name)
    builder.service("svc", {"stable": "h:1", "canary": "h:2"})
    builder.state("canary").route(
        "svc", canary_split("stable", "canary", 10.0)
    ).dwell(2).goto("done")
    builder.state("done").route("svc", single_version("canary")).final()
    return builder.build()


async def drive_to_completion(engine, clock, execution_id, step=1.0, limit=100):
    task = asyncio.ensure_future(engine.wait(execution_id))
    for _ in range(limit):
        if task.done():
            break
        await clock.advance(step)
    assert task.done()
    return task.result()


async def test_controller_crash_restores_rollback_routing():
    """A controller dying mid-strategy leaves the proxy on the safe config."""
    clock = VirtualClock()
    recording = RecordingController()
    # First apply (canary 10%) succeeds, second (ramp 50%) crashes; the
    # recovery apply afterwards succeeds again.
    controller = FaultyController(recording, FaultSchedule.calls({2}), clock)
    engine = Engine(controller=controller, clock=clock)
    execution_id = engine.enact(canary_then_ramp())
    await asyncio.sleep(0)
    report = await drive_to_completion(engine, clock, execution_id)
    assert report.status is ExecutionStatus.FAILED
    # The stranded 10% canary split was driven to the rollback state's config.
    assert recording.latest_for("svc") == single_version("stable")
    applied = engine.bus.of_kind(EventKind.SAFE_ROUTING_APPLIED)
    assert [event.data["service"] for event in applied] == ["svc"]
    assert applied[0].data["reason"] == "failed"


async def test_recovery_without_rollback_state_uses_majority_version():
    clock = VirtualClock()
    recording = RecordingController()
    controller = FaultyController(recording, FaultSchedule.calls({2}), clock)
    engine = Engine(controller=controller, clock=clock)
    execution_id = engine.enact(no_rollback_state())
    await asyncio.sleep(0)
    report = await drive_to_completion(engine, clock, execution_id)
    assert report.status is ExecutionStatus.FAILED
    # Entry config was stable 90 / canary 10 -> safe fallback is stable.
    assert recording.latest_for("svc") == single_version("stable")


async def test_explicit_safe_routing_wins():
    clock = VirtualClock()
    recording = RecordingController()
    controller = FaultyController(recording, FaultSchedule.calls({2}), clock)
    engine = Engine(controller=controller, clock=clock)
    pinned = canary_split("stable", "canary", 1.0)
    execution_id = engine.enact(canary_then_ramp(), safe_routing={"svc": pinned})
    await asyncio.sleep(0)
    report = await drive_to_completion(engine, clock, execution_id)
    assert report.status is ExecutionStatus.FAILED
    assert recording.latest_for("svc") == pinned


async def test_recovery_failure_is_reported_not_raised():
    clock = VirtualClock()
    recording = RecordingController()
    # Every apply after the first fails — including the recovery attempt.
    controller = FaultyController(
        recording, FaultSchedule().add(lambda index, now: index >= 2), clock
    )
    engine = Engine(controller=controller, clock=clock)
    execution_id = engine.enact(canary_then_ramp())
    await asyncio.sleep(0)
    report = await drive_to_completion(engine, clock, execution_id)
    assert report.status is ExecutionStatus.FAILED
    failed = engine.bus.of_kind(EventKind.SAFE_ROUTING_FAILED)
    assert len(failed) == 1 and failed[0].data["service"] == "svc"


async def test_cancel_restores_safe_routing():
    clock = VirtualClock()
    recording = RecordingController()
    engine = Engine(controller=recording, clock=clock)
    execution_id = engine.enact(canary_then_ramp())
    await asyncio.sleep(0)
    await clock.advance(1.0)  # inside the canary phase, split applied
    assert recording.latest_for("svc") == canary_split("stable", "canary", 10.0)
    await engine.cancel(execution_id)
    assert engine.execution(execution_id).status is ExecutionStatus.FAILED
    assert recording.latest_for("svc") == single_version("stable")
    applied = engine.bus.of_kind(EventKind.SAFE_ROUTING_APPLIED)
    assert applied and applied[0].data["reason"] == "cancelled"


async def test_completed_execution_does_not_touch_routing_again():
    clock = VirtualClock()
    recording = RecordingController()
    engine = Engine(controller=recording, clock=clock)
    execution_id = engine.enact(canary_then_ramp())
    await asyncio.sleep(0)
    report = await drive_to_completion(engine, clock, execution_id)
    assert report.status is ExecutionStatus.COMPLETED
    assert not engine.bus.of_kind(EventKind.SAFE_ROUTING_APPLIED)
    assert recording.latest_for("svc") == single_version("canary")


async def test_cancel_under_virtual_clock_is_fast_and_bounded():
    """Cancelling a virtual-clock execution must not spin on real time."""
    clock = VirtualClock()
    engine = Engine(clock=clock)
    execution_id = engine.enact(canary_then_ramp())
    await asyncio.sleep(0)
    started = time.monotonic()
    await engine.cancel(execution_id)
    assert time.monotonic() - started < 1.0
    assert engine.execution(execution_id).status is ExecutionStatus.FAILED
