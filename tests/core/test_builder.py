"""Tests for the fluent strategy builder."""

import pytest

from repro.core import (
    ModelError,
    StrategyBuilder,
    canary_split,
    simple_basic_check,
    single_version,
)


def test_builder_assembles_valid_strategy():
    builder = StrategyBuilder("rollout")
    builder.service(
        "search",
        {"search": "127.0.0.1:9001", "fastSearch": "127.0.0.1:9002"},
    )
    builder.state("canary").route(
        "search", canary_split("search", "fastSearch", 5.0)
    ).check(simple_basic_check("errors", "q", "<5", 1, 3)).transitions(
        [0], ["rollback", "done"]
    )
    builder.state("done").route("search", single_version("fastSearch")).final()
    builder.state("rollback").route("search", single_version("search")).final(
        rollback=True
    )
    strategy = builder.build()
    assert strategy.automaton.start == "canary"
    assert strategy.automaton.final_states == {"done", "rollback"}
    assert strategy.automaton.state("rollback").rollback


def test_builder_first_state_is_start_unless_overridden():
    builder = StrategyBuilder("s")
    builder.service("svc", {"v": "h:1"})
    builder.state("later").dwell(1).goto("done")
    builder.state("first").dwell(1).goto("later")
    builder.state("done").final()
    builder.start_at("first")
    strategy = builder.build()
    assert strategy.automaton.start == "first"


def test_builder_goto_and_dwell():
    builder = StrategyBuilder("s")
    builder.service("svc", {"v": "h:1"})
    builder.state("a").dwell(30).goto("done")
    builder.state("done").final()
    strategy = builder.build()
    state = strategy.automaton.state("a")
    assert state.duration == 30
    assert state.transitions.next_state(0) == "done"


def test_builder_check_weights():
    builder = StrategyBuilder("s")
    builder.service("svc", {"v": "h:1"})
    builder.state("a").check(
        simple_basic_check("c1", "q", "<5", 1, 1), weight=2.0
    ).check(simple_basic_check("c2", "q", "<5", 1, 1)).goto("done")
    builder.state("done").final()
    strategy = builder.build()
    assert strategy.automaton.state("a").weights == [2.0, 1.0]


def test_builder_rejects_duplicate_service():
    builder = StrategyBuilder("s")
    builder.service("svc", {"v": "h:1"})
    with pytest.raises(ModelError):
        builder.service("svc", {"v": "h:1"})


def test_builder_rejects_duplicate_route_in_state():
    builder = StrategyBuilder("s")
    builder.service("svc", {"v": "h:1"})
    state = builder.state("a").route("svc", single_version("v"))
    with pytest.raises(ModelError):
        state.route("svc", single_version("v"))


def test_build_validates_whole_strategy():
    builder = StrategyBuilder("s")
    builder.service("svc", {"v": "h:1"})
    builder.state("a").dwell(1).goto("ghost")
    builder.state("done").final()
    with pytest.raises(ModelError):
        builder.build()
