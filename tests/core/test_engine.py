"""Tests for strategy enactment: the engine and execution machinery."""

import asyncio

import pytest

from repro.clock import VirtualClock
from repro.core import (
    Engine,
    EventKind,
    ExceptionCheck,
    ExecutionStatus,
    MetricCondition,
    RecordingController,
    StrategyBuilder,
    Timer,
    canary_split,
    simple_basic_check,
    single_version,
)
from repro.metrics import StaticProvider


def linear_strategy(name="linear"):
    """a(2s) -> b(3s) -> done, no checks."""
    builder = StrategyBuilder(name)
    builder.service("svc", {"stable": "h:1", "canary": "h:2"})
    builder.state("a").route("svc", canary_split("stable", "canary", 5.0)).dwell(2).goto("b")
    builder.state("b").route("svc", canary_split("stable", "canary", 50.0)).dwell(3).goto("done")
    builder.state("done").route("svc", single_version("canary")).final()
    return builder.build()


def checked_strategy(provider_values, threshold=None):
    """One canary state whose single check decides done vs rollback."""
    builder = StrategyBuilder("checked")
    builder.service("svc", {"stable": "h:1", "canary": "h:2"})
    builder.state("canary").route("svc", canary_split("stable", "canary", 5.0)).check(
        simple_basic_check(
            "errors", "q", "<5", interval=1, repetitions=4,
            threshold=threshold, provider="static",
        )
    ).transitions([0], ["rollback", "done"])
    builder.state("done").route("svc", single_version("canary")).final()
    builder.state("rollback").route("svc", single_version("stable")).final(rollback=True)
    return builder.build()


async def start_engine(strategy, providers=None, max_visits=None):
    clock = VirtualClock()
    engine = Engine(clock=clock)
    for name, provider in (providers or {}).items():
        engine.register_provider(name, provider)
    execution_id = engine.enact(strategy, max_visits=max_visits)
    await asyncio.sleep(0)
    return engine, clock, execution_id


async def test_linear_strategy_walks_all_states():
    engine, clock, execution_id = await start_engine(linear_strategy())
    await clock.advance(5)
    report = await engine.wait(execution_id)
    assert report.status is ExecutionStatus.COMPLETED
    assert report.path == ["a", "b", "done"]
    assert report.duration == 5.0
    assert report.delay(engine.executions[execution_id].strategy) == 0.0


async def test_routing_applied_per_state():
    engine, clock, execution_id = await start_engine(linear_strategy())
    await clock.advance(5)
    await engine.wait(execution_id)
    controller = engine.controller
    assert isinstance(controller, RecordingController)
    assert len(controller.applied) == 3
    percentages = [
        next(s.percentage for s in config.splits if s.version == "canary")
        for _, config, _ in controller.applied
    ]
    assert percentages == [5.0, 50.0, 100.0]
    # Endpoints resolved from the strategy's static configuration.
    _, _, endpoints = controller.applied[0]
    assert endpoints == {"stable": "h:1", "canary": "h:2"}


async def test_check_pass_leads_to_done():
    strategy = checked_strategy(None)
    engine, clock, execution_id = await start_engine(
        strategy, {"static": StaticProvider({"q": 1.0})}
    )
    await clock.advance(4)
    report = await engine.wait(execution_id)
    assert report.status is ExecutionStatus.COMPLETED
    assert report.path == ["canary", "done"]
    assert report.visits[0].outcome == 1


async def test_check_failure_leads_to_rollback():
    strategy = checked_strategy(None)
    engine, clock, execution_id = await start_engine(
        strategy, {"static": StaticProvider({"q": 100.0})}
    )
    await clock.advance(4)
    report = await engine.wait(execution_id)
    assert report.status is ExecutionStatus.ROLLED_BACK
    assert report.path == ["canary", "rollback"]
    assert report.visits[0].outcome == 0


async def test_exception_check_preempts_state():
    builder = StrategyBuilder("exceptional")
    builder.service("svc", {"stable": "h:1", "canary": "h:2"})
    builder.state("canary").route("svc", canary_split("stable", "canary", 5.0)).check(
        ExceptionCheck(
            "guard",
            MetricCondition.simple("q", "<5", provider="static"),
            Timer(1, 10),
            fallback_state="rollback",
        )
    ).transitions([5], ["rollback", "done"])
    builder.state("done").route("svc", single_version("canary")).final()
    builder.state("rollback").route("svc", single_version("stable")).final(rollback=True)
    strategy = builder.build()

    # Fails on the third execution (t=3): rollback long before t=10.
    provider = StaticProvider({"q": [1.0, 1.0, 99.0]})
    engine, clock, execution_id = await start_engine(strategy, {"static": provider})
    await clock.advance(3)
    report = await engine.wait(execution_id)
    assert report.status is ExecutionStatus.ROLLED_BACK
    assert report.duration == 3.0  # preempted, not the nominal 10s
    assert report.visits[0].via_exception
    assert report.visits[0].next_state == "rollback"
    triggered = engine.bus.of_kind(EventKind.EXCEPTION_TRIGGERED)
    assert len(triggered) == 1
    assert triggered[0].data["check"] == "guard"


async def test_self_loop_reexecutes_state_with_fresh_timers():
    builder = StrategyBuilder("loop")
    builder.service("svc", {"stable": "h:1", "canary": "h:2"})
    # Outcome 0 (fail) -> stay in canary; outcome 1 -> done.
    builder.state("canary").route("svc", canary_split("stable", "canary", 5.0)).check(
        simple_basic_check("c", "q", "<5", interval=1, repetitions=2, provider="static")
    ).transitions([0], ["canary", "done"])
    builder.state("done").route("svc", single_version("canary")).final()
    strategy = builder.build()

    # First two executions fail -> re-execute state; next two pass -> done.
    provider = StaticProvider({"q": [9.0, 9.0, 1.0, 1.0]})
    engine, clock, execution_id = await start_engine(strategy, {"static": provider})
    await clock.advance(4)
    report = await engine.wait(execution_id)
    assert report.path == ["canary", "canary", "done"]
    assert report.duration == 4.0
    # Routing is re-applied on re-entry.
    assert len(engine.controller.applied) == 3


async def test_max_visits_guards_against_infinite_loops():
    builder = StrategyBuilder("infinite")
    builder.service("svc", {"v": "h:1"})
    builder.state("spin").dwell(1).transitions([], ["spin"])
    builder.state("done").final()
    builder_strategy = builder
    with pytest.raises(Exception):
        builder_strategy.build()  # unreachable "done" is already invalid

    # Build a reachable-but-looping strategy instead: outcome always stays.
    builder = StrategyBuilder("infinite")
    builder.service("svc", {"v": "h:1"})
    builder.state("spin").dwell(1).transitions([100], ["spin", "done"])
    builder.state("done").final()
    strategy = builder.build()

    engine, clock, execution_id = await start_engine(strategy, max_visits=5)
    await clock.advance(10)
    report = await engine.wait(execution_id)
    assert report.status is ExecutionStatus.FAILED
    assert "5" in report.error


async def test_multiple_checks_weighted_outcome():
    builder = StrategyBuilder("weighted")
    builder.service("svc", {"stable": "h:1", "canary": "h:2"})
    # Passing check (weight 3) + failing check (weight 1): outcome 3.
    builder.state("s").route("svc", canary_split("stable", "canary", 5.0)).check(
        simple_basic_check("good", "good_q", "<5", 1, 2, provider="static"), weight=3.0
    ).check(
        simple_basic_check("bad", "bad_q", "<5", 1, 2, provider="static"), weight=1.0
    ).transitions([2], ["rollback", "done"])
    builder.state("done").route("svc", single_version("canary")).final()
    builder.state("rollback").route("svc", single_version("stable")).final(rollback=True)
    strategy = builder.build()

    provider = StaticProvider({"good_q": 1.0, "bad_q": 9.0})
    engine, clock, execution_id = await start_engine(strategy, {"static": provider})
    await clock.advance(2)
    report = await engine.wait(execution_id)
    assert report.visits[0].outcome == 3
    assert report.path == ["s", "done"]


async def test_parallel_executions_are_independent():
    engine = Engine(clock=VirtualClock())
    clock = engine.clock
    ids = [engine.enact(linear_strategy(f"s{i}")) for i in range(10)]
    await asyncio.sleep(0)
    await clock.advance(5)
    reports = await engine.wait_all()
    assert len(reports) == 10
    assert all(report.status is ExecutionStatus.COMPLETED for report in reports)
    assert {report.execution_id for report in reports} == set(ids)


async def test_engine_events_cover_lifecycle():
    engine, clock, execution_id = await start_engine(linear_strategy())
    await clock.advance(5)
    await engine.wait(execution_id)
    kinds = [event.kind for event in engine.bus.history]
    assert kinds[0] is EventKind.STRATEGY_STARTED
    assert kinds[-1] is EventKind.STRATEGY_COMPLETED
    assert kinds.count(EventKind.STATE_ENTERED) == 3
    assert kinds.count(EventKind.ROUTING_APPLIED) == 3


async def test_exclusive_claim_blocks_conflicting_strategies():
    from repro.core.engine import ServiceClaimedError

    engine = Engine(clock=VirtualClock())
    clock = engine.clock
    first = engine.enact(linear_strategy("team-a"), exclusive=True)
    # Another strategy touching the same service is rejected — exclusive
    # or not.
    with pytest.raises(ServiceClaimedError):
        engine.enact(linear_strategy("team-b"))
    with pytest.raises(ServiceClaimedError):
        engine.enact(linear_strategy("team-c"), exclusive=True)
    # A strategy over a different service is unaffected.
    builder = StrategyBuilder("other-service")
    builder.service("other", {"v": "h:9"})
    builder.state("s").route("other", single_version("v")).dwell(1).goto("done")
    builder.state("done").final()
    engine.enact(builder.build(), exclusive=True)
    # Once the claim holder finishes, the service frees up.
    await asyncio.sleep(0)
    await clock.advance(5)
    await engine.wait(first)
    second = engine.enact(linear_strategy("team-b"))
    await clock.advance(5)
    report = await engine.wait(second)
    assert report.status is ExecutionStatus.COMPLETED


async def test_cancelled_exclusive_execution_releases_claims():
    engine = Engine(clock=VirtualClock())
    execution_id = engine.enact(linear_strategy(), exclusive=True)
    await asyncio.sleep(0)
    await engine.cancel(execution_id)
    await asyncio.sleep(0)  # let the done-callback run
    engine.enact(linear_strategy("after-cancel"))  # must not raise


async def test_non_exclusive_strategies_still_share_services():
    engine = Engine(clock=VirtualClock())
    clock = engine.clock
    for i in range(3):
        engine.enact(linear_strategy(f"shared-{i}"))
    await asyncio.sleep(0)
    await clock.advance(5)
    reports = await engine.wait_all()
    assert all(r.status is ExecutionStatus.COMPLETED for r in reports)


async def test_delayed_enactment_waits_before_starting():
    engine = Engine(clock=VirtualClock())
    clock = engine.clock
    execution_id = engine.enact(linear_strategy(), delay=10.0)
    await asyncio.sleep(0)
    await clock.advance(9)
    execution = engine.execution(execution_id)
    assert execution.status is ExecutionStatus.PENDING
    assert engine.bus.history == []  # nothing published yet
    await clock.advance(1 + 5)  # delay elapses + the 5s strategy runs
    report = await engine.wait(execution_id)
    assert report.status is ExecutionStatus.COMPLETED
    assert report.started_at == 10.0


async def test_scheduled_execution_can_be_cancelled_while_pending():
    engine = Engine(clock=VirtualClock())
    execution_id = engine.enact(linear_strategy(), delay=100.0)
    await asyncio.sleep(0)
    await engine.cancel(execution_id)
    assert engine.execution(execution_id).status is ExecutionStatus.FAILED


async def test_negative_delay_rejected():
    engine = Engine(clock=VirtualClock())
    with pytest.raises(ValueError):
        engine.enact(linear_strategy(), delay=-1.0)


async def test_pause_holds_before_next_state():
    engine, clock, execution_id = await start_engine(linear_strategy())
    engine.pause(execution_id)
    # State a (2s) completes, then the execution holds before b.
    await clock.advance(2)
    execution = engine.execution(execution_id)
    assert execution.status is ExecutionStatus.PAUSED
    assert execution.visits[-1].state == "a"
    # Time passes; nothing further happens while paused.
    await clock.advance(10)
    assert execution.status is ExecutionStatus.PAUSED
    assert len(execution.visits) == 1
    # Resume: the remaining states run to completion.
    engine.resume(execution_id)
    await clock.advance(3)
    report = await engine.wait(execution_id)
    assert report.status is ExecutionStatus.COMPLETED
    assert report.path == ["a", "b", "done"]
    # The pause shows up as enactment delay.
    assert report.duration == 15.0
    kinds = [event.kind for event in engine.bus.history]
    assert EventKind.STRATEGY_PAUSED in kinds
    assert EventKind.STRATEGY_RESUMED in kinds


async def test_pause_resume_idempotent():
    engine, clock, execution_id = await start_engine(linear_strategy())
    execution = engine.execution(execution_id)
    engine.pause(execution_id)
    engine.pause(execution_id)
    assert execution.paused
    engine.resume(execution_id)
    engine.resume(execution_id)
    assert not execution.paused
    await clock.advance(5)
    report = await engine.wait(execution_id)
    assert report.status is ExecutionStatus.COMPLETED
    assert report.duration == 5.0


async def test_pause_unknown_execution_raises():
    engine = Engine(clock=VirtualClock())
    with pytest.raises(KeyError):
        engine.pause("ghost")


async def test_engine_cancel_execution():
    engine, clock, execution_id = await start_engine(linear_strategy())
    await engine.cancel(execution_id)
    execution = engine.execution(execution_id)
    assert execution.status is ExecutionStatus.FAILED


async def test_engine_unknown_execution_lookup():
    engine = Engine(clock=VirtualClock())
    with pytest.raises(KeyError):
        engine.execution("ghost")


async def test_engine_wait_all_empty():
    engine = Engine(clock=VirtualClock())
    assert await engine.wait_all() == []


async def test_engine_shutdown_cancels_and_closes_providers():
    closed = []

    class ClosingProvider(StaticProvider):
        async def close(self):
            closed.append(True)

    engine = Engine(clock=VirtualClock())
    engine.register_provider("static", ClosingProvider({"q": 1.0}))
    engine.enact(linear_strategy())
    await asyncio.sleep(0)
    await engine.shutdown()
    assert closed == [True]


async def test_check_events_published_per_execution():
    strategy = checked_strategy(None)
    engine, clock, execution_id = await start_engine(
        strategy, {"static": StaticProvider({"q": 1.0})}
    )
    await clock.advance(4)
    await engine.wait(execution_id)
    executed = engine.bus.of_kind(EventKind.CHECK_EXECUTED)
    assert len(executed) == 4
    completed = engine.bus.of_kind(EventKind.CHECK_COMPLETED)
    assert len(completed) == 1
    assert completed[0].data["aggregated"] == 4
    assert completed[0].data["mapped"] == 1
