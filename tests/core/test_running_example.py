"""The paper's running example (Figure 2) enacted end to end.

Builds the fastSearch strategy's automaton:

    a (1%) -> b (5%) -> [c (10%)] -> d (20%) -> e (A/B 50/50) -> f (100%)
    with rollback state g reachable from every phase and an exception
    check in state a.

and drives it through the happy path, the slow path via c, an
outcome-based rollback, and an exception-based rollback — checking both
the traversed path and the routing the proxies would have received.
"""

import asyncio

from repro.clock import VirtualClock
from repro.core import (
    BasicCheck,
    Engine,
    ExceptionCheck,
    ExecutionStatus,
    MetricCondition,
    OutputMapping,
    StrategyBuilder,
    Timer,
    ab_split,
    canary_split,
    simple_basic_check,
    single_version,
)
from repro.metrics import StaticProvider

#: Per-execution interval and repetitions for every check (compressed time).
INTERVAL, REPS = 1.0, 5

#: Maps a check's pass count (0..5) onto the Figure-2 outcome scale:
#: <=2 passes -> -5 (bad), 3..4 -> 4 (inconclusive), 5 -> 5 (good).
FIG2_MAPPING = OutputMapping.from_pairs([2, 4], [-5, 4, 5])


def phase_check(name: str, query: str) -> BasicCheck:
    return BasicCheck(
        name=name,
        condition=MetricCondition.simple(query, "<5", provider="static"),
        timer=Timer(INTERVAL, REPS),
        output=FIG2_MAPPING,
    )


def build_running_example() -> "Strategy":
    builder = StrategyBuilder("fastsearch-rollout")
    builder.service(
        "search", {"search": "127.0.0.1:9001", "fastSearch": "127.0.0.1:9002"}
    )
    # State a: 1% canary; basic check + exception check jumping to g.
    builder.state("a").route("search", canary_split("search", "fastSearch", 1.0)).check(
        phase_check("a-health", "a_q")
    ).check(
        ExceptionCheck(
            "a-guard",
            MetricCondition.simple("guard_q", "<5", provider="static"),
            Timer(INTERVAL, REPS),
            fallback_state="g",
        ),
        weight=0.0,  # the guard's count must not shift the outcome scale
    ).transitions([3], ["g", "b"])
    # State b: 5%; thresholds (3, 4) -> g / c / d.
    builder.state("b").route("search", canary_split("search", "fastSearch", 5.0)).check(
        phase_check("b-health", "b_q")
    ).transitions([3, 4], ["g", "c", "d"])
    # State c: 10%; slow ramp continues to d.
    builder.state("c").route("search", canary_split("search", "fastSearch", 10.0)).check(
        phase_check("c-health", "c_q")
    ).transitions([3], ["g", "d"])
    # State d: 20%.
    builder.state("d").route("search", canary_split("search", "fastSearch", 20.0)).check(
        phase_check("d-health", "d_q")
    ).transitions([3], ["g", "e"])
    # State e: sticky 50/50 A/B test; three checks, each mapping to 5 on
    # success, so a clean pass scores 15 (Figure 2: >= 15 -> f).
    state_e = builder.state("e").route("search", ab_split("search", "fastSearch"))
    for index in range(3):
        state_e.check(phase_check(f"e-metric-{index}", f"e{index}_q"))
    state_e.transitions([14], ["g", "f"])
    # Final states.
    builder.state("f").route("search", single_version("fastSearch")).final()
    builder.state("g").route("search", single_version("search")).final(rollback=True)
    return builder.build()


PASS = 1.0  # metric value passing "<5"
FAIL = 9.0


def provider(overrides=None):
    values = {
        "a_q": PASS,
        "guard_q": PASS,
        "b_q": PASS,
        "c_q": PASS,
        "d_q": PASS,
        "e0_q": PASS,
        "e1_q": PASS,
        "e2_q": PASS,
    }
    values.update(overrides or {})
    return StaticProvider(values)


async def enact(static_provider, advance=100):
    strategy = build_running_example()
    clock = VirtualClock()
    engine = Engine(clock=clock)
    engine.register_provider("static", static_provider)
    execution_id = engine.enact(strategy)
    await asyncio.sleep(0)
    await clock.advance(advance)
    report = await engine.wait(execution_id)
    return engine, report


async def test_happy_path_skips_c():
    engine, report = await enact(provider())
    assert report.status is ExecutionStatus.COMPLETED
    assert report.path == ["a", "b", "d", "e", "f"]
    # Final routing: 100% fastSearch.
    final_config = engine.controller.latest_for("search")
    assert final_config.splits[0].version == "fastSearch"
    assert final_config.splits[0].percentage == 100.0


async def test_inconclusive_b_takes_slow_path_through_c():
    # 4/5 passes in b maps to 4 -> range (3, 4] -> state c.
    engine, report = await enact(provider({"b_q": [PASS, FAIL, PASS, PASS, PASS]}))
    assert report.status is ExecutionStatus.COMPLETED
    assert report.path == ["a", "b", "c", "d", "e", "f"]


async def test_bad_canary_metrics_roll_back():
    engine, report = await enact(provider({"d_q": FAIL}))
    assert report.status is ExecutionStatus.ROLLED_BACK
    assert report.path == ["a", "b", "d", "g"]
    final_config = engine.controller.latest_for("search")
    assert final_config.splits[0].version == "search"


async def test_ab_test_loss_rolls_back():
    # One of the three A/B checks failing scores 10 -> <= 14 -> g.
    engine, report = await enact(provider({"e1_q": FAIL}))
    assert report.status is ExecutionStatus.ROLLED_BACK
    assert report.path == ["a", "b", "d", "e", "g"]


async def test_exception_in_a_jumps_directly_to_g():
    engine, report = await enact(provider({"guard_q": [PASS, FAIL]}))
    assert report.status is ExecutionStatus.ROLLED_BACK
    assert report.path == ["a", "g"]
    assert report.visits[0].via_exception
    # Preempted at the guard's second execution.
    assert report.duration == 2 * INTERVAL


async def test_routing_sequence_matches_figure_1_percentages():
    engine, report = await enact(provider())
    fast_search_shares = []
    for _, config, _ in engine.controller.applied:
        share = next(
            (s.percentage for s in config.splits if s.version == "fastSearch"), 0.0
        )
        fast_search_shares.append(share)
    assert fast_search_shares == [1.0, 5.0, 20.0, 50.0, 100.0]


async def test_ab_state_uses_sticky_sessions():
    engine, report = await enact(provider())
    ab_configs = [
        config
        for _, config, _ in engine.controller.applied
        if len(config.splits) == 2 and config.splits[0].percentage == 50.0
    ]
    assert len(ab_configs) == 1
    assert ab_configs[0].sticky
