"""Concurrent fan-out of multi-query conditions.

A condition with several metric queries fetches them with
``asyncio.gather``, so one execution costs ~max(query latencies) instead of
their sum.  Verified against the virtual clock with a provider that sleeps
before answering.
"""

import asyncio

import pytest

from repro.clock import VirtualClock
from repro.core import CheckError, MetricCondition, MetricQuery
from repro.metrics import StaticProvider


class SlowStaticProvider(StaticProvider):
    """A StaticProvider that sleeps (on the given clock) before answering."""

    def __init__(self, values, clock, latencies):
        super().__init__(values)
        self.clock = clock
        self._latencies = latencies

    async def query(self, query: str) -> float | None:
        await self.clock.sleep(self._latencies.get(query, 0.0))
        return await super().query(query)


def _three_query_condition() -> MetricCondition:
    return MetricCondition(
        queries=(
            MetricQuery("a", "qa", "static"),
            MetricQuery("b", "qb", "static"),
            MetricQuery("c", "qc", "static"),
        ),
        predicate=lambda values: all(v is not None for v in values.values()),
    )


async def test_multi_query_condition_completes_in_max_latency():
    clock = VirtualClock()
    provider = SlowStaticProvider(
        {"qa": 1.0, "qb": 2.0, "qc": 3.0},
        clock,
        latencies={"qa": 1.0, "qb": 2.0, "qc": 3.0},
    )
    task = asyncio.create_task(_three_query_condition().evaluate({"static": provider}))
    # Strictly less than the slowest query: not done yet.
    await clock.advance(2.5)
    assert not task.done()
    # At max(latencies) = 3.0 all three fetches have resolved.  A
    # sequential fetch loop would need sum(latencies) = 6.0 virtual
    # seconds and three separate advances to get there.
    await clock.advance(0.5)
    assert task.done()
    assert task.result() == 1
    assert clock.now() == 3.0
    assert sorted(provider.query_log) == ["qa", "qb", "qc"]


async def test_fanout_is_not_sequential_sum():
    clock = VirtualClock()
    provider = SlowStaticProvider(
        {"qa": 1.0, "qb": 1.0, "qc": 1.0},
        clock,
        latencies={"qa": 1.0, "qb": 1.0, "qc": 1.0},
    )
    task = asyncio.create_task(_three_query_condition().evaluate({"static": provider}))
    # One advance of the common latency finishes the whole condition:
    # all three sleeps were pending concurrently.
    await clock.advance(1.0)
    assert task.done()
    assert task.result() == 1


async def test_fanout_missing_provider_raises_before_fetching():
    clock = VirtualClock()
    provider = SlowStaticProvider({"qa": 1.0}, clock, latencies={})
    condition = MetricCondition(
        queries=(MetricQuery("a", "qa", "static"), MetricQuery("b", "qb", "nope")),
        predicate=lambda values: True,
    )
    with pytest.raises(CheckError):
        await condition.evaluate({"static": provider})
    assert provider.query_log == []  # resolution failed before any fetch


async def test_fanout_provider_error_counts_as_no_data():
    clock = VirtualClock()
    # "qb" has no canned value -> StaticProvider raises ProviderError.
    provider = SlowStaticProvider({"qa": 1.0, "qc": 2.0}, clock, latencies={})
    condition = MetricCondition(
        queries=(
            MetricQuery("a", "qa", "static"),
            MetricQuery("b", "qb", "static"),
            MetricQuery("c", "qc", "static"),
        ),
        predicate=lambda values: values["b"] is None and values["a"] == 1.0,
    )
    assert await condition.evaluate({"static": provider}) == 1
