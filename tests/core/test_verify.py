"""Tests for static strategy verification."""

from repro.core import (
    Severity,
    StrategyBuilder,
    ab_split,
    canary_split,
    simple_basic_check,
    single_version,
    strategy_graph,
    verify_strategy,
)


def rule_names(findings):
    return {finding.rule for finding in findings}


def make_clean_strategy():
    builder = StrategyBuilder("clean")
    builder.service("svc", {"stable": "h:1", "canary": "h:2"})
    builder.state("canary").route("svc", canary_split("stable", "canary", 5.0)).check(
        simple_basic_check("c", "q", "<5", 1, 3)
    ).transitions([0.5], ["rollback", "done"])
    builder.state("done").route("svc", single_version("canary")).final()
    builder.state("rollback").route("svc", single_version("stable")).final(
        rollback=True
    )
    return builder.build()


def test_clean_strategy_has_no_errors_or_warnings():
    findings = verify_strategy(make_clean_strategy())
    assert all(f.severity is Severity.INFO for f in findings), findings


def test_strategy_graph_structure():
    graph = strategy_graph(make_clean_strategy().automaton)
    assert set(graph.nodes) == {"canary", "done", "rollback"}
    assert graph.has_edge("canary", "done")
    assert graph.has_edge("canary", "rollback")
    assert graph.nodes["rollback"]["rollback"]


def test_missing_rollback_state_is_an_error():
    builder = StrategyBuilder("no-rollback")
    builder.service("svc", {"stable": "h:1", "canary": "h:2"})
    builder.state("canary").route("svc", canary_split("stable", "canary", 5.0)).check(
        simple_basic_check("c", "q", "<5", 1, 3)
    ).transitions([0.5], ["done", "done"])
    builder.state("done").route("svc", single_version("canary")).final()
    strategy = builder.build()
    findings = verify_strategy(strategy)
    errors = [f for f in findings if f.severity is Severity.ERROR]
    assert len(errors) == 1
    assert errors[0].rule == "no-rollback"


def test_checked_state_that_cannot_reach_rollback_is_an_error():
    builder = StrategyBuilder("partial-rollback")
    builder.service("svc", {"stable": "h:1", "canary": "h:2"})
    # First state can reach the rollback; second cannot.
    builder.state("early").route("svc", canary_split("stable", "canary", 5.0)).check(
        simple_basic_check("c1", "q", "<5", 1, 2)
    ).transitions([0.5], ["rollback", "late"])
    builder.state("late").route("svc", canary_split("stable", "canary", 50.0)).check(
        simple_basic_check("c2", "q", "<5", 1, 2)
    ).transitions([0.5], ["done", "done"])
    builder.state("done").route("svc", single_version("canary")).final()
    builder.state("rollback").route("svc", single_version("stable")).final(
        rollback=True
    )
    strategy = builder.build()
    findings = verify_strategy(strategy)
    errors = [f for f in findings if f.rule == "no-rollback"]
    assert [f.state for f in errors] == ["late"]


def test_live_lock_cycle_detected():
    builder = StrategyBuilder("loops")
    builder.service("svc", {"v": "h:1"})
    # ping <-> pong loop whose only exit edge goes back into the loop;
    # "done" is reachable only on paper via start's second edge.
    builder.state("start").dwell(1).transitions([0], ["ping", "done"])
    builder.state("ping").dwell(1).goto("pong")
    builder.state("pong").dwell(1).goto("ping")
    builder.state("done").final()
    strategy = builder.build()
    findings = verify_strategy(strategy)
    assert "possible-live-lock" in rule_names(findings)


def test_self_loop_with_exit_is_not_a_live_lock():
    builder = StrategyBuilder("retry")
    builder.service("svc", {"v": "h:1"})
    builder.state("test").dwell(1).transitions([0], ["test", "done"])
    builder.state("done").final()
    strategy = builder.build()
    findings = verify_strategy(strategy)
    assert "possible-live-lock" not in rule_names(findings)


def test_unroutable_version_warning():
    builder = StrategyBuilder("unused")
    builder.service("svc", {"stable": "h:1", "ghost": "h:2"})
    builder.state("s").route("svc", single_version("stable")).dwell(1).goto("done")
    builder.state("done").final()
    strategy = builder.build()
    findings = verify_strategy(strategy)
    warnings = [f for f in findings if f.rule == "unroutable-version"]
    assert len(warnings) == 1
    assert "ghost" in warnings[0].message


def test_unmonitored_exposure_warning():
    builder = StrategyBuilder("blind")
    builder.service("svc", {"stable": "h:1", "canary": "h:2"})
    builder.state("blind-canary").route(
        "svc", canary_split("stable", "canary", 25.0)
    ).dwell(5).goto("done")
    builder.state("done").route("svc", single_version("stable")).final()
    strategy = builder.build()
    findings = verify_strategy(strategy)
    assert "unmonitored-exposure" in rule_names(findings)


def test_sticky_discontinuity_info():
    builder = StrategyBuilder("churny")
    builder.service("svc", {"a": "h:1", "b": "h:2"})
    builder.state("ab").route("svc", ab_split("a", "b")).dwell(5).goto("shuffle")
    builder.state("shuffle").route("svc", canary_split("a", "b", 30.0)).dwell(5).goto(
        "done"
    )
    builder.state("done").route("svc", single_version("a")).final()
    strategy = builder.build()
    findings = verify_strategy(strategy)
    infos = [f for f in findings if f.rule == "sticky-discontinuity"]
    assert len(infos) == 1
    assert infos[0].state == "ab"


def test_finding_str_rendering():
    findings = verify_strategy(make_clean_strategy())
    for finding in findings:
        assert finding.rule in str(finding)


def test_paper_release_strategy_known_findings():
    """The verifier surfaces a real property of the paper's experiment
    strategy (section 5.1.2): once the A/B test starts, a rollback is no
    longer reachable — the winner is always rolled out.  The gradual
    rollout steps also run without checks (as in the experiment)."""
    from repro.analysis import release_strategy

    strategy = release_strategy(
        {"product": "h:1", "product_a": "h:2", "product_b": "h:3"}
    )
    findings = verify_strategy(strategy)
    errors = [f for f in findings if f.severity is Severity.ERROR]
    assert [f.state for f in errors] == ["ab-test"]
    assert errors[0].rule == "no-rollback"
    assert "unmonitored-exposure" in rule_names(findings)
