"""Unit tests for the automaton structure and the transition function δ."""

import pytest

from repro.core import (
    Automaton,
    ExceptionCheck,
    MetricCondition,
    ModelError,
    State,
    Timer,
    Transitions,
    single_version,
)


def exception_check(fallback: str) -> ExceptionCheck:
    return ExceptionCheck(
        name="guard",
        condition=MetricCondition.simple("q", "<5"),
        timer=Timer(1, 5),
        fallback_state=fallback,
    )


# -- Transitions -----------------------------------------------------------------


def test_transitions_targets_must_match_ranges():
    with pytest.raises(ModelError):
        Transitions.build([3.0], ["only-one"])
    Transitions.build([3.0], ["low", "high"])


def test_transitions_reject_unsorted_duplicate_and_nan_thresholds():
    """Malformed threshold lists die at construction, not at enactment."""
    from repro.core import OutcomeError

    with pytest.raises(OutcomeError, match="strictly increasing"):
        Transitions.build([5.0, 3.0], ["a", "b", "c"])
    with pytest.raises(OutcomeError, match="duplicate"):
        Transitions.build([3.0, 3.0], ["a", "b", "c"])
    with pytest.raises(OutcomeError, match="finite"):
        Transitions.build([float("nan"), 1.0], ["a", "b", "c"])


def test_transitions_next_state_fig2_state_b():
    # State b: thresholds (3, 4): <=3 -> g, (3,4] -> c, >4 -> d.
    transitions = Transitions.build([3.0, 4.0], ["g", "c", "d"])
    assert transitions.next_state(2) == "g"
    assert transitions.next_state(3) == "g"
    assert transitions.next_state(4) == "c"
    assert transitions.next_state(5) == "d"


def test_transitions_always():
    transitions = Transitions.always("next")
    assert transitions.next_state(-100) == "next"
    assert transitions.next_state(100) == "next"


# -- State -----------------------------------------------------------------------


def test_state_weights_default_to_one_per_check():
    state = State(name="s", checks=[exception_check("g")], transitions=Transitions.always("g"))
    assert state.weights == [1.0]


def test_state_weight_mismatch_rejected():
    state = State(
        name="s",
        checks=[exception_check("g")],
        weights=[1.0, 2.0],
        transitions=Transitions.always("g"),
    )
    with pytest.raises(ModelError):
        state.validate()


def test_final_state_must_not_have_transitions():
    state = State(name="s", final=True, transitions=Transitions.always("x"))
    with pytest.raises(ModelError):
        state.validate()


def test_nonfinal_state_needs_transitions():
    state = State(name="s", duration=1.0)
    with pytest.raises(ModelError):
        state.validate()


def test_state_without_checks_needs_duration():
    state = State(name="s", transitions=Transitions.always("x"))
    with pytest.raises(ModelError):
        state.validate()


def test_state_nominal_duration_is_max_of_spans():
    state = State(
        name="s",
        checks=[
            ExceptionCheck("a", MetricCondition.simple("q", "<5"), Timer(5, 12), "g"),
            ExceptionCheck("b", MetricCondition.simple("q", "<5"), Timer(10, 3), "g"),
        ],
        duration=45.0,
        transitions=Transitions.always("g"),
    )
    assert state.nominal_duration == 60.0  # max(60, 30, 45)
    assert State(name="f", final=True).nominal_duration == 0.0


def test_state_routing_validated():
    config = single_version("v")
    config.splits[0] = type(config.splits[0])("v", 50.0)  # now sums to 50
    state = State(
        name="s", duration=1.0, routing={"svc": config}, transitions=Transitions.always("x")
    )
    with pytest.raises(ModelError):
        state.validate()


# -- Automaton --------------------------------------------------------------------


def build_linear_automaton() -> Automaton:
    automaton = Automaton()
    automaton.add_state(State(name="a", duration=1.0, transitions=Transitions.always("b")))
    automaton.add_state(State(name="b", duration=1.0, transitions=Transitions.always("done")))
    automaton.add_state(State(name="done", final=True))
    return automaton


def test_automaton_first_state_is_start():
    automaton = build_linear_automaton()
    assert automaton.start == "a"
    automaton.validate()


def test_automaton_final_states():
    assert build_linear_automaton().final_states == {"done"}


def test_automaton_duplicate_state_rejected():
    automaton = build_linear_automaton()
    with pytest.raises(ModelError):
        automaton.add_state(State(name="a", final=True))


def test_automaton_unknown_state_lookup():
    with pytest.raises(ModelError):
        build_linear_automaton().state("ghost")


def test_validate_requires_final_state():
    automaton = Automaton()
    automaton.add_state(State(name="a", duration=1.0, transitions=Transitions.always("a")))
    with pytest.raises(ModelError):
        automaton.validate()


def test_validate_rejects_unknown_transition_target():
    automaton = Automaton()
    automaton.add_state(State(name="a", duration=1.0, transitions=Transitions.always("ghost")))
    automaton.add_state(State(name="done", final=True))
    with pytest.raises(ModelError):
        automaton.validate()


def test_validate_rejects_unknown_fallback_state():
    automaton = Automaton()
    automaton.add_state(
        State(
            name="a",
            checks=[exception_check("ghost")],
            transitions=Transitions.always("done"),
        )
    )
    automaton.add_state(State(name="done", final=True))
    with pytest.raises(ModelError):
        automaton.validate()


def test_validate_rejects_unreachable_states():
    automaton = build_linear_automaton()
    automaton.add_state(State(name="island", final=True))
    with pytest.raises(ModelError):
        automaton.validate()


def test_fallback_targets_count_as_reachable():
    automaton = Automaton()
    automaton.add_state(
        State(
            name="a",
            checks=[exception_check("rollback")],
            transitions=Transitions.always("done"),
        )
    )
    automaton.add_state(State(name="done", final=True))
    automaton.add_state(State(name="rollback", final=True, rollback=True))
    automaton.validate()


def test_self_loop_is_allowed():
    automaton = Automaton()
    automaton.add_state(
        State(
            name="a",
            duration=1.0,
            transitions=Transitions.build([0.0], ["a", "done"]),
        )
    )
    automaton.add_state(State(name="done", final=True))
    automaton.validate()


def test_nominal_path_duration():
    automaton = build_linear_automaton()
    assert automaton.nominal_path_duration(["a", "b", "done"]) == 2.0


def test_empty_automaton_invalid():
    with pytest.raises(ModelError):
        Automaton().validate()


def test_missing_start_state_invalid():
    automaton = Automaton()
    automaton.add_state(State(name="done", final=True))
    automaton.start = "ghost"
    with pytest.raises(ModelError):
        automaton.validate()
