"""Tests for user selection functions η."""

import pytest

from repro.core import (
    AndSelector,
    AttributeSelector,
    PercentageSelector,
    PredicateSelector,
    SelectionError,
    VersionAssigner,
    ab_split,
    canary_split,
    distribution,
    stable_fraction,
)

USERS = [f"user-{i}" for i in range(2000)]


def test_stable_fraction_deterministic_and_uniformish():
    values = [stable_fraction(user, "seed") for user in USERS]
    assert values == [stable_fraction(user, "seed") for user in USERS]
    assert all(0.0 <= v < 1.0 for v in values)
    mean = sum(values) / len(values)
    assert 0.45 < mean < 0.55


def test_stable_fraction_differs_per_seed():
    assert stable_fraction("u", "a") != stable_fraction("u", "b")


def test_percentage_selector_selects_about_right_share():
    selector = PercentageSelector(10.0)
    selected = sum(selector.matches(user) for user in USERS)
    assert 150 <= selected <= 250  # 10% of 2000 = 200 ± sampling noise


def test_percentage_selector_bounds():
    PercentageSelector(0.0)
    PercentageSelector(100.0)
    with pytest.raises(SelectionError):
        PercentageSelector(101.0)


def test_attribute_selector():
    selector = AttributeSelector("country", ("US",))
    assert selector.matches("u", {"country": "US"})
    assert not selector.matches("u", {"country": "CH"})
    assert not selector.matches("u", {})
    assert not selector.matches("u", None)


def test_and_selector_paper_example_us_canary():
    # "assign 5% of US users to the fastSearch canary"
    selector = AndSelector((AttributeSelector("country", ("US",)), PercentageSelector(5.0)))
    us_selected = sum(selector.matches(user, {"country": "US"}) for user in USERS)
    ch_selected = sum(selector.matches(user, {"country": "CH"}) for user in USERS)
    assert 50 <= us_selected <= 150  # ~5% of 2000
    assert ch_selected == 0


def test_predicate_selector():
    selector = PredicateSelector(lambda user, attrs: user.endswith("7"))
    assert selector.matches("user-7")
    assert not selector.matches("user-8")


def test_assigner_split_shares_converge():
    assigner = VersionAssigner(canary_split("search", "fastSearch", 5.0))
    shares = distribution(assigner, USERS)
    assert shares["search"] == pytest.approx(95.0, abs=2.0)
    assert shares["fastSearch"] == pytest.approx(5.0, abs=2.0)


def test_assigner_is_deterministic_without_sticky():
    assigner = VersionAssigner(canary_split("a", "b", 50.0))
    first = [assigner.assign(user) for user in USERS[:100]]
    second = [assigner.assign(user) for user in USERS[:100]]
    assert first == second


def test_assigner_sticky_memoizes():
    assigner = VersionAssigner(ab_split("a", "b"))
    version = assigner.assign("user-1")
    assert assigner.assignments["user-1"] == version
    assert assigner.assign("user-1") == version


def test_assigner_eligibility_falls_back_to_stable():
    # Only US users are eligible for the canary bucket.
    assigner = VersionAssigner(
        canary_split("search", "fastSearch", 50.0),
        eligibility=AttributeSelector("country", ("US",)),
    )
    non_us = [assigner.assign(user, {"country": "CH"}) for user in USERS[:200]]
    assert set(non_us) == {"search"}
    us = [assigner.assign(user, {"country": "US"}) for user in USERS[:200]]
    assert "fastSearch" in set(us)


def test_assigner_seed_changes_bucketing():
    config = canary_split("a", "b", 50.0)
    first = VersionAssigner(config, seed="s1")
    second = VersionAssigner(config, seed="s2")
    assignments_1 = [first.assign(user) for user in USERS[:200]]
    assignments_2 = [second.assign(user) for user in USERS[:200]]
    assert assignments_1 != assignments_2
