"""Unit tests for strategies, services, and versions."""

import pytest

from repro.core import (
    Automaton,
    ModelError,
    Service,
    ServiceVersion,
    State,
    Strategy,
    Transitions,
    canary_split,
)


def make_service():
    service = Service("search")
    service.add_version(ServiceVersion("search", "127.0.0.1:9001"))
    service.add_version(ServiceVersion("fastSearch", "127.0.0.1:9002"))
    return service


def test_version_requires_name_and_endpoint():
    with pytest.raises(ModelError):
        ServiceVersion("", "127.0.0.1:1")
    with pytest.raises(ModelError):
        ServiceVersion("v", "")


def test_service_version_lookup():
    service = make_service()
    assert service.version("fastSearch").endpoint == "127.0.0.1:9002"
    assert "search" in service
    assert "missing" not in service
    with pytest.raises(ModelError):
        service.version("missing")


def test_service_rejects_duplicate_versions():
    service = make_service()
    with pytest.raises(ModelError):
        service.add_version(ServiceVersion("search", "other:1"))


def test_strategy_service_registry():
    strategy = Strategy("s")
    strategy.add_service(make_service())
    assert strategy.service("search").name == "search"
    assert strategy.resolve_version("search", "fastSearch").endpoint == "127.0.0.1:9002"
    with pytest.raises(ModelError):
        strategy.add_service(make_service())
    with pytest.raises(ModelError):
        strategy.service("other")


def test_validate_requires_automaton():
    strategy = Strategy("s")
    with pytest.raises(ModelError):
        strategy.validate()


def test_validate_catches_unknown_version_in_routing():
    strategy = Strategy("s")
    strategy.add_service(make_service())
    automaton = Automaton()
    automaton.add_state(
        State(
            name="a",
            routing={"search": canary_split("search", "unknownVersion", 5.0)},
            duration=1.0,
            transitions=Transitions.always("done"),
        )
    )
    automaton.add_state(State(name="done", final=True))
    strategy.automaton = automaton
    with pytest.raises(ModelError):
        strategy.validate()


def test_validate_catches_unknown_service_in_routing():
    strategy = Strategy("s")
    strategy.add_service(make_service())
    automaton = Automaton()
    automaton.add_state(
        State(
            name="a",
            routing={"ghost": canary_split("search", "fastSearch", 5.0)},
            duration=1.0,
            transitions=Transitions.always("done"),
        )
    )
    automaton.add_state(State(name="done", final=True))
    strategy.automaton = automaton
    with pytest.raises(ModelError):
        strategy.validate()


def test_validate_accepts_wellformed_strategy():
    strategy = Strategy("s")
    strategy.add_service(make_service())
    automaton = Automaton()
    automaton.add_state(
        State(
            name="a",
            routing={"search": canary_split("search", "fastSearch", 5.0)},
            duration=1.0,
            transitions=Transitions.always("done"),
        )
    )
    automaton.add_state(State(name="done", final=True))
    strategy.automaton = automaton
    strategy.validate()
