"""Unit tests for the shared check scheduler.

Behavioral coverage for :class:`repro.core.scheduler.CheckScheduler` —
timer fan-in (many checks, one parked sleep), cancellation/preemption,
completion callbacks, and driver lifecycle.  Equivalence with the per-task
reference runner is property-tested in
``tests/property/test_scheduler_equivalence.py``.
"""

import asyncio

import pytest

from repro.clock import VirtualClock
from repro.core import (
    CheckScheduler,
    ExceptionCheck,
    ExceptionTriggered,
    MetricCondition,
    Timer,
    simple_basic_check,
)
from repro.metrics import StaticProvider


def make_check(name="c", interval=5.0, repetitions=4, query="q"):
    return simple_basic_check(
        name, query, "<5", interval=interval, repetitions=repetitions,
        provider="static",
    )


async def test_many_idle_checks_park_one_timer():
    """N scheduled checks between ticks cost one clock sleeper, not N."""
    clock = VirtualClock()
    providers = {"static": StaticProvider({"q": 1.0})}
    scheduler = CheckScheduler(clock)
    futures = [
        scheduler.schedule(make_check(name=f"c{i}"), providers)
        for i in range(50)
    ]
    await asyncio.sleep(0)
    await asyncio.sleep(0)
    assert scheduler.pending_checks == 50
    assert clock.pending_sleepers == 1  # the driver's single parked sleep
    await clock.advance(20.0)
    results = await asyncio.gather(*futures)
    assert all(result.mapped == 1 for result in results)
    assert scheduler.pending_checks == 0


async def test_interleaved_intervals_tick_in_deadline_order():
    clock = VirtualClock()
    provider = StaticProvider({"fast": 1.0, "slow": 1.0})
    providers = {"static": provider}
    scheduler = CheckScheduler(clock)
    fast = scheduler.schedule(
        make_check("fast", interval=2.0, repetitions=3, query="fast"), providers
    )
    slow = scheduler.schedule(
        make_check("slow", interval=5.0, repetitions=1, query="slow"), providers
    )
    await asyncio.sleep(0)
    await clock.advance(6.0)
    fast_result, slow_result = await asyncio.gather(fast, slow)
    assert [e.at for e in fast_result.executions] == [2.0, 4.0, 6.0]
    assert [e.at for e in slow_result.executions] == [5.0]
    assert provider.query_log == ["fast", "fast", "slow", "fast"]


async def test_cancelling_future_deschedules_check():
    clock = VirtualClock()
    providers = {"static": StaticProvider({"q": 1.0})}
    scheduler = CheckScheduler(clock)
    doomed = scheduler.schedule(make_check("doomed"), providers)
    survivor = scheduler.schedule(make_check("survivor"), providers)
    await asyncio.sleep(0)
    doomed.cancel()
    await asyncio.sleep(0)
    assert scheduler.pending_checks == 1
    await clock.advance(20.0)
    result = await survivor
    assert result.mapped == 1
    with pytest.raises(asyncio.CancelledError):
        await doomed


async def test_exception_check_fails_only_its_own_future():
    clock = VirtualClock()
    providers = {"static": StaticProvider({"bad": 99.0, "q": 1.0})}
    scheduler = CheckScheduler(clock)
    tripwire = scheduler.schedule(
        ExceptionCheck(
            name="tripwire",
            condition=MetricCondition.simple("bad", "<5", provider="static"),
            timer=Timer(3.0, 10),
            fallback_state="rollback",
        ),
        providers,
    )
    steady = scheduler.schedule(make_check("steady"), providers)
    await asyncio.sleep(0)
    await clock.advance(20.0)
    with pytest.raises(ExceptionTriggered) as exc_info:
        await tripwire
    assert exc_info.value.at == 3.0
    assert (await steady).mapped == 1


async def test_on_complete_runs_before_future_resolves():
    clock = VirtualClock()
    providers = {"static": StaticProvider({"q": 1.0})}
    scheduler = CheckScheduler(clock)
    order = []

    async def on_complete(result):
        order.append(("callback", result.mapped))

    future = scheduler.schedule(
        make_check(interval=1.0, repetitions=1), providers, on_complete=on_complete
    )
    future.add_done_callback(lambda _: order.append(("resolved",)))
    await asyncio.sleep(0)
    await clock.advance(1.0)
    await future
    assert order == [("callback", 1), ("resolved",)]


async def test_driver_exits_when_idle_and_restarts_on_schedule():
    clock = VirtualClock()
    providers = {"static": StaticProvider({"q": 1.0})}
    scheduler = CheckScheduler(clock)
    first = scheduler.schedule(make_check(interval=1.0, repetitions=1), providers)
    await asyncio.sleep(0)
    await clock.advance(1.0)
    await first
    for _ in range(5):  # let the driver observe the empty heap and return
        await asyncio.sleep(0)
    assert scheduler._driver.done()
    assert clock.pending_sleepers == 0  # nothing parked while idle
    second = scheduler.schedule(make_check(interval=2.0, repetitions=2), providers)
    await asyncio.sleep(0)
    await clock.advance(4.0)
    assert (await second).aggregated == 2
    await scheduler.close()


async def test_close_cancels_everything():
    clock = VirtualClock()
    providers = {"static": StaticProvider({"q": 1.0})}
    scheduler = CheckScheduler(clock)
    futures = [scheduler.schedule(make_check(f"c{i}"), providers) for i in range(3)]
    await asyncio.sleep(0)
    await scheduler.close()
    assert scheduler.pending_checks == 0
    for future in futures:
        assert future.cancelled()


async def test_observer_failure_fails_that_check():
    clock = VirtualClock()
    providers = {"static": StaticProvider({"q": 1.0})}
    scheduler = CheckScheduler(clock)

    def observer(check, execution):
        raise RuntimeError("observer broke")

    broken = scheduler.schedule(make_check(), providers, observer=observer)
    healthy = scheduler.schedule(make_check("ok"), providers)
    await asyncio.sleep(0)
    await clock.advance(20.0)
    with pytest.raises(RuntimeError):
        await broken
    assert (await healthy).mapped == 1


async def test_same_deadline_checks_dispatch_as_one_wave():
    """Checks sharing a deadline drain from the heap as a single wave."""
    clock = VirtualClock()
    providers = {"static": StaticProvider({"q": 1.0})}
    scheduler = CheckScheduler(clock)
    futures = [
        scheduler.schedule(make_check(name=f"c{i}", repetitions=2), providers)
        for i in range(8)
    ]
    await asyncio.sleep(0)
    await clock.advance(5.0)
    assert scheduler.tick_waves >= 1
    assert scheduler.last_wave_size == 8
    await clock.advance(5.0)
    results = await asyncio.gather(*futures)
    assert all(result.mapped == 1 for result in results)


async def test_schedule_subscribes_queries_to_plan_aware_providers():
    """Arming a check pre-registers its queries with provider plans."""
    from repro.metrics import LocalPrometheusProvider, MetricStore, planner_for

    clock = VirtualClock(start=0.0)
    store = MetricStore()
    for t in range(30):
        store.record("hits_total", float(t), float(t), {"instance": "a"})
    provider = LocalPrometheusProvider(store, clock=clock)
    scheduler = CheckScheduler(clock)
    check = simple_basic_check(
        "c", "rate(hits_total[10s])", "<5", interval=5.0, repetitions=1,
        provider="prom",
    )
    roots_before = planner_for(store).cache_info()["roots"]
    future = scheduler.schedule(check, {"prom": provider})
    assert planner_for(store).cache_info()["roots"] == roots_before + 1
    await asyncio.sleep(0)
    await clock.advance(5.0)
    await future
