"""Unit tests for thresholds, ranges, output mappings, validators."""

import pytest

from repro.core import OutcomeError, OutputMapping, ThresholdRanges, Validator, weighted_outcome


# -- ThresholdRanges -----------------------------------------------------------


def test_thresholds_form_n_plus_one_ranges():
    ranges = ThresholdRanges((2.0, 4.0))
    assert ranges.range_count == 3


def test_index_of_respects_half_open_ranges():
    # Paper: thresholds ⟨2, 4⟩ form -inf < x <= 2, 2 < x <= 4, 4 < x <= inf.
    ranges = ThresholdRanges((2.0, 4.0))
    assert ranges.index_of(-10) == 0
    assert ranges.index_of(2) == 0
    assert ranges.index_of(2.1) == 1
    assert ranges.index_of(4) == 1
    assert ranges.index_of(4.001) == 2


def test_empty_thresholds_single_range():
    ranges = ThresholdRanges(())
    assert ranges.range_count == 1
    assert ranges.index_of(-1e9) == 0
    assert ranges.index_of(1e9) == 0


def test_thresholds_must_strictly_increase():
    with pytest.raises(OutcomeError):
        ThresholdRanges((3.0, 3.0))
    with pytest.raises(OutcomeError):
        ThresholdRanges((5.0, 1.0))


def test_thresholds_must_be_finite():
    # NaN defeats ordering comparisons (nan >= x is always False), so the
    # sortedness check alone would accept ⟨nan, 1⟩ and make index_of
    # unstable; the explicit finiteness check must reject it first.
    with pytest.raises(OutcomeError):
        ThresholdRanges((float("nan"), 1.0))
    with pytest.raises(OutcomeError):
        ThresholdRanges((float("nan"),))
    with pytest.raises(OutcomeError):
        ThresholdRanges((float("inf"),))


def test_duplicate_and_unsorted_thresholds_have_distinct_errors():
    with pytest.raises(OutcomeError, match="duplicate threshold"):
        ThresholdRanges((3.0, 3.0))
    with pytest.raises(OutcomeError, match="strictly increasing"):
        ThresholdRanges((5.0, 1.0))


def test_describe_ranges():
    ranges = ThresholdRanges((2.0, 4.0))
    assert ranges.describe(0) == "(-inf, 2.0]"
    assert ranges.describe(1) == "(2.0, 4.0]"
    assert ranges.describe(2) == "(4.0, +inf)"
    assert ThresholdRanges(()).describe(0) == "(-inf, +inf)"
    with pytest.raises(OutcomeError):
        ranges.describe(3)


# -- OutputMapping -------------------------------------------------------------


def test_paper_example_mapping():
    # Thresholds 75/95 with mappings (-inf,75,-5), (75,95,4), (95,inf,5).
    mapping = OutputMapping.from_pairs([75, 95], [-5, 4, 5])
    assert mapping.map(60) == -5
    assert mapping.map(75) == -5
    assert mapping.map(80) == 4
    assert mapping.map(95) == 4
    assert mapping.map(96) == 5


def test_mapping_requires_matching_result_count():
    with pytest.raises(OutcomeError):
        OutputMapping.from_pairs([75, 95], [1, 2])


def test_boolean_mapping_requires_full_threshold():
    # Simplified DSL: threshold 12 of 12 executions -> pass only at 12.
    mapping = OutputMapping.boolean(12)
    assert mapping.map(12) == 1
    assert mapping.map(11) == 0
    assert mapping.map(0) == 0


def test_boolean_mapping_custom_values():
    mapping = OutputMapping.boolean(5, success=10, failure=-10)
    assert mapping.map(5) == 10
    assert mapping.map(4) == -10


# -- Validator -----------------------------------------------------------------


@pytest.mark.parametrize(
    "expression,value,expected",
    [
        ("<5", 4.9, 1),
        ("<5", 5.0, 0),
        ("<=5", 5.0, 1),
        (">150", 151, 1),
        (">150", 150, 0),
        (">=0.99", 0.99, 1),
        ("==3", 3.0, 1),
        ("==3", 3.1, 0),
        ("!=3", 4, 1),
        ("< 5", 4, 1),  # whitespace tolerated
        ("<-2", -3, 1),  # negative bounds
    ],
)
def test_validator_comparisons(expression, value, expected):
    assert Validator.parse(expression).check(value) == expected


def test_validator_none_always_fails():
    assert Validator.parse("<5").check(None) == 0


def test_validator_nan_always_fails():
    assert Validator.parse("<5").check(float("nan")) == 0


def test_validator_rejects_garbage():
    for bad in ["", "5", "<<5", "< five", "=5", "<5 extra"]:
        with pytest.raises(OutcomeError):
            Validator.parse(bad)


def test_validator_str():
    assert str(Validator.parse("< 5")) == "<5"


# -- weighted_outcome -----------------------------------------------------------


def test_weighted_outcome_linear_combination():
    assert weighted_outcome([4, 5, -5], [1.0, 1.0, 1.0]) == 4
    assert weighted_outcome([1, 0], [3.0, 10.0]) == 3


def test_weighted_outcome_rounds_to_int():
    assert weighted_outcome([1, 1], [0.5, 0.2]) == 1  # 0.7 -> 1
    assert weighted_outcome([1], [0.4]) == 0


def test_weighted_outcome_length_mismatch():
    with pytest.raises(OutcomeError):
        weighted_outcome([1, 2], [1.0])
