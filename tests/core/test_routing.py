"""Unit tests for dynamic routing configurations."""

import pytest

from repro.core import (
    FilterKind,
    RoutingConfig,
    RoutingError,
    ShadowRoute,
    TrafficSplit,
    ab_split,
    canary_split,
    single_version,
)


def test_traffic_split_bounds():
    TrafficSplit("v", 0.0)
    TrafficSplit("v", 100.0)
    with pytest.raises(RoutingError):
        TrafficSplit("v", -1.0)
    with pytest.raises(RoutingError):
        TrafficSplit("v", 100.1)


def test_shadow_route_bounds():
    ShadowRoute("a", "b", 100.0)
    with pytest.raises(RoutingError):
        ShadowRoute("a", "b", 101.0)


def test_validate_requires_splits():
    with pytest.raises(RoutingError):
        RoutingConfig().validate()


def test_validate_requires_sum_100():
    config = RoutingConfig(splits=[TrafficSplit("a", 60.0), TrafficSplit("b", 30.0)])
    with pytest.raises(RoutingError):
        config.validate()


def test_validate_rejects_duplicate_versions():
    config = RoutingConfig(splits=[TrafficSplit("a", 50.0), TrafficSplit("a", 50.0)])
    with pytest.raises(RoutingError):
        config.validate()


def test_single_version_helper():
    config = single_version("stable")
    config.validate()
    assert config.splits == [TrafficSplit("stable", 100.0)]
    assert not config.sticky


def test_canary_split_helper():
    config = canary_split("search", "fastSearch", 5.0)
    config.validate()
    assert config.splits[0] == TrafficSplit("search", 95.0)
    assert config.splits[1] == TrafficSplit("fastSearch", 5.0)


def test_ab_split_helper_is_sticky_50_50():
    config = ab_split("product_a", "product_b")
    config.validate()
    assert config.sticky
    assert all(split.percentage == 50.0 for split in config.splits)


def test_wire_round_trip():
    config = RoutingConfig(
        splits=[TrafficSplit("a", 95.0), TrafficSplit("b", 5.0)],
        shadows=[ShadowRoute("a", "b", 100.0)],
        sticky=True,
        filter_kind=FilterKind.HEADER,
        header_name="X-Group",
    )
    restored = RoutingConfig.from_wire(config.to_wire())
    assert restored.splits == config.splits
    assert restored.shadows == config.shadows
    assert restored.sticky
    assert restored.filter_kind is FilterKind.HEADER
    assert restored.header_name == "X-Group"


def test_from_wire_defaults():
    config = RoutingConfig.from_wire(
        {"splits": [{"version": "v", "percentage": 100}]}
    )
    assert not config.sticky
    assert config.filter_kind is FilterKind.COOKIE
    assert config.header_name == "X-Bifrost-Group"


def test_from_wire_rejects_bad_payloads():
    with pytest.raises(RoutingError):
        RoutingConfig.from_wire({"splits": [{"percentage": 100}]})  # no version
    with pytest.raises(RoutingError):
        RoutingConfig.from_wire({"splits": [{"version": "v", "percentage": 90}]})
    with pytest.raises(RoutingError):
        RoutingConfig.from_wire(
            {"splits": [{"version": "v", "percentage": 100}], "filter": "telepathy"}
        )
