"""Tests for the engine event bus."""

import asyncio

from repro.core import Event, EventBus, EventKind


def make_event(kind=EventKind.STATE_ENTERED, **data):
    return Event(kind=kind, strategy="s", at=1.0, data=data)


async def test_publish_reaches_sync_and_async_subscribers():
    bus = EventBus()
    seen_sync, seen_async = [], []
    bus.subscribe(lambda event: seen_sync.append(event.kind))

    async def async_subscriber(event):
        seen_async.append(event.kind)

    bus.subscribe(async_subscriber)
    await bus.publish(make_event())
    assert seen_sync == [EventKind.STATE_ENTERED]
    assert seen_async == [EventKind.STATE_ENTERED]


async def test_subscriber_exception_does_not_break_publishing():
    bus = EventBus()
    seen = []

    def broken(event):
        raise RuntimeError("dashboard crashed")

    bus.subscribe(broken)
    bus.subscribe(lambda event: seen.append(event))
    await bus.publish(make_event())
    assert len(seen) == 1


async def test_unsubscribe():
    bus = EventBus()
    seen = []
    callback = lambda event: seen.append(event)  # noqa: E731
    bus.subscribe(callback)
    bus.unsubscribe(callback)
    bus.unsubscribe(callback)  # idempotent
    await bus.publish(make_event())
    assert seen == []


async def test_queue_receives_events():
    bus = EventBus()
    queue = bus.queue()
    await bus.publish(make_event(state="a"))
    event = queue.get_nowait()
    assert event.data == {"state": "a"}


async def test_full_queue_drops_oldest():
    bus = EventBus(queue_size=2)
    queue = bus.queue()
    await bus.publish(make_event(n=1))
    await bus.publish(make_event(n=2))
    await bus.publish(make_event(n=3))
    assert queue.get_nowait().data == {"n": 2}
    assert queue.get_nowait().data == {"n": 3}


async def test_drop_queue_stops_delivery():
    bus = EventBus()
    queue = bus.queue()
    bus.drop_queue(queue)
    await bus.publish(make_event())
    assert queue.empty()


async def test_history_and_of_kind():
    bus = EventBus()
    await bus.publish(make_event(EventKind.STATE_ENTERED))
    await bus.publish(make_event(EventKind.CHECK_EXECUTED))
    await bus.publish(make_event(EventKind.STATE_ENTERED))
    assert len(bus.history) == 3
    assert len(bus.of_kind(EventKind.STATE_ENTERED)) == 2
    assert len(bus.of_kind(EventKind.STRATEGY_FAILED)) == 0


async def test_jsonl_writer_persists_and_replays(tmp_path):
    from repro.core import JsonlEventWriter

    path = tmp_path / "journal.jsonl"
    bus = EventBus()
    writer = JsonlEventWriter(path)
    bus.subscribe(writer)
    await bus.publish(make_event(EventKind.STRATEGY_STARTED))
    await bus.publish(make_event(EventKind.STATE_ENTERED, state="canary"))
    writer.close()
    replayed = JsonlEventWriter.read(path)
    assert [e.kind for e in replayed] == [
        EventKind.STRATEGY_STARTED,
        EventKind.STATE_ENTERED,
    ]
    assert replayed[1].data == {"state": "canary"}


async def test_jsonl_writer_appends_across_instances(tmp_path):
    from repro.core import JsonlEventWriter

    path = tmp_path / "journal.jsonl"
    first = JsonlEventWriter(path)
    first(make_event(EventKind.STRATEGY_STARTED))
    first.close()
    second = JsonlEventWriter(path)
    second(make_event(EventKind.STRATEGY_COMPLETED))
    second.close()
    assert len(JsonlEventWriter.read(path)) == 2


def test_event_json_round_trip():
    event = Event(
        kind=EventKind.STATE_COMPLETED,
        strategy="fastsearch",
        at=12.5,
        data={"outcome": 4, "next": "c"},
    )
    restored = Event.from_json(event.to_json())
    assert restored == event
