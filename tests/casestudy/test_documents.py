"""Tests for the document store (engine, queries, HTTP facade, driver)."""

import pytest

from repro.casestudy import DocumentStore, MongoClient, MongoServer, QueryError
from repro.httpcore import HttpClient


# -- engine ------------------------------------------------------------------


def test_insert_assigns_ids():
    store = DocumentStore()
    products = store.collection("products")
    first = products.insert({"name": "tv"})
    second = products.insert({"name": "laptop"})
    assert first != second
    assert products.count() == 2


def test_find_equality():
    products = DocumentStore().collection("products")
    products.insert({"name": "tv", "price": 100})
    products.insert({"name": "laptop", "price": 900})
    assert len(products.find({"name": "tv"})) == 1
    assert products.find({"name": "ghost"}) == []
    assert len(products.find()) == 2


def test_find_operators():
    c = DocumentStore().collection("c")
    for price in [10, 50, 100, 500]:
        c.insert({"price": price})
    assert len(c.find({"price": {"$gt": 50}})) == 2
    assert len(c.find({"price": {"$gte": 50}})) == 3
    assert len(c.find({"price": {"$lt": 50}})) == 1
    assert len(c.find({"price": {"$lte": 50}})) == 2
    assert len(c.find({"price": {"$ne": 50}})) == 3
    assert len(c.find({"price": {"$in": [10, 500]}})) == 2


def test_find_contains_case_insensitive():
    c = DocumentStore().collection("c")
    c.insert({"name": "Acme Laptop 3"})
    c.insert({"name": "Globex TV"})
    assert len(c.find({"name": {"$contains": "laptop"}})) == 1
    assert len(c.find({"name": {"$contains": "ACME"}})) == 1


def test_find_missing_field_fails_comparisons():
    c = DocumentStore().collection("c")
    c.insert({"other": 1})
    assert c.find({"price": {"$gt": 0}}) == []
    assert c.find({"name": {"$contains": "x"}}) == []


def test_unknown_operator_raises():
    c = DocumentStore().collection("c")
    c.insert({"a": 1})
    with pytest.raises(QueryError):
        c.find({"a": {"$regex": "x"}})


def test_find_limit_and_find_one():
    c = DocumentStore().collection("c")
    for i in range(10):
        c.insert({"i": i})
    assert len(c.find(limit=3)) == 3
    assert c.find_one({"i": 7})["i"] == 7
    assert c.find_one({"i": 99}) is None


def test_update_and_delete():
    c = DocumentStore().collection("c")
    c.insert({"sku": "a", "stock": 1})
    c.insert({"sku": "b", "stock": 1})
    assert c.update({"sku": "a"}, {"stock": 5}) == 1
    assert c.find_one({"sku": "a"})["stock"] == 5
    assert c.delete({"sku": "b"}) == 1
    assert c.count() == 1


def test_find_returns_copies():
    c = DocumentStore().collection("c")
    c.insert({"x": 1})
    found = c.find_one()
    found["x"] = 999
    assert c.find_one()["x"] == 1


def test_store_collections():
    store = DocumentStore()
    store.collection("a").insert({})
    store.collection("b")
    assert store.names == ["a", "b"]
    store.drop("a")
    assert store.names == ["b"]


# -- HTTP facade + driver ----------------------------------------------------


async def test_driver_round_trip():
    server = MongoServer()
    await server.start()
    client = HttpClient()
    mongo = MongoClient(server.address, client)
    try:
        doc_id = await mongo.insert("products", {"name": "tv", "price": 100})
        assert doc_id == 1
        found = await mongo.find("products", {"name": {"$contains": "tv"}})
        assert len(found) == 1
        one = await mongo.find_one("products", {"name": "tv"})
        assert one["price"] == 100
        assert await mongo.update("products", {"name": "tv"}, {"price": 90}) == 1
        assert (await mongo.find_one("products"))["price"] == 90
        assert await mongo.count("products") == 1
    finally:
        await client.close()
        await server.stop()


async def test_server_rejects_bad_operations():
    server = MongoServer()
    await server.start()
    client = HttpClient()
    try:
        response = await client.post(
            f"http://{server.address}/db/c/conjure", json_body={}
        )
        assert response.status == 404
        # Operators are only evaluated against existing documents.
        await client.post(
            f"http://{server.address}/db/c/insert", json_body={"document": {"a": 1}}
        )
        response = await client.post(
            f"http://{server.address}/db/c/find",
            json_body={"query": {"a": {"$regex": "x"}}},
        )
        assert response.status == 400
        response = await client.post(
            f"http://{server.address}/db/c/find", json_body=[1, 2]
        )
        assert response.status == 400
    finally:
        await client.close()
        await server.stop()


async def test_server_health_and_operation_counter():
    server = MongoServer()
    await server.start()
    client = HttpClient()
    mongo = MongoClient(server.address, client)
    try:
        await mongo.insert("products", {})
        await mongo.find("products")
        assert server.operations == 2
        response = await client.get(f"http://{server.address}/healthz")
        assert response.json()["collections"] == ["products"]
    finally:
        await client.close()
        await server.stop()


async def test_op_delay_slows_operations():
    import time

    server = MongoServer(op_delay=0.02)
    await server.start()
    client = HttpClient()
    mongo = MongoClient(server.address, client)
    try:
        started = time.monotonic()
        await mongo.find("c")
        assert time.monotonic() - started >= 0.015
    finally:
        await client.close()
        await server.stop()
