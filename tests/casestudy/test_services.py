"""Tests for the individual case-study services (auth, search, product)."""

import pytest

from repro.casestudy import (
    AuthService,
    MongoClient,
    MongoServer,
    ProductService,
    SearchService,
    fast_search,
    load_fixtures,
    product_variant,
)
from repro.core import VersionAssigner, ab_split
from repro.httpcore import HttpClient


# Async pytest fixtures are unavailable offline; each test materializes
# the stack through this helper and tears it down in its finally block.
async def make_stack():
    mongo = MongoServer()
    await mongo.start()
    auth = AuthService(mongo_address=mongo.address)
    await auth.start()
    client = HttpClient()
    await load_fixtures(MongoClient(mongo.address, client), products=10, users=3)
    return mongo, auth, client


async def close_stack(mongo, auth, client, *extra):
    for server in extra:
        await server.stop()
    await client.close()
    await auth.stop()
    await mongo.stop()


# -- auth ----------------------------------------------------------------------


async def test_login_with_valid_credentials():
    mongo, auth, client = await make_stack()
    try:
        response = await client.post(
            f"http://{auth.address}/auth/login",
            json_body={"email": "user0@example.com", "password": "secret-0"},
        )
        assert response.status == 200
        assert "token" in response.json()
        assert auth.logins_total.value == 1
    finally:
        await close_stack(mongo, auth, client)


async def test_login_rejects_bad_credentials():
    mongo, auth, client = await make_stack()
    try:
        response = await client.post(
            f"http://{auth.address}/auth/login",
            json_body={"email": "user0@example.com", "password": "wrong"},
        )
        assert response.status == 401
        response = await client.post(
            f"http://{auth.address}/auth/login", json_body={"email": "x"}
        )
        assert response.status == 400
    finally:
        await close_stack(mongo, auth, client)


async def test_validate_token_lifecycle():
    mongo, auth, client = await make_stack()
    try:
        login = await client.post(
            f"http://{auth.address}/auth/login",
            json_body={"email": "user1@example.com", "password": "secret-1"},
        )
        token = login.json()["token"]
        response = await client.get(
            f"http://{auth.address}/auth/validate",
            headers={"Authorization": f"Bearer {token}"},
        )
        assert response.json()["email"] == "user1@example.com"
        response = await client.get(
            f"http://{auth.address}/auth/validate?token={token}"
        )
        assert response.status == 200
        response = await client.get(
            f"http://{auth.address}/auth/validate?token=bogus"
        )
        assert response.status == 401
        response = await client.get(f"http://{auth.address}/auth/validate")
        assert response.status == 401
    finally:
        await close_stack(mongo, auth, client)


async def test_login_assigns_ab_group_when_configured():
    mongo, auth, client = await make_stack()
    auth.group_assigner = VersionAssigner(ab_split("product_a", "product_b"))
    try:
        response = await client.post(
            f"http://{auth.address}/auth/login",
            json_body={"email": "user2@example.com", "password": "secret-2"},
        )
        group = response.json()["group"]
        assert group in ("product_a", "product_b")
        # Same user logs in again: same group (sticky η).
        again = await client.post(
            f"http://{auth.address}/auth/login",
            json_body={"email": "user2@example.com", "password": "secret-2"},
        )
        assert again.json()["group"] == group
    finally:
        await close_stack(mongo, auth, client)


# -- search ----------------------------------------------------------------------


async def test_search_finds_products():
    mongo, auth, client = await make_stack()
    search = SearchService(mongo.address)
    await search.start()
    try:
        response = await client.get(f"http://{search.address}/search?q=Laptop")
        body = response.json()
        assert response.status == 200
        assert body["version"] == "search"
        assert all("name" in r for r in body["results"])
        assert search.searches_total.value == 1
    finally:
        await close_stack(mongo, auth, client, search)


async def test_search_404_counted():
    mongo, auth, client = await make_stack()
    search = SearchService(mongo.address)
    await search.start()
    try:
        response = await client.get(f"http://{search.address}/search?q=zzzzz")
        assert response.status == 404
        assert search.not_found_total.value == 1
    finally:
        await close_stack(mongo, auth, client, search)


async def test_search_requires_query():
    mongo, auth, client = await make_stack()
    search = SearchService(mongo.address)
    await search.start()
    try:
        response = await client.get(f"http://{search.address}/search")
        assert response.status == 400
    finally:
        await close_stack(mongo, auth, client, search)


async def test_fast_search_ranks_by_relevance():
    mongo, auth, client = await make_stack()
    fast = fast_search(mongo.address)
    await fast.start()
    try:
        response = await client.get(f"http://{fast.address}/search?q=tv")
        body = response.json()
        assert body["version"] == "fastSearch"
        prices = [r["price"] for r in body["results"]]
        # Non-prefix matches are ordered by ascending price.
        assert prices == sorted(prices)
    finally:
        await close_stack(mongo, auth, client, fast)


async def test_search_falls_back_to_category():
    mongo, auth, client = await make_stack()
    search = SearchService(mongo.address)
    await search.start()
    try:
        # "camera" appears in categories; fixture names say "Camera N".
        response = await client.get(f"http://{search.address}/search?q=camera")
        assert response.status == 200
    finally:
        await close_stack(mongo, auth, client, search)


# -- product -----------------------------------------------------------------------


async def product_stack(version="product", **kwargs):
    mongo, auth, client = await make_stack()
    search = SearchService(mongo.address)
    await search.start()
    if version == "product":
        product = ProductService(mongo.address, auth.address, search.address, **kwargs)
    else:
        product = product_variant(
            version, mongo.address, auth.address, search.address, **kwargs
        )
    await product.start()
    token = auth.issue_token("user0@example.com")
    return mongo, auth, client, search, product, {"Authorization": f"Bearer {token}"}


async def test_product_requires_authorization():
    mongo, auth, client, search, product, headers = await product_stack()
    try:
        response = await client.get(f"http://{product.address}/products")
        assert response.status == 401
        assert product.auth_failures.value == 1
        response = await client.get(
            f"http://{product.address}/products", headers=headers
        )
        assert response.status == 200
    finally:
        await close_stack(mongo, auth, client, search, product)


async def test_product_list_includes_buyers():
    mongo, auth, client, search, product, headers = await product_stack()
    try:
        response = await client.get(
            f"http://{product.address}/products", headers=headers
        )
        products = response.json()["products"]
        assert len(products) == 10
        assert all("buyers" in p for p in products)
    finally:
        await close_stack(mongo, auth, client, search, product)


async def test_product_details_small_body():
    mongo, auth, client, search, product, headers = await product_stack()
    try:
        response = await client.get(
            f"http://{product.address}/products/SKU-0001", headers=headers
        )
        body = response.json()
        assert body["product"]["sku"] == "SKU-0001"
        assert "buyers" not in body["product"]
        response = await client.get(
            f"http://{product.address}/products/SKU-9999", headers=headers
        )
        assert response.status == 404
    finally:
        await close_stack(mongo, auth, client, search, product)


async def test_buy_writes_to_database_and_counts_sale():
    mongo, auth, client, search, product, headers = await product_stack()
    try:
        response = await client.post(
            f"http://{product.address}/products/SKU-0002/buy", headers=headers
        )
        assert response.status == 204
        assert response.body == b""  # Buy: no response body (paper 5.1.2)
        assert product.sales_total.value == 1
        stored = await MongoClient(mongo.address, client).find_one(
            "products", {"sku": "SKU-0002"}
        )
        assert stored["buyers"] == ["user0@example.com"]
    finally:
        await close_stack(mongo, auth, client, search, product)


async def test_buy_unknown_product_404():
    mongo, auth, client, search, product, headers = await product_stack()
    try:
        response = await client.post(
            f"http://{product.address}/products/NOPE/buy", headers=headers
        )
        assert response.status == 404
        assert product.sales_total.value == 0
    finally:
        await close_stack(mongo, auth, client, search, product)


async def test_product_search_delegates_to_search_service():
    mongo, auth, client, search, product, headers = await product_stack()
    try:
        response = await client.get(
            f"http://{product.address}/search?q=Laptop", headers=headers
        )
        assert response.status == 200
        assert response.json()["version"] == "search"
        assert search.searches_total.value == 1
    finally:
        await close_stack(mongo, auth, client, search, product)


async def test_variant_upsell_increases_sales():
    import random

    mongo, auth, client, search, product, headers = await product_stack(
        "product_b", rng=random.Random(1), upsell_rate=1.0
    )
    try:
        await client.post(
            f"http://{product.address}/products/SKU-0001/buy", headers=headers
        )
        assert product.buys_total.value == 1
        assert product.sales_total.value == 2  # item + guaranteed accessory
    finally:
        await close_stack(mongo, auth, client, search, product)


async def test_metrics_endpoint_exposes_instrumentation():
    mongo, auth, client, search, product, headers = await product_stack()
    try:
        await client.get(f"http://{product.address}/products", headers=headers)
        response = await client.get(f"http://{product.address}/metrics")
        text = response.body.decode()
        assert "http_requests_total" in text
        assert 'path="/products"' in text
        assert "http_request_seconds_bucket" in text
    finally:
        await close_stack(mongo, auth, client, search, product)
