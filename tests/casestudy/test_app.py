"""Integration tests for the assembled case-study application."""

from repro.casestudy import build_case_study
from repro.core import ab_split, canary_split
from repro.httpcore import HttpClient


async def test_baseline_topology_serves_all_request_types():
    app = await build_case_study(proxies=False, variants=False, metrics=False)
    client = HttpClient()
    try:
        token = await app.issue_token()
        headers = {"Authorization": f"Bearer {token}"}
        entry = app.entry_address

        response = await client.get(f"http://{entry}/")
        assert response.status == 200
        assert b"Shop" in response.body

        response = await client.get(f"http://{entry}/products", headers=headers)
        assert response.status == 200
        assert len(response.json()["products"]) == 40

        response = await client.get(
            f"http://{entry}/products/SKU-0003", headers=headers
        )
        assert response.json()["product"]["sku"] == "SKU-0003"

        response = await client.post(
            f"http://{entry}/products/SKU-0003/buy", headers=headers
        )
        assert response.status == 204

        response = await client.get(f"http://{entry}/search?q=Laptop", headers=headers)
        assert response.status == 200
        assert response.json()["version"] == "search"
    finally:
        await client.close()
        await app.stop()


async def test_proxied_topology_defaults_to_stable_versions():
    app = await build_case_study(metrics=False)
    client = HttpClient()
    try:
        token = await app.issue_token()
        headers = {"Authorization": f"Bearer {token}"}
        response = await client.get(
            f"http://{app.entry_address}/products", headers=headers
        )
        assert response.status == 200
        assert response.json()["version"] == "product"
        # The request went through the Bifrost proxy in passthrough mode.
        assert response.headers.get("X-Bifrost-Version") == "default"
    finally:
        await client.close()
        await app.stop()


async def test_proxied_search_rollout_switches_versions():
    app = await build_case_study(metrics=False)
    client = HttpClient()
    try:
        token = await app.issue_token()
        headers = {"Authorization": f"Bearer {token}"}
        app.search_proxy.apply_config(
            canary_split("search", "fastSearch", 100.0), app.endpoints("search")
        )
        response = await client.get(
            f"http://{app.entry_address}/search?q=Laptop", headers=headers
        )
        assert response.json()["version"] == "fastSearch"
    finally:
        await client.close()
        await app.stop()


async def test_ab_test_between_product_variants():
    app = await build_case_study(metrics=False)
    client = HttpClient()
    try:
        token = await app.issue_token()
        headers = {"Authorization": f"Bearer {token}"}
        app.product_proxy.apply_config(
            ab_split("product_a", "product_b"), app.endpoints("product")
        )
        seen = set()
        for _ in range(40):
            response = await client.get(
                f"http://{app.entry_address}/products", headers=headers
            )
            seen.add(response.json()["version"])
        assert seen == {"product_a", "product_b"}
    finally:
        await client.close()
        await app.stop()


async def test_metrics_server_scrapes_service_registries():
    app = await build_case_study(scrape_interval=0.05)
    client = HttpClient()
    try:
        token = await app.issue_token()
        headers = {"Authorization": f"Bearer {token}"}
        for _ in range(3):
            await client.get(f"http://{app.entry_address}/products", headers=headers)
        import asyncio

        await asyncio.sleep(0.2)  # let at least one scrape pass
        response = await client.get(
            f"http://{app.metrics.address}/api/v1/query"
            '?query=http_requests_total{instance="product"}'.replace('"', "%22")
        )
        payload = response.json()
        assert payload["status"] == "success"
        assert payload["data"]["value"] >= 3
    finally:
        await client.close()
        await app.stop()


async def test_deployment_reflects_running_topology():
    app = await build_case_study(metrics=False)
    try:
        deployment = app.deployment()
        assert deployment.service("product").proxy == app.product_proxy.address
        assert deployment.service("search").stable == "search"
        assert set(deployment.service("product").versions) == {
            "product",
            "product_a",
            "product_b",
        }
    finally:
        await app.stop()


async def test_auth_reachable_through_gateway():
    app = await build_case_study(proxies=False, variants=False, metrics=False)
    client = HttpClient()
    try:
        response = await client.post(
            f"http://{app.entry_address}/auth/login",
            json_body={"email": "user0@example.com", "password": "secret-0"},
        )
        assert response.status == 200
        assert "token" in response.json()
    finally:
        await client.close()
        await app.stop()
