"""Tests for the instrumented-service base (metrics, queueing model)."""

import asyncio

from repro.casestudy import InstrumentedService
from repro.httpcore import HttpClient, Response


class Worker(InstrumentedService):
    def __init__(self, **kwargs):
        super().__init__(name="worker", **kwargs)

        @self.router.get("/work")
        async def work(request):
            await self.simulate_processing()
            return Response.from_json({"ok": True})

        @self.router.get("/boom")
        async def boom(request):
            raise RuntimeError("exploded")


async def test_requests_counted_by_path_and_code():
    service = Worker()
    async with service, HttpClient() as client:
        await client.get(f"http://{service.address}/work")
        await client.get(f"http://{service.address}/work")
        await client.get(f"http://{service.address}/missing")
        points = {
            (p.labels.get("path"), p.labels.get("code")): p.value
            for p in service.registry.collect()
            if p.name == "http_requests_total"
        }
        assert points[("/work", "200")] == 2.0
        assert points[("/missing", "404")] == 1.0


async def test_errors_counted_on_5xx():
    service = Worker()
    async with service, HttpClient() as client:
        await client.get(f"http://{service.address}/boom")
        # handle_error + instrumentation both see the 500; the counter
        # reflects at least one error and the latency histogram grew.
        assert service.request_errors.value >= 1
        assert service.request_seconds.count >= 1


async def test_metrics_and_health_not_instrumented():
    service = Worker()
    async with service, HttpClient() as client:
        await client.get(f"http://{service.address}/metrics")
        await client.get(f"http://{service.address}/healthz")
        points = [
            p
            for p in service.registry.collect()
            if p.name == "http_requests_total"
        ]
        assert points == [] or all(
            p.labels.get("path") not in ("/metrics", "/healthz") for p in points
        )


async def test_processing_delay_applied():
    import time

    service = Worker(processing_delay=0.03)
    async with service, HttpClient() as client:
        started = time.monotonic()
        await client.get(f"http://{service.address}/work")
        assert time.monotonic() - started >= 0.025
        assert service.processing_seconds.count == 1


async def test_queue_factor_inflates_concurrent_latency():
    """With queueing, 4 concurrent requests are slower per-request than a
    lone request — the load-splitting mechanism of the A/B phase."""
    service = Worker(processing_delay=0.02, queue_factor=1.0)
    async with service, HttpClient() as client:

        async def timed():
            import time

            t0 = time.monotonic()
            await client.get(f"http://{service.address}/work")
            return time.monotonic() - t0

        solo = await timed()
        concurrent = await asyncio.gather(*[timed() for _ in range(4)])
        assert max(concurrent) > solo * 1.5


async def test_inflight_returns_to_zero():
    service = Worker(processing_delay=0.01)
    async with service, HttpClient() as client:
        await asyncio.gather(
            *[client.get(f"http://{service.address}/work") for _ in range(5)]
        )
        assert service.inflight == 0
