"""Tests for the workload mix and the constant-throughput generator."""

import pytest

from repro.httpcore import HttpServer, Response
from repro.loadgen import LoadGenerator, WorkloadMix


def make_mix(**kwargs):
    return WorkloadMix(skus=["SKU-0001", "SKU-0002"], **kwargs)


def test_mix_produces_all_four_labels():
    mix = make_mix()
    labels = {mix.next_request().label for _ in range(200)}
    assert labels == {"buy", "details", "products", "search"}


def test_mix_respects_weights():
    mix = make_mix(weights={"buy": 0.0, "details": 0.0, "products": 0.0, "search": 1.0})
    assert all(mix.next_request().label == "search" for _ in range(50))


def test_mix_weight_skew():
    mix = make_mix(weights={"buy": 9.0, "details": 1.0, "products": 0.0, "search": 0.0})
    buys = sum(mix.next_request().label == "buy" for _ in range(1000))
    assert 850 <= buys <= 950


def test_mix_is_deterministic_per_seed():
    first = [make_mix(seed=7).next_request().path for _ in range(1)]
    second = [make_mix(seed=7).next_request().path for _ in range(1)]
    assert first == second


def test_mix_request_shapes():
    mix = make_mix()
    for _ in range(100):
        spec = mix.next_request()
        if spec.label == "buy":
            assert spec.method == "POST"
            assert spec.path.endswith("/buy")
        elif spec.label == "details":
            assert spec.method == "GET"
            assert spec.path.startswith("/products/")
        elif spec.label == "products":
            assert spec.path == "/products"
        else:
            assert spec.path.startswith("/search?q=")


def test_mix_validation():
    with pytest.raises(ValueError):
        WorkloadMix(skus=[])
    with pytest.raises(ValueError):
        make_mix(weights={"nonsense": 1.0})
    with pytest.raises(ValueError):
        make_mix(weights={"buy": 0.0, "details": 0.0, "products": 0.0, "search": 0.0})


async def test_generator_achieves_rate_and_records():
    server = HttpServer()
    server.router.set_fallback(lambda r: _ok())
    await server.start()
    try:
        generator = LoadGenerator(server.address, make_mix(), rate=200.0)
        log = await generator.run(duration=0.5)
        await generator.close()
        # 200 rps over 0.5 s: allow generous scheduling slack.
        assert 60 <= len(log) <= 140
        assert log.error_count == 0
        assert all(s.latency > 0 for s in log.samples)
    finally:
        await server.stop()


async def test_generator_records_failures_as_status_zero():
    generator = LoadGenerator("127.0.0.1:1", make_mix(), rate=100.0)
    log = await generator.run(duration=0.1)
    await generator.close()
    assert len(log) > 0
    assert all(s.status == 0 for s in log.samples)
    assert log.error_count == len(log)


async def test_generator_ramp_up_fires_fewer_requests():
    server = HttpServer()
    server.router.set_fallback(lambda r: _ok())
    await server.start()
    try:
        flat = LoadGenerator(server.address, make_mix(), rate=200.0)
        await flat.run(duration=0.4)
        await flat.close()
        ramped = LoadGenerator(server.address, make_mix(), rate=200.0)
        await ramped.run(duration=0.0001, ramp_up=0.4)
        await ramped.close()
        # The ramp integrates to half the steady-state request count.
        assert len(ramped.log) < len(flat.log)
    finally:
        await server.stop()


async def test_generator_in_flight_cap_drops_excess():
    import asyncio

    server = HttpServer()

    async def slow(request):
        await asyncio.sleep(1.0)
        return Response.text("late")

    server.router.set_fallback(slow)
    await server.start()
    try:
        generator = LoadGenerator(
            server.address, make_mix(), rate=500.0, max_in_flight=5
        )
        task = asyncio.ensure_future(generator.run(duration=0.2))
        await asyncio.sleep(0.25)
        assert generator.dropped > 0
        await server.stop()  # release the in-flight requests
        await task
        await generator.close()
    finally:
        if server.running:
            await server.stop()


def test_generator_rate_validation():
    with pytest.raises(ValueError):
        LoadGenerator("h:1", make_mix(), rate=0)


async def _ok():
    return Response.text("ok")
