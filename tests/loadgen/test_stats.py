"""Tests for load-test statistics (the Table-1/Figure-6 machinery)."""

import math

import pytest

from repro.loadgen import PhaseTracker, SampleLog, SummaryStats, percentile


def test_summary_stats_basic():
    stats = SummaryStats.of([1.0, 2.0, 3.0, 4.0])
    assert stats.count == 4
    assert stats.mean == 2.5
    assert stats.minimum == 1.0
    assert stats.maximum == 4.0
    assert stats.median == 2.5
    assert stats.sd == pytest.approx(1.2909944, rel=1e-6)


def test_summary_stats_odd_median():
    assert SummaryStats.of([5.0, 1.0, 3.0]).median == 3.0


def test_summary_stats_single_value():
    stats = SummaryStats.of([2.0])
    assert stats.sd == 0.0
    assert stats.median == 2.0


def test_summary_stats_empty():
    stats = SummaryStats.of([])
    assert stats.count == 0
    assert math.isnan(stats.mean)


def test_summary_scaled_to_milliseconds():
    stats = SummaryStats.of([0.010, 0.020]).scaled(1000)
    assert stats.mean == pytest.approx(15.0)
    assert stats.count == 2


def test_percentile_nearest_rank():
    values = [float(v) for v in range(1, 101)]
    assert percentile(values, 50) == 50.0
    assert percentile(values, 95) == 95.0
    assert percentile(values, 100) == 100.0
    assert percentile(values, 0) == 1.0
    with pytest.raises(ValueError):
        percentile(values, 101)
    assert math.isnan(percentile([], 50))


def test_sample_log_record_and_slices():
    log = SampleLog()
    for t in range(10):
        log.record(at=float(t), latency=0.01 * t, label="details", status=200)
    assert len(log) == 10
    window = log.between(2.0, 5.0)
    assert [s.at for s in window] == [3.0, 4.0, 5.0]


def test_latencies_filters():
    log = SampleLog()
    log.record(1.0, 0.010, "buy", 204)
    log.record(2.0, 0.020, "search", 200)
    log.record(3.0, 0.500, "search", 500)
    log.record(4.0, 0.900, "buy", 0)
    assert log.latencies() == [0.010, 0.020]
    assert log.latencies(label="search") == [0.020]
    assert log.latencies(successful_only=False) == [0.010, 0.020, 0.500, 0.900]
    assert log.latencies(start=1.0) == [0.020]
    assert log.error_count == 2


def test_moving_average_window():
    log = SampleLog()
    # Latency ramps with time: samples at t=1..6 with latency = t*10ms.
    for t in range(1, 7):
        log.record(float(t), 0.010 * t, "details", 200)
    points = dict(log.moving_average(window=3.0, step=1.0))
    # At t=4 the window (1, 4] holds samples 2, 3, 4 -> mean 30ms.
    assert points[4.0] == pytest.approx(0.030)
    # At t=6 the window (3, 6] holds samples 4, 5, 6 -> mean 50ms.
    assert points[6.0] == pytest.approx(0.050)


def test_moving_average_skips_empty_windows_and_errors():
    log = SampleLog()
    log.record(1.0, 0.010, "buy", 204)
    log.record(10.0, 0.020, "buy", 204)
    log.record(10.5, 5.000, "buy", 500)  # errors excluded
    points = dict(log.moving_average(window=1.0, step=1.0))
    assert 5.0 not in points
    assert points[min(points)] == pytest.approx(0.010)
    assert max(points.values()) == pytest.approx(0.020)


def test_moving_average_empty_log():
    assert SampleLog().moving_average() == []


def test_phase_tracker_boundaries():
    tracker = PhaseTracker()
    tracker.enter("canary", 0.0)
    tracker.enter("dark", 60.0)
    tracker.enter("ab", 120.0)
    tracker.finish(180.0)
    assert tracker.phase("canary").end == 60.0
    assert tracker.phase("dark").end == 120.0
    assert tracker.phase("ab").end == 180.0
    with pytest.raises(KeyError):
        tracker.phase("ghost")


def test_phase_tracker_summarize():
    tracker = PhaseTracker()
    tracker.enter("one", 0.0)
    tracker.enter("two", 10.0)
    tracker.finish(20.0)
    log = SampleLog()
    log.record(5.0, 0.010, "x", 200)
    log.record(15.0, 0.030, "x", 200)
    log.record(16.0, 0.050, "x", 200)
    summaries = tracker.summarize(log)
    assert summaries["one"].count == 1
    assert summaries["two"].count == 2
    assert summaries["two"].mean == pytest.approx(0.040)
