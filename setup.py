"""Legacy setup shim.

The offline environment has setuptools but not ``wheel``, so PEP-517
editable installs fail with "invalid command 'bdist_wheel'".  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` (and plain
``pip install -e .`` on environments that resolve to the legacy path) work.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
